"""E10: storage overhead of the monitor (Section V-D).

The paper's overhead discussion: OCEP discards "multiple occurrences of
the same event on a trace which have no send or receive events between
them" — O(1) per event but with no minimality guarantee, so "in the
worst case it will store all the events since the start-up".

This benchmark measures, on identical streams:

* leaf-history size with and without the pruning rule;
* the representative subset size against its ``k x n`` bound;
* the compressed GP/LS index size against total event count.
"""

import pytest

from common import REPETITIONS, emit_text, record_stream, replay, scaled
from repro.core.config import MatcherConfig
from repro.workloads import build_ordering_bug, ordering_bug_pattern

_ROWS = []


@pytest.fixture(scope="module", autouse=True)
def overhead_report():
    yield
    if _ROWS:
        emit_text(
            "e10_history_overhead",
            "E10: monitor storage overhead (Section V-D)\n\n  "
            + "\n  ".join(_ROWS)
            + "\n\nPaper: the pruning rule is O(1) per event but does not "
            "guarantee a minimal subset; worst case stores everything.",
        )


def _bursty_workload():
    """Processes emit bursts of pattern-relevant local events between
    communications — exactly the repetition the same-epoch rule
    collapses ("multiple occurrences of the same event on a trace which
    have no send or receive events between them")."""
    from repro.poet.instrument import instrument
    from repro.simulation import Kernel

    class _Workload:
        def __init__(self):
            self.kernel = Kernel(num_processes=6, seed=13, buffer_capacity=None)
            self.server = instrument(self.kernel)

            def body(p):
                rng = p.rng
                rounds = max(20, scaled(9_000) // 60)
                right = (p.pid + 1) % 6
                left = (p.pid - 1) % 6
                for _ in range(rounds):
                    for _ in range(rng.randrange(2, 6)):
                        yield p.emit("A", text="burst")
                    yield p.send(right, text=f"to{right}")
                    yield p.receive(source=left)
                    yield p.emit("B")

            for pid in range(6):
                self.kernel.spawn(pid, body)
            self.num_traces = 6

        def run(self, max_events=None):
            return self.kernel.run(max_events=max_events)

    return _Workload()


BURST_PATTERN = "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;"


@pytest.mark.parametrize("prune", [True, False], ids=["pruned", "unpruned"])
def test_history_growth(benchmark, prune):
    events, names, workload, outcome = record_stream(
        ("bursty", 6, 13), _bursty_workload, max_events=None
    )
    config = MatcherConfig(prune_history=prune)
    monitor = benchmark.pedantic(
        lambda: replay(events, BURST_PATTERN, names, config),
        rounds=REPETITIONS,
        iterations=1,
    )
    stats = monitor.stats()
    _ROWS.append(
        f"bursty A->B prune={str(prune):<5}: {stats.events_seen} events -> "
        f"history {stats.history_size}, subset {stats.subset_size} "
        f"(bound {monitor.pattern.num_leaves * workload.num_traces}), "
        f"gp/ls index {monitor.matcher.index.index_size()} entries"
    )
    assert monitor.subset.check_bound()
    if prune:
        unpruned_matchable = sum(1 for e in events if e.etype in ("A", "B"))
        assert stats.history_size < unpruned_matchable


def test_subset_stays_bounded_on_long_ordering_run(benchmark):
    events, names, workload, outcome = record_stream(
        ("ordering-long", 20, 13),
        lambda: build_ordering_bug(
            num_traces=20,
            seed=13,
            synchs_per_follower=max(6, scaled(15_000) // 280),
            bug_probability=0.2,
        ),
        max_events=None,
    )
    monitor = benchmark.pedantic(
        lambda: replay(events, ordering_bug_pattern(), names),
        rounds=REPETITIONS,
        iterations=1,
    )
    stats = monitor.stats()
    bound = monitor.pattern.num_leaves * workload.num_traces
    assert stats.subset_size <= bound
    _ROWS.append(
        f"ordering  long run      : {stats.events_seen} events -> "
        f"{stats.matches_reported} reports, subset {stats.subset_size} "
        f"<= bound {bound}, history {stats.history_size}"
    )
