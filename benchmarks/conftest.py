"""Benchmark-suite configuration."""

import sys
from pathlib import Path

# Make the sibling ``common`` module importable from every benchmark
# file regardless of how pytest was invoked.
sys.path.insert(0, str(Path(__file__).parent))
