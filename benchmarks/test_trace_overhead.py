"""Span-tracer overhead: the disabled (NULL_TRACER) path must be free.

Tracing is wired through the matcher's search loop, the POET server's
fan-out, and the kernel's emit path, each behind a single
``tracer.enabled`` attribute load.  This benchmark verifies that
bargain on the same replay methodology as ``test_obs_overhead``:

* ``off``    — a monitor built before tracing existed (no tracer
  argument at all; the matcher holds the shared ``NULL_TRACER``),
* ``noop``   — an explicit :class:`NullTracer` instance passed in (the
  off-by-default configuration every component ships with),
* ``traced`` — a live :class:`SpanTracer` recording search and
  goForward/goBackward spans,

and requires the ``noop`` path to stay within 3% of ``off``
(min-of-repetitions; tolerance overridable via
``OCEP_TRACE_TOLERANCE``).  Measured ratios land in
``BENCH_trace_overhead.json`` for the cross-PR perf trajectory.
"""

import os
import time

from common import emit_json, emit_text, record_stream, scaled
from repro.core import Monitor
from repro.obs.spans import NullTracer, SpanTracer
from repro.workloads import build_message_race, message_race_pattern

#: Relative overhead allowed for the disabled-tracer path.
TOLERANCE = float(os.environ.get("OCEP_TRACE_TOLERANCE", "0.03"))

#: Re-measurements before declaring a tolerance breach real.
MAX_ATTEMPTS = 4

MIN_OF = 5


def _record_stream():
    events, names, _workload, _outcome = record_stream(
        ("race-overhead", 6, 3),
        lambda: build_message_race(
            num_traces=6, seed=3, messages_per_sender=25
        ),
        max_events=scaled(4000),
    )
    return events, names


def _best_replay_seconds(events, names, tracer=None) -> float:
    """Min-of-N total replay wall time (min filters scheduler noise
    out of CPU-bound identical work)."""
    best = float("inf")
    pattern = message_race_pattern()
    for _ in range(MIN_OF):
        started = time.perf_counter()
        monitor = Monitor.from_source(
            pattern, names, record_timings=False, tracer=tracer
        )
        for event in events:
            monitor.on_event(event)
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def test_disabled_tracer_overhead():
    events, names = _record_stream()

    measurements = {}
    for attempt in range(1, MAX_ATTEMPTS + 1):
        off = _best_replay_seconds(events, names)
        noop = _best_replay_seconds(events, names, tracer=NullTracer())
        traced = _best_replay_seconds(events, names, tracer=SpanTracer())
        noop_overhead = noop / off - 1.0
        traced_overhead = traced / off - 1.0
        measurements = {
            "events": len(events),
            "attempt": attempt,
            "off_seconds": off,
            "noop_seconds": noop,
            "traced_seconds": traced,
            "noop_overhead": noop_overhead,
            "traced_overhead": traced_overhead,
            "tolerance": TOLERANCE,
        }
        if noop_overhead < TOLERANCE:
            break

    emit_json("trace_overhead", measurements)
    emit_text(
        "trace_overhead",
        "Span-tracer overhead (message-race stream, "
        f"{len(events)} events, min of {MIN_OF} replays):\n"
        f"  off    (no tracer argument):  {measurements['off_seconds'] * 1e3:8.2f} ms\n"
        f"  noop   (explicit NullTracer): {measurements['noop_seconds'] * 1e3:8.2f} ms "
        f"({measurements['noop_overhead'] * 100:+.2f}%)\n"
        f"  traced (live SpanTracer):     {measurements['traced_seconds'] * 1e3:8.2f} ms "
        f"({measurements['traced_overhead'] * 100:+.2f}%)",
    )

    assert measurements["noop_overhead"] < TOLERANCE, (
        f"disabled-tracer path is {measurements['noop_overhead']:.1%} "
        f"slower than no tracer at all (tolerance {TOLERANCE:.0%}) "
        f"after {MAX_ATTEMPTS} attempts"
    )
