"""Batched pipeline delivery: amortized dispatch vs the per-event path.

Replay sources deliver **batch-first**: the engine hands contiguous
slices to ``POETServer.collect_batch`` which fans them out through the
sharded dispatcher's ``on_batch``, amortizing the per-event dispatch
overhead (per-call attribute loads, counter increments, span guards,
gauge refreshes) across a slice.  ``batch_size=1`` forces the original
per-event path; both must produce bit-identical match output.

Two claims are checked here:

* **identity** — the batched replay reports exactly the same matches,
  in the same order, with the same representative subset, as the
  per-event replay; on a small stream both are additionally proven
  sound and representative against the brute-force oracle
  (:func:`repro.core.oracle.enumerate_matches` — every reported match
  is a true match, and the subset covers exactly the oracle's
  (leaf, trace) slots);
* **overhead** — batched delivery does not cost more than the
  per-event path (it should save a few percent of dispatch overhead;
  the measured speedup lands in ``BENCH_pipeline_batching.json`` for
  the cross-PR perf trajectory, asserted loosely via
  ``OCEP_BATCHING_TOLERANCE`` for noisy shared runners).
"""

import os
import time

from common import emit_json, emit_text, record_stream, scaled
from repro.core.config import MatcherConfig
from repro.core.oracle import covered_slots, enumerate_matches
from repro.engine import DEFAULT_BATCH_SIZE, Pipeline
from repro.workloads import build_message_race, message_race_pattern

#: Allowed slowdown of the batched path relative to per-event delivery.
TOLERANCE = float(os.environ.get("OCEP_BATCHING_TOLERANCE", "0.05"))

#: Re-measurements before declaring a tolerance breach real.
MAX_ATTEMPTS = 4

MIN_OF = 5


def _record():
    events, names, _workload, _outcome = record_stream(
        ("race-overhead", 6, 3),
        lambda: build_message_race(
            num_traces=6, seed=3, messages_per_sender=25
        ),
        max_events=scaled(4000),
    )
    return events, names


def _replay_monitor(events, names, batch_size):
    pipeline = Pipeline.replay(events, names)
    monitor = pipeline.watch(
        "bench", message_race_pattern(), record_timings=False
    )
    pipeline.run(batch_size=batch_size)
    return monitor


def _best_replay_seconds(events, names, batch_size) -> float:
    """Min-of-N total replay wall time (min filters scheduler noise
    out of CPU-bound identical work)."""
    best = float("inf")
    for _ in range(MIN_OF):
        started = time.perf_counter()
        _replay_monitor(events, names, batch_size)
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def test_batched_output_identical_and_oracle_sound():
    """Batched == per-event, and both == brute-force ground truth."""
    events, names = _record()

    per_event = _replay_monitor(events, names, batch_size=1)
    batched = _replay_monitor(events, names, batch_size=DEFAULT_BATCH_SIZE)

    # Bit-identical match output on the full measured stream.
    assert batched.reports == per_event.reports
    assert batched.subset.signature() == per_event.subset.signature()
    assert batched.stats() == per_event.stats()

    # Small stream: prove both paths against the exponential oracle.
    small = Pipeline.for_workload(
        build_message_race(num_traces=4, seed=2, messages_per_sender=4)
    )
    recorder = small.record()
    small.run()
    config = MatcherConfig(prune_history=False)
    oracle_monitors = {}
    for size in (1, DEFAULT_BATCH_SIZE):
        pipeline = Pipeline.replay(recorder.events, small.trace_names)
        monitor = pipeline.watch(
            "oracle-check", message_race_pattern(), config=config,
            record_timings=False,
        )
        pipeline.run(batch_size=size)
        oracle_monitors[size] = monitor

    oracle = enumerate_matches(
        oracle_monitors[1].pattern, recorder.events
    )
    assert oracle, "the oracle stream must contain at least one match"
    for size, monitor in oracle_monitors.items():
        for report in monitor.reports:
            assert report.as_dict() in oracle, (
                f"batch_size={size} reported a match the oracle does not "
                "contain"
            )
        assert monitor.subset.covered_slots == covered_slots(oracle), (
            f"batch_size={size} subset does not cover the oracle's slots"
        )
    assert (
        oracle_monitors[1].reports
        == oracle_monitors[DEFAULT_BATCH_SIZE].reports
    )


def test_batched_dispatch_overhead():
    events, names = _record()

    measurements = {}
    for attempt in range(1, MAX_ATTEMPTS + 1):
        per_event = _best_replay_seconds(events, names, batch_size=1)
        batched = _best_replay_seconds(
            events, names, batch_size=DEFAULT_BATCH_SIZE
        )
        speedup = per_event / batched
        saved_us = (per_event - batched) / len(events) * 1e6
        measurements = {
            "events": len(events),
            "attempt": attempt,
            "batch_size": DEFAULT_BATCH_SIZE,
            "per_event_seconds": per_event,
            "batched_seconds": batched,
            "per_event_us_per_event": per_event / len(events) * 1e6,
            "batched_us_per_event": batched / len(events) * 1e6,
            "dispatch_saved_us_per_event": saved_us,
            "speedup": speedup,
            "tolerance": TOLERANCE,
        }
        if batched <= per_event * (1.0 + TOLERANCE):
            break

    emit_json("pipeline_batching", measurements)
    emit_text(
        "pipeline_batching",
        "Batched pipeline delivery (message-race stream, "
        f"{len(events)} events, min of {MIN_OF} replays):\n"
        f"  per-event (batch_size=1):   "
        f"{measurements['per_event_seconds'] * 1e3:8.2f} ms "
        f"({measurements['per_event_us_per_event']:.2f} us/event)\n"
        f"  batched   (batch_size={DEFAULT_BATCH_SIZE}): "
        f"{measurements['batched_seconds'] * 1e3:8.2f} ms "
        f"({measurements['batched_us_per_event']:.2f} us/event)\n"
        f"  dispatch saved: {measurements['dispatch_saved_us_per_event']:+.2f} "
        f"us/event (speedup {measurements['speedup']:.3f}x)",
    )

    assert measurements["batched_seconds"] <= (
        measurements["per_event_seconds"] * (1.0 + TOLERANCE)
    ), (
        f"batched delivery is {1.0 / measurements['speedup'] - 1.0:.1%} "
        f"slower than the per-event path (tolerance {TOLERANCE:.0%}) "
        f"after {MAX_ATTEMPTS} attempts"
    )
