"""Figure 6: execution time for deadlock detection.

Paper setup: the parallel random walk with a latent send-cycle
deadlock, run at 10/20/50 traces until the event budget (paper: one
million events) or the deadlock; OCEP matches a blocked-send cycle
spanning every trace.  Reported: boxplots of per-terminating-event
matching time.

Expected shape (paper): sub-millisecond to a few milliseconds per
event with a heavy outlier tail (the search "is still exponential in
terms of the length of the pattern"), times growing with the cycle
length, and the deadlock always detected.
"""

import pytest

from common import (
    REPETITIONS,
    emit_report,
    record_stream,
    replay,
    scaled,
    timing_stats,
)
from repro.workloads import build_random_walk, deadlock_pattern

TRACE_COUNTS = (10, 20, 50)
_RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def fig6_report():
    yield
    if _RESULTS:
        emit_report(
            "fig6_deadlock",
            "Figure 6: Execution Time for Deadlock (us per terminating event)",
            _RESULTS,
            notes=(
                "Paper reference (Fig 6/10): Q1=1712 Med=1805 Q3=1888 "
                "TopWhisker=2153 Max=14931 us on a 2 GHz Core 2 Duo, "
                "pattern spanning all traces."
            ),
        )


@pytest.mark.parametrize("traces", TRACE_COUNTS)
def test_deadlock_detection_time(benchmark, traces):
    events, names, workload, outcome = record_stream(
        ("deadlock", traces, 1),
        lambda: build_random_walk(num_traces=traces, seed=1, skip_probability=0.08),
        max_events=scaled(60_000),
    )
    assert outcome.deadlocked, "the injected bug must deadlock the ring"
    pattern = deadlock_pattern(traces)

    monitor = benchmark.pedantic(
        lambda: replay(events, pattern, names),
        rounds=REPETITIONS,
        iterations=1,
    )

    assert monitor.reports, "the blocked-send cycle must be matched"
    final = monitor.reports[-1].as_dict()
    assert len(final) == traces
    for i, a in enumerate(list(final.values())):
        for b in list(final.values())[i + 1 :]:
            assert a.concurrent_with(b)

    _RESULTS[f"{traces} traces"] = timing_stats(monitor)
