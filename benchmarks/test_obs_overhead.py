"""Observability overhead: the no-op instrumentation path must be free.

The metrics layer is wired through the matcher's hot path (plain-int
counters, an ``is None`` search-trace guard per decision point) and the
monitor (a shared no-op registry by default).  This benchmark verifies
the bargain on the Figure-3 subset workload's methodology: replaying a
recorded stream through

* ``off``   — timings and registry both disabled (the leanest path),
* ``noop``  — the **default** configuration: per-event timings into
  the shared no-op registry (what ``test_fig3_subset`` measures),
* ``full``  — a live registry plus a search-trace ring buffer,

and requiring the ``noop`` path to stay within 5% of ``off``
(min-of-repetitions; tolerance overridable via
``OCEP_OVERHEAD_TOLERANCE`` for noisy shared runners).  The measured
ratios land in ``BENCH_obs_overhead.json`` for the cross-PR perf
trajectory.

A second gate covers the live-telemetry runtime: a pipeline replay
with the embedded scrape server bound (stage links + HTTP thread
parked on accept) must stay within 3% of the same replay with only the
live registry, and its match output must be bit-identical to an
entirely uninstrumented run (``OCEP_SERVE_TOLERANCE`` overrides).
"""

import os
import time

from common import emit_json, emit_text, record_stream, scaled
from repro.core import MatcherConfig, Monitor
from repro.engine import Pipeline
from repro.obs import MetricsRegistry
from repro.workloads import build_message_race, message_race_pattern

#: Relative overhead allowed for the default (no-op registry) path.
TOLERANCE = float(os.environ.get("OCEP_OVERHEAD_TOLERANCE", "0.05"))

#: Relative overhead allowed for serving /metrics while running,
#: measured against the registry-enabled pipeline it extends.
SERVE_TOLERANCE = float(os.environ.get("OCEP_SERVE_TOLERANCE", "0.03"))

#: Re-measurements before declaring a tolerance breach real.
MAX_ATTEMPTS = 4

MIN_OF = 5


def _record_stream():
    events, names, _workload, _outcome = record_stream(
        ("race-overhead", 6, 3),
        lambda: build_message_race(
            num_traces=6, seed=3, messages_per_sender=25
        ),
        max_events=scaled(4000),
    )
    return events, names


def _best_replay_seconds(events, names, **monitor_kwargs) -> float:
    """Min-of-N total replay wall time (min filters scheduler noise
    out of CPU-bound identical work)."""
    best = float("inf")
    pattern = message_race_pattern()
    for _ in range(MIN_OF):
        started = time.perf_counter()
        monitor = Monitor.from_source(pattern, names, **monitor_kwargs)
        for event in events:
            monitor.on_event(event)
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def test_noop_instrumentation_overhead():
    events, names = _record_stream()

    measurements = {}
    for attempt in range(1, MAX_ATTEMPTS + 1):
        off = _best_replay_seconds(events, names, record_timings=False)
        noop = _best_replay_seconds(events, names)  # the default path
        full = _best_replay_seconds(
            events,
            names,
            registry=MetricsRegistry(),
            config=MatcherConfig(search_trace_size=4096),
        )
        noop_overhead = noop / off - 1.0
        full_overhead = full / off - 1.0
        measurements = {
            "events": len(events),
            "attempt": attempt,
            "off_seconds": off,
            "noop_seconds": noop,
            "full_seconds": full,
            "noop_overhead": noop_overhead,
            "full_overhead": full_overhead,
            "tolerance": TOLERANCE,
        }
        if noop_overhead < TOLERANCE:
            break

    emit_json("obs_overhead", measurements)
    emit_text(
        "obs_overhead",
        "Observability overhead (message-race stream, "
        f"{len(events)} events, min of {MIN_OF} replays):\n"
        f"  off  (no timings, no registry): {measurements['off_seconds'] * 1e3:8.2f} ms\n"
        f"  noop (default: no-op registry): {measurements['noop_seconds'] * 1e3:8.2f} ms "
        f"({measurements['noop_overhead'] * 100:+.2f}%)\n"
        f"  full (live registry + trace):   {measurements['full_seconds'] * 1e3:8.2f} ms "
        f"({measurements['full_overhead'] * 100:+.2f}%)",
    )

    assert measurements["noop_overhead"] < TOLERANCE, (
        f"default (no-op registry) path is "
        f"{measurements['noop_overhead']:.1%} slower than the disabled "
        f"path (tolerance {TOLERANCE:.0%}) after {MAX_ATTEMPTS} attempts"
    )


def _best_pipeline_seconds(events, names, serve: bool):
    """Min-of-N wall time of a batched pipeline replay with a live
    registry, optionally with the scrape server bound; returns the
    timing plus the last run's match output for the identity check."""
    pattern = message_race_pattern()
    best = float("inf")
    reports = signature = None
    for _ in range(MIN_OF):
        pipeline = Pipeline.replay(events, names,
                                   registry=MetricsRegistry())
        if serve:
            pipeline.with_server(port=0)
        monitor = pipeline.watch("race", pattern, record_timings=False)
        started = time.perf_counter()
        result = pipeline.run()
        elapsed = time.perf_counter() - started
        if result.obs_server is not None:
            result.obs_server.stop()
        if elapsed < best:
            best = elapsed
        reports = monitor.reports
        signature = monitor.subset.signature()
    return best, reports, signature


def test_serve_enabled_overhead_and_identical_output():
    events, names = _record_stream()

    # The uninstrumented oracle for the bit-identical check.
    plain = Pipeline.replay(events, names)
    plain_monitor = plain.watch("race", message_race_pattern(),
                                record_timings=False)
    plain.run()

    measurements = {}
    for attempt in range(1, MAX_ATTEMPTS + 1):
        base, _, _ = _best_pipeline_seconds(events, names, serve=False)
        serve, reports, signature = _best_pipeline_seconds(
            events, names, serve=True
        )
        serve_overhead = serve / base - 1.0
        measurements = {
            "events": len(events),
            "attempt": attempt,
            "registry_seconds": base,
            "serve_seconds": serve,
            "serve_overhead": serve_overhead,
            "serve_tolerance": SERVE_TOLERANCE,
        }
        if serve_overhead < SERVE_TOLERANCE:
            break

    assert reports == plain_monitor.reports, (
        "serving-enabled pipeline changed the match reports"
    )
    assert signature == plain_monitor.subset.signature(), (
        "serving-enabled pipeline changed the representative subset"
    )

    emit_json("serve_overhead", measurements)
    emit_text(
        "serve_overhead",
        f"Scrape-server overhead (message-race stream, {len(events)} "
        f"events, min of {MIN_OF} batched pipeline replays):\n"
        f"  registry only:    {measurements['registry_seconds'] * 1e3:8.2f} ms\n"
        f"  registry + serve: {measurements['serve_seconds'] * 1e3:8.2f} ms "
        f"({measurements['serve_overhead'] * 100:+.2f}%)\n"
        f"  match output identical to the uninstrumented run",
    )

    assert measurements["serve_overhead"] < SERVE_TOLERANCE, (
        f"serving-enabled pipeline is "
        f"{measurements['serve_overhead']:.1%} slower than the "
        f"registry-only pipeline (tolerance {SERVE_TOLERANCE:.0%}) "
        f"after {MAX_ATTEMPTS} attempts"
    )
