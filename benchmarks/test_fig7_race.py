"""Figure 7: execution time for message-race detection.

Paper setup: all processes but one concurrently send to the collector,
which receives with ``MPI_ANY_SOURCE``; 10/20/50 traces.  A race is a
pair of concurrent sends received by the same process.

Expected shape (paper): tens-of-microseconds quartiles (Q1=49 Med=69
Q3=76 us), far below the deadlock case, growing mildly with trace
count, with a long outlier tail (max ~10.8 ms).
"""

import pytest

from common import (
    REPETITIONS,
    emit_report,
    record_stream,
    replay,
    scaled,
    timing_stats,
)
from repro.workloads import build_message_race, message_race_pattern

TRACE_COUNTS = (10, 20, 50)
_RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def fig7_report():
    yield
    if _RESULTS:
        emit_report(
            "fig7_race",
            "Figure 7: Execution Time for Message Races (us per terminating event)",
            _RESULTS,
            notes=(
                "Paper reference (Fig 7/10): Q1=49 Med=69 Q3=76 "
                "TopWhisker=117 Max=10830 us."
            ),
        )


@pytest.mark.parametrize("traces", TRACE_COUNTS)
def test_race_detection_time(benchmark, traces):
    messages = max(4, scaled(6_000) // (traces * 8))
    events, names, workload, outcome = record_stream(
        ("race", traces, 2),
        lambda: build_message_race(
            num_traces=traces, seed=2, messages_per_sender=messages
        ),
        max_events=None,
    )
    assert not outcome.deadlocked

    monitor = benchmark.pedantic(
        lambda: replay(events, message_race_pattern(), names),
        rounds=REPETITIONS,
        iterations=1,
    )

    assert monitor.reports, "concurrent sends to the collector must race"
    for report in monitor.reports[:20]:
        sends = [e for e in report.as_dict().values() if e.etype == "Send"]
        assert sends[0].concurrent_with(sends[1])

    _RESULTS[f"{traces} traces"] = timing_stats(monitor)
