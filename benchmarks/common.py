"""Shared infrastructure for the figure/table benchmarks.

Every benchmark follows the paper's methodology (Section V-B): generate
a workload's event stream once (cached per session), replay it through
fresh monitors, and report per-terminating-event wall times as boxplot
statistics.  Rendered figures and tables are printed and written under
``benchmarks/results/`` so EXPERIMENTS.md can cite them.

Scale: defaults are laptop-sized; set ``OCEP_FULL_SCALE=1`` for the
paper's one-million-event budgets, or ``OCEP_EVENTS=<n>`` to pick one
explicitly.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis import (
    BoxplotStats,
    compute_boxplot,
    quartile_table,
    render_boxplots,
)
from repro.analysis.runner import scaled
from repro.core.config import MatcherConfig
from repro.core.monitor import Monitor
from repro.engine import Pipeline
from repro.events.event import Event

RESULTS_DIR = Path(__file__).parent / "results"

#: Replay repetitions per measurement (paper: five).
REPETITIONS = int(os.environ.get("OCEP_REPETITIONS", "3"))

_STREAM_CACHE: Dict[tuple, Tuple[List[Event], List[str], object]] = {}


def record_stream(key: tuple, build: Callable[[], object], max_events: Optional[int]):
    """Run a workload once and cache its recorded stream.

    ``build`` returns a workload result object (kernel/server/run).
    Returns ``(events, trace_names, workload, outcome)``.
    """
    cache_key = key + (max_events,)
    if cache_key in _STREAM_CACHE:
        return _STREAM_CACHE[cache_key]
    pipeline = Pipeline.for_workload(build())
    recorder = pipeline.record()
    result = pipeline.run(max_events=max_events)
    value = (
        recorder.events,
        list(pipeline.trace_names),
        pipeline.workload,
        result.outcome,
    )
    _STREAM_CACHE[cache_key] = value
    return value


def replay(
    events: Sequence[Event],
    pattern: str,
    names: Sequence[str],
    config: Optional[MatcherConfig] = None,
    batch_size: Optional[int] = None,
) -> Monitor:
    """One full replay through a fresh single-shard pipeline."""
    pipeline = Pipeline.replay(events, names)
    monitor = pipeline.watch("bench", pattern, config=config)
    pipeline.run(batch_size=batch_size)
    return monitor


def timing_stats(monitor: Monitor) -> BoxplotStats:
    """Per-terminating-event quartiles in microseconds."""
    samples = [t * 1e6 for t in monitor.terminating_timings]
    return compute_boxplot(samples)


def emit_report(
    name: str,
    title: str,
    groups: Dict[str, BoxplotStats],
    notes: str = "",
) -> str:
    """Render, print, and persist one figure's boxplots + table.

    Alongside the human-readable ``<name>.txt``, a machine-readable
    ``BENCH_<name>.json`` is written so runs can be diffed across PRs
    (the perf trajectory the ROADMAP asks for).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    body = [
        render_boxplots(groups, title=title),
        "",
        quartile_table(groups),
    ]
    if notes:
        body += ["", notes]
    text = "\n".join(body)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    emit_json(
        name,
        {
            "title": title,
            "unit": "us",
            "groups": {
                label: dataclasses.asdict(stats)
                for label, stats in groups.items()
            },
            "notes": notes,
        },
    )
    print(f"\n{text}", file=sys.stderr)
    return text


def emit_json(name: str, payload: dict) -> Path:
    """Write one benchmark's machine-readable ``BENCH_<name>.json``.

    The payload is wrapped with the benchmark name and the run
    environment (python version, platform, repetitions) so files from
    different machines/PRs remain comparable.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    document = {
        "benchmark": name,
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "repetitions": REPETITIONS,
            "events_budget": os.environ.get("OCEP_EVENTS"),
            "full_scale": os.environ.get("OCEP_FULL_SCALE") == "1",
        },
        **payload,
    }
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def emit_text(name: str, text: str) -> str:
    """Persist and print a free-form report."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}", file=sys.stderr)
    return text


__all__ = [
    "REPETITIONS",
    "RESULTS_DIR",
    "record_stream",
    "replay",
    "timing_stats",
    "emit_report",
    "emit_json",
    "emit_text",
    "scaled",
]
