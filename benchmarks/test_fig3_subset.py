"""Figure 3 / E1: representative subset versus sliding window.

Reproduces the omission argument of Section IV-B: with a window of
``n^2`` events, the window matcher misses matches spanning beyond the
window, so the slots it covers are a strict subset of the achievable
ones; OCEP's representative subset covers every slot any match touches
(verified against the brute-force oracle), while storing at most
``k x n`` matches.
"""

import pytest

from common import REPETITIONS, emit_text, replay
from repro.baselines import SlidingWindowMatcher
from repro.core import MatcherConfig
from repro.core.oracle import covered_slots, enumerate_matches
from repro.testing import Weaver

PATTERN = "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;"


def figure3_stream():
    """The paper's diagram, with window-flushing noise added on P2."""
    w = Weaver(3)
    w.local(0, "C")
    w.local(0, "A")  # a13
    w.local(0, "A")  # a14
    w.local(0, "A")  # a15
    w.local(1, "A")  # a21
    w.message(1, 2)
    for _ in range(6):
        w.local(2, "Noise")
    w.message(0, 2)
    w.local(2, "B")  # b25, the terminating event
    return w


def long_stream(seed=0, traces=4, rounds=30):
    """A longer randomized stream with old A's that stay matchable."""
    import random

    rng = random.Random(seed)
    w = Weaver(traces)
    # early A's on every trace, then mostly noise, then ordered B's
    sends = []
    for t in range(traces - 1):
        w.local(t, "A")
        sends.append(w.send(t))
    for _ in range(rounds):
        w.local(rng.randrange(traces - 1), "Noise")
    for s in sends:
        w.recv(traces - 1, s)
    for _ in range(3):
        w.local(traces - 1, "B")
    return w


@pytest.mark.parametrize("scenario", ["figure3", "long"])
def test_subset_covers_what_window_misses(benchmark, scenario):
    weaver = figure3_stream() if scenario == "figure3" else long_stream()
    names = [f"P{i}" for i in range(weaver.num_traces)]

    monitor = benchmark.pedantic(
        lambda: replay(
            weaver.events,
            PATTERN,
            names,
            config=MatcherConfig(prune_history=False),
        ),
        rounds=REPETITIONS,
        iterations=1,
    )

    window = SlidingWindowMatcher(
        monitor.pattern, weaver.num_traces
    )  # the paper's n^2 window
    for event in weaver.events:
        window.on_event(event)

    oracle = enumerate_matches(monitor.pattern, weaver.events)
    achievable = covered_slots(oracle)

    ocep_slots = monitor.subset.covered_slots
    window_slots = window.covered_slots

    # OCEP: covers achievable slots within the k*n bound
    assert ocep_slots == achievable
    assert monitor.subset.check_bound()
    # Window: sound but strictly less informative on these streams
    assert window_slots <= achievable
    assert window_slots < achievable, "window should miss a slot here"

    emit_text(
        f"fig3_subset_{scenario}",
        f"Figure 3 ({scenario}): representative subset vs sliding window\n"
        f"  achievable (leaf, trace) slots: {sorted(achievable)}\n"
        f"  OCEP covered:                   {sorted(ocep_slots)}\n"
        f"  n^2-window covered:             {sorted(window_slots)}\n"
        f"  window missed:                  {sorted(achievable - window_slots)}\n"
        f"  OCEP stored matches: {len(monitor.subset)} "
        f"(bound {monitor.pattern.num_leaves * weaver.num_traces}); "
        f"all matches: {len(oracle)}",
    )
