"""Figure 9: execution time for the ordering bug.

Paper setup: the leader/follower replicated service with the
stale-snapshot window, at 50/100/500 traces.  "Figure 9 shows almost a
linear increase in runtime with the number of traces.  This signifies
that our algorithm was effectively able to isolate the relevant traces
from the pattern specification" — a complete match involves only the
leader and one follower regardless of the trace count.

Expected shape (paper): narrow quartiles around 120 us (Q1=119 Med=121
Q3=124), near-linear growth in traces, outliers to ~7.7 ms.
"""

import pytest

from common import (
    REPETITIONS,
    emit_report,
    record_stream,
    replay,
    scaled,
    timing_stats,
)
from repro.core.config import MatcherConfig
from repro.workloads import build_ordering_bug, ordering_bug_pattern

TRACE_COUNTS = (50, 100, 500)
#: The paper's algorithm (no indexed-history extension) is the
#: headline series; the extension is shown as an extra row.
PAPER_CONFIG = MatcherConfig(indexed_histories=False)
_RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def fig9_report():
    yield
    if _RESULTS:
        emit_report(
            "fig9_ordering",
            "Figure 9: Execution Time for Ordering Bug "
            "(us per terminating event)",
            _RESULTS,
            notes=(
                "Paper reference (Fig 9/10): Q1=119 Med=121 Q3=124 "
                "TopWhisker=132 Max=7668 us; near-linear growth with "
                "the number of traces."
            ),
        )


@pytest.mark.parametrize("traces", TRACE_COUNTS)
def test_ordering_detection_time(benchmark, traces):
    synchs = max(2, scaled(12_000) // (traces * 14))
    events, names, workload, outcome = record_stream(
        ("ordering", traces, 6),
        lambda: build_ordering_bug(
            num_traces=traces,
            seed=6,
            synchs_per_follower=synchs,
            bug_probability=0.05,
        ),
        max_events=None,
    )
    assert not outcome.deadlocked

    monitor = benchmark.pedantic(
        lambda: replay(events, ordering_bug_pattern(), names, PAPER_CONFIG),
        rounds=REPETITIONS,
        iterations=1,
    )

    matched = {dict(r.bindings)["r"] for r in monitor.reports}
    assert matched == set(workload.buggy_requests), (
        "detection must be complete with no false positives"
    )

    _RESULTS[f"{traces} traces"] = timing_stats(monitor)

    if traces == TRACE_COUNTS[-1]:
        # this reproduction's indexed-history extension, for contrast
        indexed = replay(events, ordering_bug_pattern(), names)
        assert {dict(r.bindings)["r"] for r in indexed.reports} == matched
        _RESULTS[f"{traces} traces (indexed ext.)"] = timing_stats(indexed)
