"""E9: ablation of the paper's two search optimisations.

Section IV-C introduces GP/LS domain restriction (Figure 4) and
timestamp-guided back-jumping (Figure 5) over plain chronological
backtracking.  This benchmark replays identical streams under four
configurations:

* ``full``        — both optimisations (the paper's OCEP);
* ``no-backjump`` — domains restricted, plain backtracking;
* ``no-domains``  — back-jumping over unrestricted domains;
* ``chrono``      — neither (the paper's strawman).

Expected shape: ``full`` fastest, ``chrono`` slowest, detections
identical under every configuration.
"""

import statistics

import pytest

from common import REPETITIONS, emit_text, record_stream, replay, scaled
from repro.core.config import MatcherConfig
from repro.workloads import (
    build_message_race,
    build_ordering_bug,
    message_race_pattern,
    ordering_bug_pattern,
)

CONFIGS = {
    "full": MatcherConfig(),
    "no-index": MatcherConfig(indexed_histories=False),
    "no-backjump": MatcherConfig(backjump=False),
    "no-domains": MatcherConfig(restrict_domains=False),
    "chrono": MatcherConfig(
        restrict_domains=False, backjump=False, indexed_histories=False
    ),
}

_ROWS = {}


@pytest.fixture(scope="module", autouse=True)
def ablation_report():
    yield
    if _ROWS:
        lines = [
            "E9: ablation of GP/LS domain restriction and back-jumping",
            "(median us per terminating event; detections identical "
            "across configurations)",
            "",
        ]
        for case, rows in _ROWS.items():
            lines.append(f"  {case}:")
            base = rows.get("chrono")
            for name in ("full", "no-index", "no-backjump", "no-domains", "chrono"):
                if name in rows:
                    med, reports = rows[name]
                    speedup = f"  ({base[0] / med:4.1f}x vs chrono)" if base else ""
                    lines.append(
                        f"    {name:<12} {med:9.1f} us  "
                        f"[{reports} reports]{speedup}"
                    )
        emit_text("e9_ablation", "\n".join(lines))


def _median_us(monitor):
    return statistics.median(monitor.terminating_timings) * 1e6


@pytest.mark.parametrize("config_name", list(CONFIGS))
def test_race_ablation(benchmark, config_name):
    events, names, workload, outcome = record_stream(
        ("race", 12, 9),
        lambda: build_message_race(
            num_traces=12, seed=9, messages_per_sender=max(4, scaled(4_000) // 96)
        ),
        max_events=None,
    )
    monitor = benchmark.pedantic(
        lambda: replay(events, message_race_pattern(), names, CONFIGS[config_name]),
        rounds=REPETITIONS,
        iterations=1,
    )
    assert monitor.reports
    _ROWS.setdefault("message races (12 traces)", {})[config_name] = (
        _median_us(monitor),
        len(monitor.reports),
    )


@pytest.mark.parametrize("config_name", list(CONFIGS))
def test_ordering_ablation(benchmark, config_name):
    events, names, workload, outcome = record_stream(
        ("ordering", 30, 9),
        lambda: build_ordering_bug(
            num_traces=30, seed=9, synchs_per_follower=4, bug_probability=0.1
        ),
        max_events=None,
    )
    monitor = benchmark.pedantic(
        lambda: replay(events, ordering_bug_pattern(), names, CONFIGS[config_name]),
        rounds=REPETITIONS,
        iterations=1,
    )
    matched = {dict(r.bindings)["r"] for r in monitor.reports}
    assert matched == set(workload.buggy_requests)
    _ROWS.setdefault("ordering bug (30 traces)", {})[config_name] = (
        _median_us(monitor),
        len(monitor.reports),
    )
