"""Figure 10: the detailed runtime table for all four test cases.

Q1 / Median / Q3 / Top-Whisker / Max of the per-terminating-event
matching time, in microseconds, one row per case study — the summary
the paper prints alongside Figures 6-9.
"""

import pytest

from common import (
    REPETITIONS,
    emit_text,
    record_stream,
    replay,
    scaled,
    timing_stats,
)
from repro.analysis import quartile_table
from repro.workloads import (
    atomicity_pattern,
    build_atomicity,
    build_message_race,
    build_ordering_bug,
    build_random_walk,
    deadlock_pattern,
    message_race_pattern,
    ordering_bug_pattern,
)

_RESULTS = {}

PAPER_ROWS = """
Paper reference (Figure 10, us):
Test Case  Q1    Med   Q3    Top Whisker  Max
Deadlock   1712  1805  1888  2153         14931
Races      49    69    76    117          10830
Atomicity  42    45    51    65           6819
Ordering   119   121   124   132          7668
""".strip()


def _case(name):
    if name == "Deadlock":
        events, names, workload, outcome = record_stream(
            ("deadlock", 20, 1),
            lambda: build_random_walk(num_traces=20, seed=1, skip_probability=0.08),
            max_events=scaled(60_000),
        )
        return events, names, deadlock_pattern(20)
    if name == "Races":
        events, names, workload, outcome = record_stream(
            ("race", 20, 2),
            lambda: build_message_race(
                num_traces=20, seed=2, messages_per_sender=max(4, scaled(6_000) // 160)
            ),
            max_events=None,
        )
        return events, names, message_race_pattern()
    if name == "Atomicity":
        events, names, workload, outcome = record_stream(
            ("atomicity", 20, 4),
            lambda: build_atomicity(
                num_processes=20,
                seed=4,
                iterations=max(10, scaled(8_000) // 160),
                bypass_probability=0.01,
            ),
            max_events=None,
        )
        return events, names, atomicity_pattern()
    if name == "Ordering":
        events, names, workload, outcome = record_stream(
            ("ordering", 100, 6),
            lambda: build_ordering_bug(
                num_traces=100,
                seed=6,
                synchs_per_follower=max(2, scaled(12_000) // 1400),
                bug_probability=0.05,
            ),
            max_events=None,
        )
        return events, names, ordering_bug_pattern()
    raise ValueError(name)


@pytest.fixture(scope="module", autouse=True)
def fig10_report():
    yield
    if _RESULTS:
        emit_text(
            "fig10_table",
            "Figure 10: Detailed Runtime for Test Cases (us)\n\n"
            + quartile_table(_RESULTS)
            + "\n\n"
            + PAPER_ROWS,
        )


@pytest.mark.parametrize("case", ["Deadlock", "Races", "Atomicity", "Ordering"])
def test_fig10_row(benchmark, case):
    events, names, pattern = _case(case)
    monitor = benchmark.pedantic(
        lambda: replay(events, pattern, names),
        rounds=REPETITIONS,
        iterations=1,
    )
    assert monitor.reports
    _RESULTS[case] = timing_stats(monitor)
