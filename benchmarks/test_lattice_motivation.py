"""E11: the motivating comparison — global-state lattices vs event patterns.

Paper, Section I: detecting a global predicate "is based on building a
lattice of global states [12], which is known to be NP-complete [29]";
OCEP instead matches the events that represent the state transition.
This benchmark runs both approaches on identical atomicity-violation
streams and reports the lattice's consistent-cut count (its cost unit)
against OCEP's per-event matching work, as concurrency grows.
"""

import pytest

from common import REPETITIONS, emit_text, record_stream, replay
from repro.baselines import (
    LatticeExplosion,
    StateLatticeDetector,
    concurrent_types,
)
from repro.workloads import atomicity_pattern, build_atomicity

_ROWS = []


@pytest.fixture(scope="module", autouse=True)
def lattice_report():
    yield
    if _ROWS:
        emit_text(
            "e11_lattice",
            "E11: global-state lattice vs OCEP (identical streams)\n\n  "
            + "\n  ".join(_ROWS)
            + "\n\nPaper motivation: lattice size is exponential in "
            "concurrency (NP-complete detection [29]); OCEP's work is "
            "per-event with pattern-restricted domains.",
        )


@pytest.mark.parametrize("tasks", [3, 4, 5])
def test_clean_stream_full_exploration(benchmark, tasks):
    """Without a violation the lattice must visit every reachable cut
    before answering 'no' — the exponential blow-up — while OCEP's
    per-event searches stay bounded and also answer 'no'."""
    events, names, workload, outcome = record_stream(
        ("atomicity-lattice-clean", tasks, 22),
        lambda: build_atomicity(
            num_processes=tasks, seed=22, iterations=8, bypass_probability=0.0
        ),
        max_events=None,
    )
    monitor = benchmark.pedantic(
        lambda: replay(events, atomicity_pattern(), names),
        rounds=REPETITIONS,
        iterations=1,
    )
    assert not monitor.reports

    detector = StateLatticeDetector(workload.num_traces, max_states=3_000_000)
    try:
        lattice = detector.detect(events, concurrent_types("Access"))
        assert not lattice.satisfied
        lattice_note = f"{lattice.states_explored:>9} cuts (full lattice)"
    except LatticeExplosion as explosion:
        lattice_note = f"EXPLODED past {explosion.explored} cuts"

    _ROWS.append(
        f"{tasks} tasks clean ({len(events):>5} events): lattice "
        f"{lattice_note}; OCEP: no violation, "
        f"{monitor.matcher.searches_run} bounded searches"
    )


@pytest.mark.parametrize("tasks", [3, 4, 5])
def test_lattice_vs_ocep(benchmark, tasks):
    events, names, workload, outcome = record_stream(
        ("atomicity-lattice", tasks, 21),
        lambda: build_atomicity(
            num_processes=tasks, seed=21, iterations=8, bypass_probability=0.2
        ),
        max_events=None,
    )

    monitor = benchmark.pedantic(
        lambda: replay(events, atomicity_pattern(), names),
        rounds=REPETITIONS,
        iterations=1,
    )
    ocep_detected = bool(monitor.reports)

    detector = StateLatticeDetector(workload.num_traces, max_states=3_000_000)
    try:
        lattice = detector.detect(events, concurrent_types("Access"))
        lattice_note = (
            f"{lattice.states_explored:>9} cuts explored, "
            f"detected={lattice.satisfied}"
        )
        assert lattice.satisfied == ocep_detected
    except LatticeExplosion as explosion:
        lattice_note = f"EXPLODED past {explosion.explored} cuts"

    _ROWS.append(
        f"{tasks} tasks ({len(events):>5} events): lattice {lattice_note}; "
        f"OCEP detected={ocep_detected} with "
        f"{monitor.matcher.searches_run} bounded searches"
    )
