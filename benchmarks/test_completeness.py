"""E7: the completeness and false-positive claims of Section V-D.

"Our OCEP algorithm is complete as it correctly reported all violations
for the test cases.  OCEP also did not report any false positives for
any of the test cases."  Each case study runs with its injected-bug
ground truth; the benchmark measures the replay and the assertions
verify both halves of the claim.
"""

import pytest

from common import REPETITIONS, emit_text, record_stream, replay, scaled
from repro.workloads import (
    atomicity_pattern,
    build_atomicity,
    build_message_race,
    build_ordering_bug,
    build_random_walk,
    deadlock_pattern,
    message_race_pattern,
    ordering_bug_pattern,
)

_ROWS = []


@pytest.fixture(scope="module", autouse=True)
def completeness_report():
    yield
    if _ROWS:
        lines = ["E7: completeness / false positives (paper Section V-D)", ""]
        lines += [f"  {row}" for row in _ROWS]
        lines.append("")
        lines.append(
            "Paper claim: all injected violations reported, zero false positives."
        )
        emit_text("e7_completeness", "\n".join(lines))


def test_deadlock_completeness(benchmark):
    events, names, workload, outcome = record_stream(
        ("deadlock", 12, 5),
        lambda: build_random_walk(num_traces=12, seed=5, skip_probability=0.08),
        max_events=scaled(40_000),
    )
    assert outcome.deadlocked
    monitor = benchmark.pedantic(
        lambda: replay(events, deadlock_pattern(12), names),
        rounds=REPETITIONS,
        iterations=1,
    )
    assert monitor.reports, "the deadlock must be reported"
    for report in monitor.reports:
        cycle = list(report.as_dict().values())
        for i, a in enumerate(cycle):
            for b in cycle[i + 1 :]:
                assert a.concurrent_with(b), "reported cycle must be concurrent"
    _ROWS.append(
        f"Deadlock : deadlock detected; {len(monitor.reports)} cycle reports, "
        f"all verified concurrent"
    )


def test_deadlock_no_false_positive(benchmark):
    events, names, workload, outcome = record_stream(
        ("deadlock-clean", 12, 5),
        lambda: build_random_walk(
            num_traces=12, seed=5, skip_probability=0.0, buffer_capacity=8
        ),
        max_events=scaled(8_000),
    )
    assert not outcome.deadlocked
    monitor = benchmark.pedantic(
        lambda: replay(events, deadlock_pattern(12), names),
        rounds=REPETITIONS,
        iterations=1,
    )
    assert not monitor.reports, "a clean run must not match the cycle"
    _ROWS.append("Deadlock : clean control run, zero reports (no false positives)")


def test_race_completeness(benchmark):
    from repro.baselines import TimestampRaceDetector

    events, names, workload, outcome = record_stream(
        ("race", 8, 5),
        lambda: build_message_race(num_traces=8, seed=5, messages_per_sender=10),
        max_events=None,
    )
    monitor = benchmark.pedantic(
        lambda: replay(events, message_race_pattern(), names),
        rounds=REPETITIONS,
        iterations=1,
    )
    detector = TimestampRaceDetector(workload.num_traces)
    racing_receives = set()
    for event in events:
        if detector.on_event(event):
            racing_receives.add(event.event_id)
    reported = {r.trigger_event.event_id for r in monitor.reports}
    assert racing_receives <= reported, "every racing receive must be reported"
    for report in monitor.reports:
        sends = [e for e in report.as_dict().values() if e.etype == "Send"]
        assert sends[0].concurrent_with(sends[1]), "no false race"
    _ROWS.append(
        f"Races    : {len(racing_receives)} racing receives, all reported; "
        f"{len(monitor.reports)} reports, all verified concurrent"
    )


def test_atomicity_completeness(benchmark):
    events, names, workload, outcome = record_stream(
        ("atomicity", 8, 5),
        lambda: build_atomicity(
            num_processes=8, seed=5, iterations=40, bypass_probability=0.05
        ),
        max_events=None,
    )
    assert workload.bypasses
    monitor = benchmark.pedantic(
        lambda: replay(events, atomicity_pattern(), names),
        rounds=REPETITIONS,
        iterations=1,
    )
    assert monitor.reports
    for report in monitor.reports:
        x, y = report.as_dict().values()
        assert x.concurrent_with(y), "no false atomicity violation"
    # every access event concurrent with another must trigger a report
    accesses = [e for e in events if e.etype == "Access"]
    concurrent_accesses = {
        b.event_id
        for i, a in enumerate(accesses)
        for b in accesses[i + 1 :]
        if a.concurrent_with(b)
    }
    reported_triggers = {r.trigger_event.event_id for r in monitor.reports}
    assert concurrent_accesses <= reported_triggers
    _ROWS.append(
        f"Atomicity: {len(workload.bypasses)} broken acquires injected; "
        f"{len(concurrent_accesses)} violating accesses, all reported"
    )


def test_atomicity_no_false_positive(benchmark):
    events, names, workload, outcome = record_stream(
        ("atomicity-clean", 8, 5),
        lambda: build_atomicity(
            num_processes=8, seed=5, iterations=40, bypass_probability=0.0
        ),
        max_events=None,
    )
    monitor = benchmark.pedantic(
        lambda: replay(events, atomicity_pattern(), names),
        rounds=REPETITIONS,
        iterations=1,
    )
    assert not monitor.reports
    _ROWS.append("Atomicity: clean control run, zero reports (no false positives)")


def test_ordering_completeness(benchmark):
    events, names, workload, outcome = record_stream(
        ("ordering", 10, 5),
        lambda: build_ordering_bug(
            num_traces=10, seed=5, synchs_per_follower=8, bug_probability=0.15
        ),
        max_events=None,
    )
    assert workload.buggy_requests
    monitor = benchmark.pedantic(
        lambda: replay(events, ordering_bug_pattern(), names),
        rounds=REPETITIONS,
        iterations=1,
    )
    matched = {dict(r.bindings)["r"] for r in monitor.reports}
    assert matched == set(workload.buggy_requests)
    _ROWS.append(
        f"Ordering : {len(workload.buggy_requests)} buggy requests injected; "
        f"matched request ids identical (complete, no false positives)"
    )
