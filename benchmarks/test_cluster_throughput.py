"""Cluster scale-out: events/sec and detection latency at 1/2/4 workers.

The cluster PR's performance claim: with the four case-study patterns
sharded across worker processes, end-to-end throughput scales with
cores, because each worker runs its matcher on its own interpreter (no
GIL sharing) while the coordinator only serializes each event batch
once and broadcasts it.

One ≥10⁵-event message-race stream is recorded once, then driven
through 1-, 2-, and 4-worker deployments.  Reported per fleet size:

* wall-clock events/sec of the whole drive (the scale-out headline);
* detection-latency percentiles, merged count-weighted from every
  shard's exact per-terminating-event timings (shipped in the RESULT
  frame as ``p50/p95/p99`` summaries).

The ≥2x scaling assertion is gated on the machine actually having the
cores: on a single-core runner the three fleets time-share one CPU and
the run degenerates into a transport-overhead measurement (still
recorded — the numbers stay honest, the assertion does not lie about
hardware it never had).

``BENCH_cluster.json`` feeds ``ocep perf trend``: the ``*_seconds``
fields are cost indicators; throughput fields are deliberately named
``*_events_per_sec`` so a faster run never trips the regression rule.
"""

import os
import time

from common import emit_json, emit_text, scaled
from repro.engine import Pipeline, case_patterns
from repro.workloads import build_message_race

#: Laptop-size default; OCEP_FULL_SCALE/OCEP_EVENTS scale it up
#: (the checked-in BENCH_cluster.json is produced at >= 1e5 events).
DEFAULT_EVENTS = 20_000

#: The message-race builder emits ~44 events per messages_per_sender
#: unit at 12 traces.
TRACES = 12
EVENTS_PER_UNIT = 44

FLEETS = (1, 2, 4)


def _record_stream(target_events):
    workload = build_message_race(
        num_traces=TRACES,
        seed=7,
        messages_per_sender=max(10, target_events // EVENTS_PER_UNIT),
    )
    pipeline = Pipeline.for_workload(workload)
    recorder = pipeline.record()
    pipeline.run()
    return list(recorder.events), list(pipeline.trace_names)


def _merged_latency(result, patterns):
    """Count-weighted merge of the per-shard timing summaries (exact
    percentiles cannot be merged, so the weighted mean of each
    percentile is reported — shards see identical streams, so the
    approximation is tight)."""
    total = sum(result[name].timings.get("count", 0) for name in patterns)
    merged = {"count": total}
    if not total:
        return merged
    for key in ("p50_seconds", "p95_seconds", "p99_seconds"):
        merged[key] = sum(
            result[name].timings.get(key, 0.0)
            * result[name].timings.get("count", 0)
            for name in patterns
        ) / total
    merged["max_seconds"] = max(
        result[name].timings.get("max_seconds", 0.0) for name in patterns
    )
    return merged


def test_cluster_throughput_scaling():
    target = scaled(DEFAULT_EVENTS)
    events, names = _record_stream(target)
    patterns = case_patterns(len(names))
    cores = os.cpu_count() or 1

    rows = {}
    baseline_reports = None
    for workers in FLEETS:
        cluster = Pipeline.distributed(events, names, workers=workers)
        for name, source in patterns.items():
            cluster.watch(name, source)
        started = time.perf_counter()
        result = cluster.run(batch_size=1024)
        elapsed = time.perf_counter() - started
        assert result.num_events == len(events)
        assert result.restarts == 0
        if baseline_reports is None:
            baseline_reports = result.total_reports()
        else:
            # Same matches at every fleet size, or the speedup is fake.
            assert result.total_reports() == baseline_reports
        rows[workers] = {
            "wall_seconds": elapsed,
            "events_per_sec": len(events) / elapsed,
            "latency": _merged_latency(result, patterns),
        }

    payload = {
        "title": "cluster scale-out: events/sec at 1/2/4 workers",
        "events": len(events),
        "traces": TRACES,
        "patterns": len(patterns),
        "total_reports": baseline_reports,
        "cores": cores,
        "fleets": {str(w): rows[w] for w in FLEETS},
    }
    # Flattened cost indicators for ocep perf trend (suffix rule:
    # *_seconds = cost; *_events_per_sec = informational rate).
    for workers in FLEETS:
        row = rows[workers]
        payload[f"workers{workers}_wall_seconds"] = row["wall_seconds"]
        payload[f"workers{workers}_events_per_sec"] = row["events_per_sec"]
        for key in ("p50_seconds", "p95_seconds", "p99_seconds"):
            if key in row["latency"]:
                payload[f"workers{workers}_detect_{key}"] = (
                    row["latency"][key]
                )
    emit_json("cluster", payload)

    lines = [
        "Cluster scale-out throughput "
        f"({len(events)} events, {len(patterns)} patterns, "
        f"{cores} core(s))",
        "",
    ]
    for workers in FLEETS:
        row = rows[workers]
        latency = row["latency"]
        lines.append(
            f"  {workers} worker(s): {row['events_per_sec']:9.0f} ev/s  "
            f"wall {row['wall_seconds']:6.2f}s  "
            f"p95 detect {latency.get('p95_seconds', 0.0) * 1e6:7.1f} us"
        )
    speedup = rows[4]["events_per_sec"] / rows[1]["events_per_sec"]
    lines += ["", f"  4-worker speedup over 1 worker: {speedup:.2f}x"]
    if cores < 2:
        lines.append(
            "  (single-core host: scale-out assertion skipped, fleets "
            "time-share one CPU)"
        )
    emit_text("cluster_throughput", "\n".join(lines))

    if cores >= 4:
        assert speedup >= 2.0, (
            f"4 workers only {speedup:.2f}x over 1 on {cores} cores"
        )
    elif cores >= 2:
        two_way = rows[2]["events_per_sec"] / rows[1]["events_per_sec"]
        assert two_way >= 1.3, (
            f"2 workers only {two_way:.2f}x over 1 on {cores} cores"
        )
    # cores == 1: numbers recorded, no scale-out claim to gate.
