"""Encoded (bounded) timestamps vs full Fidge/Mattern clocks at scale.

The tentpole claim of the encoded backend (:mod:`repro.clocks.encoded`)
is that *causality tracking* — stamping, verifying, and storing a
timestamp per delivered event — stops costing O(num_traces) per event.
This benchmark measures that claim on the four case-study streams at
wide trace counts and checks the safety property that makes the backend
usable at all: the matcher's output is **bit-identical** under either
backend.

Methodology
-----------

* Each case study is generated once at a width where clock cost
  matters (128-192 traces) and enough workload units to reach the
  event budget (``OCEP_FULL_SCALE=1`` caps at the issue's 10^5).
* **Headline — per-event causality-tracking cost.**  The stream is
  replayed unwatched through a fresh pipeline per repetition: every
  event is delivered, dominance-verified against its trace predecessor,
  and stored (full clocks: object store with O(width) tuple compares;
  encoded: struct-of-arrays store with O(1) epoch checks).  This is
  the cost *every* monitored event pays regardless of patterns, and
  the layer the backends actually change.  Min-of-repetitions wall
  time / events, reported per backend; the speedup must clear
  ``OCEP_ENCODED_MIN_SPEEDUP`` (default 2x) on every case.
* **Identity + end-to-end.**  The stream is replayed with its case
  pattern watched under both backends; the representative-subset
  signatures and report lists must be equal bit for bit.  Pattern
  search itself is clock-free by design — domains are computed from
  the exact GP/LS intervals of Figure 4, never from clock compares —
  so its cost is backend-independent; the watched replay's wall time
  and search share are reported to show where the remaining time
  goes.  (The deadlock pattern's search cost grows superlinearly in
  stream length — all its leaves are pairwise-concurrent — so its
  identity pass runs on a prefix; the headline still uses the full
  stream.)
* **Tick microbench** (bugfix satellite).  ``VectorClock.tick`` now
  builds its result through the ``_trusted`` constructor instead of
  re-validating every component; the before/after cost is measured
  here, next to the encoded O(1) tick, so the artifact records the
  actual effect of the change.

Results land in ``BENCH_encoded_clocks.json`` for the cross-PR perf
trajectory.
"""

import math
import os
import time

from common import REPETITIONS, emit_json, emit_text, scaled
from repro.clocks.encoded import EncodedClock, encode_events
from repro.clocks.vector_clock import VectorClock
from repro.engine import Pipeline
from repro.workloads import (
    atomicity_pattern,
    build_atomicity,
    build_message_race,
    build_ordering_bug,
    build_random_walk,
    deadlock_pattern,
    message_race_pattern,
    ordering_bug_pattern,
)

#: Per-case event budget (the issue's full-scale target is 10^5).
EVENTS = min(scaled(20000), 100_000)

#: Required per-event causality-tracking speedup, each case.
MIN_SPEEDUP = float(os.environ.get("OCEP_ENCODED_MIN_SPEEDUP", "2.0"))

#: Re-measurements of a failing case before declaring a breach real.
MAX_ATTEMPTS = 4

#: Watched-replay identity cap for the deadlock case (see module doc).
DEADLOCK_WATCHED_CAP = 20000

TICK_WIDTH = 256
TICK_OPS = 20000


def _units(per_unit: float, producers: int) -> int:
    """Workload units per producer to overshoot the event budget ~5%."""
    return max(2, math.ceil(EVENTS * 1.05 / (producers * per_unit)))


def _cases():
    """The four case studies at clock-stressing widths.

    ``per_unit`` values are calibrated event counts per workload unit
    (message / iteration / synch round) — they only need to be close
    enough that the recorded stream reaches ``EVENTS`` before the cap.
    """
    return {
        "race": dict(
            traces=128,
            pattern=message_race_pattern(),
            build=lambda: build_message_race(
                num_traces=128,
                seed=0,
                messages_per_sender=_units(4.0, 127),
            ),
            watched_cap=None,
        ),
        "atomicity": dict(
            traces=129,
            pattern=atomicity_pattern(),
            build=lambda: build_atomicity(
                num_processes=128,
                seed=0,
                iterations=_units(5.9, 128),
                bypass_probability=0.02,
            ),
            watched_cap=None,
        ),
        "ordering": dict(
            traces=192,
            pattern=ordering_bug_pattern(),
            build=lambda: build_ordering_bug(
                num_traces=192,
                seed=0,
                synchs_per_follower=_units(11.0, 191),
                bug_probability=0.05,
            ),
            watched_cap=None,
        ),
        "deadlock": dict(
            traces=128,
            pattern=deadlock_pattern(128),
            build=lambda: build_random_walk(
                num_traces=128,
                seed=0,
                walkers_per_process=16,
                skip_probability=0.01,
            ),
            watched_cap=DEADLOCK_WATCHED_CAP,
        ),
    }


def _record(build):
    pipeline = Pipeline.for_workload(build())
    recorder = pipeline.record()
    pipeline.run(max_events=EVENTS)
    return recorder.events, list(pipeline.trace_names)


def _ingest_us(stream, names, backend) -> float:
    """Min-of-repetitions unwatched replay cost, us per event.

    ``stream`` is pre-stamped for the backend (fidge recordings carry
    full clocks; the encoded stream is transcoded once outside the
    timed region — a native encoded kernel stamps at record time, so
    neither backend's replay should be charged for stamping).
    """
    best = float("inf")
    for _ in range(REPETITIONS):
        pipeline = Pipeline.replay(stream, names, clock_backend=backend)
        started = time.perf_counter()
        pipeline.run()
        best = min(best, time.perf_counter() - started)
    return best / len(stream) * 1e6


def _watched(stream, names, backend, case, pattern):
    """One watched replay: identity signature + end-to-end timing."""
    pipeline = Pipeline.replay(stream, names, clock_backend=backend)
    monitor = pipeline.watch(case, pattern, record_timings=False)
    monitor.matcher.time_searches = True
    started = time.perf_counter()
    pipeline.run()
    wall = time.perf_counter() - started
    n = len(stream)
    return {
        "signature": monitor.subset.signature(),
        "reports": monitor.reports,
        "matches": len(monitor.reports),
        "watched_us_per_event": wall / n * 1e6,
        "search_us_per_event": sum(monitor.matcher.search_timings) / n * 1e6,
    }


def _measure_case(name, spec):
    events, names = _record(spec["build"])
    encoded_events, frame = encode_events(events, len(names))
    streams = {"fidge": events, "encoded": encoded_events}

    cap = spec["watched_cap"]
    watched_events = len(events) if cap is None else min(len(events), cap)

    result = {
        "traces": len(names),
        "events": len(events),
        "watched_events": watched_events,
        "frame_rows": frame.num_rows,
        "frame_rows_per_event": frame.num_rows / len(events),
    }
    watched = {}
    for backend in ("fidge", "encoded"):
        w = _watched(
            streams[backend][:watched_events], names, backend, name,
            spec["pattern"],
        )
        watched[backend] = w
        result[backend] = {
            "ingest_us_per_event": _ingest_us(streams[backend], names, backend),
            "watched_us_per_event": w["watched_us_per_event"],
            "search_us_per_event": w["search_us_per_event"],
            "matches": w["matches"],
        }

    assert watched["fidge"]["signature"] == watched["encoded"]["signature"], (
        f"{name}: representative subsets differ between clock backends"
    )
    assert watched["fidge"]["reports"] == watched["encoded"]["reports"], (
        f"{name}: match reports differ between clock backends"
    )
    result["match_output_identical"] = True
    result["causality_speedup"] = (
        result["fidge"]["ingest_us_per_event"]
        / result["encoded"]["ingest_us_per_event"]
    )
    result["end_to_end_speedup"] = (
        result["fidge"]["watched_us_per_event"]
        / result["encoded"]["watched_us_per_event"]
    )
    return result, streams, names


def _time_loop(fn, ops) -> float:
    """Best-of-3 ns per op for ``fn(ops)``."""
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        fn(ops)
        best = min(best, time.perf_counter() - started)
    return best / ops * 1e9


def _tick_microbench():
    """Validated vs trusted vs encoded tick at width ``TICK_WIDTH``."""
    zero = VectorClock.zero(TICK_WIDTH)

    def validated(ops, start=zero):
        # The pre-fix tick: rebuild through the public constructor,
        # re-validating all TICK_WIDTH components per event.
        cur = start
        for _ in range(ops):
            comps = list(cur.components)
            comps[0] += 1
            cur = VectorClock(comps)

    def trusted(ops, start=zero):
        cur = start
        for _ in range(ops):
            cur = cur.tick(0)

    from repro.clocks.encoded import ClockFrame

    ezero = ClockFrame(TICK_WIDTH).zero(0)

    def encoded(ops, start=ezero):
        cur = start
        for _ in range(ops):
            cur = cur.tick(0)

    validated_ns = _time_loop(validated, TICK_OPS)
    trusted_ns = _time_loop(trusted, TICK_OPS)
    encoded_ns = _time_loop(encoded, TICK_OPS)
    return {
        "width": TICK_WIDTH,
        "validated_ns_per_tick": validated_ns,
        "trusted_ns_per_tick": trusted_ns,
        "encoded_ns_per_tick": encoded_ns,
        "trusted_speedup": validated_ns / trusted_ns,
        "encoded_speedup": validated_ns / encoded_ns,
    }


def test_encoded_backend_identity_and_throughput():
    cases = {}
    streams_by_case = {}
    for name, spec in _cases().items():
        result, streams, names = _measure_case(name, spec)
        cases[name] = result
        streams_by_case[name] = (streams, names)

    # Re-measure a case's ingest before declaring a speedup breach
    # real: the headline is a ratio of two sub-10us wall times, and
    # shared runners are noisy.
    for attempt in range(2, MAX_ATTEMPTS + 1):
        failing = [
            n for n, c in cases.items()
            if c["causality_speedup"] < MIN_SPEEDUP
        ]
        if not failing:
            break
        for name in failing:
            streams, names = streams_by_case[name]
            case = cases[name]
            for backend in ("fidge", "encoded"):
                case[backend]["ingest_us_per_event"] = _ingest_us(
                    streams[backend], names, backend
                )
            case["causality_speedup"] = (
                case["fidge"]["ingest_us_per_event"]
                / case["encoded"]["ingest_us_per_event"]
            )
            case["speedup_attempts"] = attempt

    speedups = [c["causality_speedup"] for c in cases.values()]
    ticks = _tick_microbench()
    payload = {
        "events_budget": EVENTS,
        "min_speedup_required": MIN_SPEEDUP,
        "headline": {
            "metric": (
                "per-event causality-tracking cost (deliver + verify + "
                "store one stamped event), unwatched replay, min of "
                f"{REPETITIONS} repetitions"
            ),
            "min_case_speedup": min(speedups),
            "geomean_speedup": math.exp(
                sum(math.log(s) for s in speedups) / len(speedups)
            ),
        },
        "cases": cases,
        "tick_microbench": ticks,
    }
    emit_json("encoded_clocks", payload)

    lines = [
        "Encoded timestamps vs full Fidge/Mattern clocks "
        f"({EVENTS} event budget per case, min of {REPETITIONS} replays):",
        "",
        f"  {'case':10s} {'traces':>6s} {'events':>7s} "
        f"{'fidge':>8s} {'encoded':>8s} {'speedup':>8s}   "
        f"{'watched':>8s} {'search%':>7s} {'rows/ev':>8s}",
    ]
    for name, c in cases.items():
        lines.append(
            f"  {name:10s} {c['traces']:6d} {c['events']:7d} "
            f"{c['fidge']['ingest_us_per_event']:7.2f}u "
            f"{c['encoded']['ingest_us_per_event']:7.2f}u "
            f"{c['causality_speedup']:7.2f}x   "
            f"{c['end_to_end_speedup']:7.2f}x "
            f"{c['encoded']['search_us_per_event'] / max(c['encoded']['watched_us_per_event'], 1e-9):6.1%} "
            f"{c['frame_rows_per_event']:8.3f}"
        )
    lines += [
        "",
        "  causality column: unwatched per-event cost; watched column: "
        "end-to-end ratio with the case pattern attached (search is "
        "backend-independent); rows/ev: interned knowledge rows per "
        "event (bounded-storage claim).",
        "",
        f"  tick @ width {TICK_WIDTH}: validated "
        f"{ticks['validated_ns_per_tick']:.0f}ns  trusted "
        f"{ticks['trusted_ns_per_tick']:.0f}ns "
        f"({ticks['trusted_speedup']:.2f}x)  encoded "
        f"{ticks['encoded_ns_per_tick']:.0f}ns "
        f"({ticks['encoded_speedup']:.2f}x)",
    ]
    emit_text("encoded_clocks", "\n".join(lines))

    for name, c in cases.items():
        assert c["causality_speedup"] >= MIN_SPEEDUP, (
            f"{name}: per-event causality-tracking speedup "
            f"{c['causality_speedup']:.2f}x is below the required "
            f"{MIN_SPEEDUP:.1f}x after {MAX_ATTEMPTS} attempts"
        )
    assert ticks["trusted_speedup"] >= 1.2, (
        "the _trusted tick constructor should beat per-component "
        f"re-validation, measured {ticks['trusted_speedup']:.2f}x"
    )


def test_encoded_replay_accepts_pre_stamped_streams():
    """``Pipeline.replay`` must not re-transcode an already-encoded
    stream (the bench relies on this to keep stamping out of the timed
    region), and prefixes of an encoded stream must stay valid."""
    events, names = _record(
        lambda: build_message_race(
            num_traces=8, seed=1, messages_per_sender=5
        )
    )
    encoded_events, _frame = encode_events(events, len(names))
    pipeline = Pipeline.replay(encoded_events, names, clock_backend="encoded")
    assert isinstance(pipeline._events[0].clock, EncodedClock)
    assert pipeline._events[0].clock.frame is encoded_events[0].clock.frame
    prefix = Pipeline.replay(
        encoded_events[: len(encoded_events) // 2],
        names,
        clock_backend="encoded",
    )
    prefix.run()
