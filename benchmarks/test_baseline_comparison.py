"""E8: comparison against the cited detector families (Section V-C).

The paper compares against published numbers (dependency-graph deadlock
detection: "35 seconds to detect a cycle of length 30" [2];
conflict-graph atomicity detection: "0.4-40 seconds" [40]) because the
tools are not publicly available.  Here the cited algorithms are
reimplemented, so the comparison is measured, not quoted: OCEP and each
baseline consume the identical recorded stream.

Expected shape: OCEP's per-event cost is competitive or better, and —
the paper's actual claim — it is *one generic engine* handling all
four violation families, while each baseline is a dedicated detector.
"""

import statistics

import pytest

from common import REPETITIONS, emit_text, record_stream, replay, scaled
from repro.baselines import (
    ConflictGraphDetector,
    TimestampRaceDetector,
    WaitForGraphDetector,
)
from repro.workloads import (
    atomicity_pattern,
    build_atomicity,
    build_message_race,
    build_random_walk,
    deadlock_pattern,
    message_race_pattern,
)

_ROWS = []


@pytest.fixture(scope="module", autouse=True)
def comparison_report():
    yield
    if _ROWS:
        lines = [
            "E8: OCEP vs dedicated detectors (identical streams, "
            "mean us per event)",
            "",
        ]
        lines += [f"  {row}" for row in _ROWS]
        lines += [
            "",
            "Paper reference points: dependency-graph deadlock detection "
            "took 35 s for a cycle of length 30 [2]; conflict-graph "
            "atomicity detection took 0.4-40 s [40]; OCEP detects each "
            "within a millisecond in most cases.",
        ]
        emit_text("e8_baselines", "\n".join(lines))


def _mean_us(samples):
    return statistics.fmean(samples) * 1e6 if samples else 0.0


class TestDeadlockVsWaitForGraph:
    TRACES = 20

    def _stream(self):
        return record_stream(
            ("deadlock", self.TRACES, 1),
            lambda: build_random_walk(
                num_traces=self.TRACES, seed=1, skip_probability=0.08
            ),
            max_events=scaled(60_000),
        )

    def test_ocep(self, benchmark):
        events, names, workload, outcome = self._stream()
        monitor = benchmark.pedantic(
            lambda: replay(events, deadlock_pattern(self.TRACES), names),
            rounds=REPETITIONS,
            iterations=1,
        )
        assert monitor.reports
        _ROWS.append(
            f"Deadlock  ocep          : {_mean_us(monitor.timings):9.1f} "
            f"(detected: yes)"
        )

    def test_wait_for_graph(self, benchmark):
        events, names, workload, outcome = self._stream()

        def run():
            detector = WaitForGraphDetector(workload.num_traces)
            for event in events:
                detector.on_event(event)
            return detector

        detector = benchmark.pedantic(run, rounds=REPETITIONS, iterations=1)
        assert detector.reports
        _ROWS.append(
            f"Deadlock  wait-for-graph: {_mean_us(detector.timings):9.1f} "
            f"(detected: yes)"
        )


class TestRaceVsTimestampChecker:
    TRACES = 20

    def _stream(self):
        return record_stream(
            ("race", self.TRACES, 2),
            lambda: build_message_race(
                num_traces=self.TRACES,
                seed=2,
                messages_per_sender=max(4, scaled(6_000) // 160),
            ),
            max_events=None,
        )

    def test_ocep(self, benchmark):
        events, names, workload, outcome = self._stream()
        monitor = benchmark.pedantic(
            lambda: replay(events, message_race_pattern(), names),
            rounds=REPETITIONS,
            iterations=1,
        )
        assert monitor.reports
        _ROWS.append(
            f"Races     ocep          : {_mean_us(monitor.timings):9.1f} "
            f"(detected: yes)"
        )

    def test_timestamp_checker(self, benchmark):
        events, names, workload, outcome = self._stream()

        def run():
            detector = TimestampRaceDetector(workload.num_traces)
            for event in events:
                detector.on_event(event)
            return detector

        detector = benchmark.pedantic(run, rounds=REPETITIONS, iterations=1)
        assert detector.reports
        _ROWS.append(
            f"Races     ts-checker    : {_mean_us(detector.timings):9.1f} "
            f"(detected: yes)"
        )


class TestAtomicityVsConflictGraph:
    TRACES = 20

    def _stream(self):
        return record_stream(
            ("atomicity", self.TRACES, 4),
            lambda: build_atomicity(
                num_processes=self.TRACES,
                seed=4,
                iterations=max(10, scaled(8_000) // 160),
                bypass_probability=0.01,
            ),
            max_events=None,
        )

    def test_ocep(self, benchmark):
        events, names, workload, outcome = self._stream()
        monitor = benchmark.pedantic(
            lambda: replay(events, atomicity_pattern(), names),
            rounds=REPETITIONS,
            iterations=1,
        )
        assert monitor.reports
        _ROWS.append(
            f"Atomicity ocep          : {_mean_us(monitor.timings):9.1f} "
            f"(detected: yes)"
        )

    def test_conflict_graph(self, benchmark):
        events, names, workload, outcome = self._stream()

        def run():
            detector = ConflictGraphDetector(workload.num_traces)
            for event in events:
                detector.on_event(event)
            return detector

        detector = benchmark.pedantic(run, rounds=REPETITIONS, iterations=1)
        assert detector.reports
        _ROWS.append(
            f"Atomicity conflict-graph: {_mean_us(detector.timings):9.1f} "
            f"(detected: yes)"
        )
