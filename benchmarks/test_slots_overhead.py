"""``__slots__`` on hot-path classes: the per-event cost of ``__dict__``.

Every :class:`~repro.events.event.Event` of the computation is touched
constantly — by the server store, the causal index, the leaf
histories, the hold-back buffer — so the class is slotted.  This
benchmark measures what that buys: the same recorded stream is
replayed through a fresh monitor twice, once with the slotted events
and once with ``DictEvent`` copies (a subclass that regains the
per-instance ``__dict__``, reproducing the pre-slots object layout),
and the per-event matching-time medians land in ``BENCH_slots.json``
alongside the per-instance memory sizes.

Match output must be identical between the two layouts (slots are a
memory/speed optimization, never a semantic one), and the slotted
layout must not be meaningfully slower than the dict layout.
"""

import statistics
import sys

from common import REPETITIONS, emit_json, scaled
from repro.engine import Pipeline
from repro.events.event import Event
from repro.workloads import message_race_pattern

#: The slotted layout may be up to this much slower before we fail
#: (generous: the point is the recorded trajectory, not a flaky gate).
TOLERANCE = 0.25


class DictEvent(Event):
    """Un-slotted control: a subclass without ``__slots__`` gives every
    instance a ``__dict__`` again, like the pre-slots ``Event``."""


def _as_dict_events(events):
    return [
        DictEvent(
            trace=e.trace, index=e.index, etype=e.etype, text=e.text,
            clock=e.clock, kind=e.kind, partner=e.partner, lamport=e.lamport,
        )
        for e in events
    ]


def _median_event_us(events, names, pattern):
    """Best-of-repetitions median per-event matching time (us)."""
    best = float("inf")
    signature = None
    for _ in range(max(REPETITIONS, 3)):
        pipe = Pipeline.replay(events, names)
        monitor = pipe.watch("race", pattern)
        pipe.run(batch_size=1)
        median = statistics.median(monitor.timings) * 1e6
        if median < best:
            best = median
        signature = monitor.subset.signature()
    return best, signature


def test_slots_per_event_overhead():
    pipe = Pipeline.for_case("race", traces=6, seed=3)
    recorder = pipe.record()
    pipe.run(max_events=scaled(4000))
    names = list(pipe.trace_names)
    pattern = message_race_pattern()
    slotted_events = recorder.events
    dict_events = _as_dict_events(slotted_events)

    assert not hasattr(slotted_events[0], "__dict__")
    assert hasattr(dict_events[0], "__dict__")

    slots_us, slots_sig = _median_event_us(slotted_events, names, pattern)
    dict_us, dict_sig = _median_event_us(dict_events, names, pattern)

    # Identical semantics: the layout must not change what is matched.
    assert slots_sig == dict_sig

    slots_bytes = sys.getsizeof(slotted_events[0])
    dict_bytes = sys.getsizeof(dict_events[0]) + sys.getsizeof(
        dict_events[0].__dict__
    )

    emit_json(
        "slots",
        {
            "title": "__slots__ on Event: per-event median matching time",
            "unit": "us",
            "events": len(slotted_events),
            "per_event_median_us": {
                "dict": dict_us,        # before: __dict__-backed events
                "slots": slots_us,      # after: slotted events
            },
            "speedup": dict_us / slots_us if slots_us else None,
            "event_bytes": {"dict": dict_bytes, "slots": slots_bytes},
            "notes": (
                "dict = events carrying a per-instance __dict__ (the "
                "pre-slots layout); slots = the shipped slotted Event. "
                "Same stream, same pattern, best-of-repetitions medians."
            ),
        },
    )

    assert slots_bytes < dict_bytes
    assert slots_us <= dict_us * (1 + TOLERANCE), (
        f"slotted events are >{TOLERANCE:.0%} slower than dict events "
        f"({slots_us:.2f}us vs {dict_us:.2f}us)"
    )
