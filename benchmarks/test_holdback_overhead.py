"""Hold-back buffer overhead: the repair layer must be cheap.

The causal hold-back buffer (`repro.poet.holdback`) sits on the
delivery hot path when fault tolerance is enabled, so its cost on a
*fault-free* stream — the overwhelmingly common case — is what
matters.  This benchmark replays a recorded message-race stream into a
monitor

* ``direct``   — events fed straight to ``monitor.on_event``,
* ``holdback`` — events routed through a ``HoldbackBuffer`` first,

and reports the relative per-stream overhead (min-of-repetitions).
For context it also measures the buffer's *repair throughput* on a
worst-case input: the same stream fed fully reversed, which forces
nearly every event through the pending map and the drain loop.

The fault-free overhead is asserted only loosely (the buffer adds a
dict lookup and a readiness scan per event, so some cost is expected
and acceptable); the number lands in ``BENCH_holdback_overhead.json``
for the cross-PR perf trajectory.
"""

import os
import time

from common import emit_json, emit_text, record_stream, scaled
from repro.core.monitor import Monitor
from repro.poet.holdback import HoldbackBuffer
from repro.workloads import build_message_race, message_race_pattern

#: Allowed fault-free overhead of routing through the buffer.
TOLERANCE = float(os.environ.get("OCEP_HOLDBACK_TOLERANCE", "0.60"))

MIN_OF = 5

MAX_ATTEMPTS = 4


def _record_stream():
    events, names, _workload, _outcome = record_stream(
        ("race-overhead", 6, 3),
        lambda: build_message_race(
            num_traces=6, seed=3, messages_per_sender=25
        ),
        max_events=scaled(4000),
    )
    return events, names


def _best_seconds(events, names, through_holdback, reverse=False) -> float:
    best = float("inf")
    pattern = message_race_pattern()
    stream = list(reversed(events)) if reverse else events
    for _ in range(MIN_OF):
        monitor = Monitor.from_source(pattern, names, record_timings=False)
        if through_holdback:
            buffer = HoldbackBuffer(len(names), monitor.on_event)
            sink = buffer.offer
        else:
            buffer = None
            sink = monitor.on_event
        started = time.perf_counter()
        for event in stream:
            sink(event)
        if buffer is not None:
            assert buffer.flush() == []
        elapsed = time.perf_counter() - started
        assert monitor.matcher.events_processed == len(events)
        if elapsed < best:
            best = elapsed
    return best


def test_holdback_fault_free_overhead():
    events, names = _record_stream()

    measurements = {}
    for attempt in range(1, MAX_ATTEMPTS + 1):
        direct = _best_seconds(events, names, through_holdback=False)
        holdback = _best_seconds(events, names, through_holdback=True)
        repair = _best_seconds(
            events, names, through_holdback=True, reverse=True
        )
        overhead = holdback / direct - 1.0
        measurements = {
            "events": len(events),
            "attempt": attempt,
            "direct_seconds": direct,
            "holdback_seconds": holdback,
            "repair_reversed_seconds": repair,
            "fault_free_overhead": overhead,
            "tolerance": TOLERANCE,
        }
        if overhead < TOLERANCE:
            break

    emit_json("holdback_overhead", measurements)
    emit_text(
        "holdback_overhead",
        "Hold-back buffer overhead (message-race stream, "
        f"{len(events)} events, min of {MIN_OF} replays):\n"
        f"  direct delivery:          {measurements['direct_seconds'] * 1e3:8.2f} ms\n"
        f"  through hold-back:        {measurements['holdback_seconds'] * 1e3:8.2f} ms "
        f"({measurements['fault_free_overhead'] * 100:+.2f}%)\n"
        f"  worst-case repair (rev.): {measurements['repair_reversed_seconds'] * 1e3:8.2f} ms",
    )

    assert measurements["fault_free_overhead"] < TOLERANCE, (
        f"hold-back buffer adds {measurements['fault_free_overhead']:.1%} "
        f"on a fault-free stream (tolerance {TOLERANCE:.0%}) "
        f"after {MAX_ATTEMPTS} attempts"
    )
