"""Figure 8: execution time for atomicity-violation detection.

Paper setup: a semaphore-protected method executed by 10/20/50 μC++
tasks; 1% of acquires are broken.  The semaphore is its own trace, so
a violation is a pair of concurrent ``Access`` events.

Expected shape (paper): the cheapest case of the four (Q1=42 Med=45
Q3=51 us), roughly flat across trace counts, outliers to ~6.8 ms.
"""

import pytest

from common import (
    REPETITIONS,
    emit_report,
    record_stream,
    replay,
    scaled,
    timing_stats,
)
from repro.workloads import atomicity_pattern, build_atomicity

TRACE_COUNTS = (10, 20, 50)
_RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def fig8_report():
    yield
    if _RESULTS:
        emit_report(
            "fig8_atomicity",
            "Figure 8: Execution Time for Atomicity Violation "
            "(us per terminating event)",
            _RESULTS,
            notes=(
                "Paper reference (Fig 8/10): Q1=42 Med=45 Q3=51 "
                "TopWhisker=65 Max=6819 us."
            ),
        )


@pytest.mark.parametrize("traces", TRACE_COUNTS)
def test_atomicity_detection_time(benchmark, traces):
    iterations = max(10, scaled(8_000) // (traces * 8))
    events, names, workload, outcome = record_stream(
        ("atomicity", traces, 4),
        lambda: build_atomicity(
            num_processes=traces,
            seed=4,
            iterations=iterations,
            bypass_probability=0.01,
        ),
        max_events=None,
    )
    assert not outcome.deadlocked
    assert workload.bypasses, "the 1% bug should fire at this scale"

    monitor = benchmark.pedantic(
        lambda: replay(events, atomicity_pattern(), names),
        rounds=REPETITIONS,
        iterations=1,
    )

    assert monitor.reports, "bypassed acquires must yield concurrent accesses"
    for report in monitor.reports[:20]:
        x, y = report.as_dict().values()
        assert x.concurrent_with(y)

    _RESULTS[f"{traces} traces"] = timing_stats(monitor)
