"""Overload control: disabled-path overhead gate and recall curves.

Two acceptance bargains from the overload-control PR:

* **disabled means free** — a pipeline wired with
  ``with_overload_control()`` whose detector never engages must stay
  within 3% of a plain pipeline (min-of-repetitions, retried before a
  breach is declared real; tolerance overridable via
  ``OCEP_OVERLOAD_TOLERANCE``) *and* produce bit-identical monitor
  output;
* **utility beats random** — at matched drop rates the pattern-aware
  shedder must preserve strictly more oracle matches than a uniform
  random dropper, on every case study (seeds and rates scaled down by
  default; ``OCEP_FULL_SCALE=1`` runs the full 10-seed grid).

Recall curves and overhead ratios land in ``BENCH_overload.json`` for
the cross-PR perf trajectory.
"""

import os
import time

from common import emit_json, emit_text, record_stream, scaled
from repro.engine import Pipeline
from repro.resilience import OverloadState, run_shedding_sweep
from repro.workloads import build_message_race, message_race_pattern

#: Relative overhead allowed for the never-engaged shedder stage.
TOLERANCE = float(os.environ.get("OCEP_OVERLOAD_TOLERANCE", "0.03"))

#: Re-measurements before declaring a tolerance breach real.
MAX_ATTEMPTS = 4

MIN_OF = 5

FULL_SCALE = os.environ.get("OCEP_FULL_SCALE") == "1"


def _record_stream():
    events, names, _workload, _outcome = record_stream(
        ("race-overhead", 6, 3),
        lambda: build_message_race(
            num_traces=6, seed=3, messages_per_sender=25
        ),
        max_events=scaled(4000),
    )
    return events, names, message_race_pattern()


def _best_replay_seconds(events, names, pattern, overload) -> float:
    """Min-of-N total replay wall time (min filters scheduler noise
    out of CPU-bound identical work)."""
    best = float("inf")
    for _ in range(MIN_OF):
        started = time.perf_counter()
        pipeline = Pipeline.replay(events, names)
        if overload:
            pipeline.with_overload_control()
        pipeline.watch("bench", pattern, record_timings=False)
        pipeline.run()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def test_disabled_overload_overhead():
    events, names, pattern = _record_stream()

    # Identity first: the guarded stage must be invisible, not merely
    # cheap.
    plain = Pipeline.replay(events, names)
    plain_monitor = plain.watch("bench", pattern, record_timings=False)
    plain.run()
    wired = Pipeline.replay(events, names)
    wired.with_overload_control()
    wired_monitor = wired.watch("bench", pattern, record_timings=False)
    result = wired.run()
    assert result.overload_detector.state is OverloadState.NORMAL
    assert result.shedder.shed_total == 0
    assert wired_monitor.reports == plain_monitor.reports
    assert (
        wired_monitor.subset.signature() == plain_monitor.subset.signature()
    )

    measurements = {}
    for attempt in range(1, MAX_ATTEMPTS + 1):
        off = _best_replay_seconds(events, names, pattern, overload=False)
        wired_s = _best_replay_seconds(events, names, pattern, overload=True)
        overhead = wired_s / off - 1.0
        measurements = {
            "events": len(events),
            "attempt": attempt,
            "off_seconds": off,
            "wired_seconds": wired_s,
            "overhead": overhead,
            "tolerance": TOLERANCE,
        }
        if overhead < TOLERANCE:
            break

    emit_json("overload_overhead", measurements)
    emit_text(
        "overload_overhead",
        "Disabled overload-control overhead (message-race stream, "
        f"{len(events)} events, min of {MIN_OF} replays):\n"
        f"  off   (no shedder stage):     {measurements['off_seconds'] * 1e3:8.2f} ms\n"
        f"  wired (never-engaged stage):  {measurements['wired_seconds'] * 1e3:8.2f} ms "
        f"({measurements['overhead'] * 100:+.2f}%)",
    )

    assert measurements["overhead"] < TOLERANCE, (
        f"never-engaged shedder stage is {measurements['overhead']:.1%} "
        f"slower than no stage at all (tolerance {TOLERANCE:.0%}) "
        f"after {MAX_ATTEMPTS} attempts"
    )


def test_utility_recall_beats_random():
    seeds = range(10) if FULL_SCALE else range(3)
    report = run_shedding_sweep(seeds=seeds)
    emit_json("overload", report.to_dict())
    emit_text("overload", report.summary())
    assert report.ok, report.summary()
