"""Cost-based constraint planner vs the static heuristic order.

The planner's claim (the PR-10 tentpole): ordering the constraint
search by *live* leaf-history sizes — instead of the static
most-selective-class-first heuristic — makes operator-heavy patterns
cheaper per event, and never makes any pattern slower (legacy patterns
bypass the planner entirely via the ``has_v2_features`` guard).

Methodology
-----------

* Each case's stream is generated once on the encoded-clock kernel
  (the scale backend of PR-8) and replayed through fresh watched
  pipelines with the planner enabled and disabled.  Min-of-repetition
  wall time / events is the per-event cost.
* ``hotpath`` is the head-to-head case: its ``Move`` class carries two
  exact attributes, so the static heuristic instantiates the enormous
  hop history right after the trigger, while the planner sees the live
  sizes and binds the rare ``Pickup`` first.  The planner must be
  ``OCEP_PLAN_MIN_SPEEDUP`` (default 1.2x) faster there.
* ``absence`` (two anchor leaves + a negation) and the legacy ``race``
  control have nothing to reorder — the planner must stay within
  ``OCEP_PLAN_TOLERANCE`` (default 10%) of the legacy cost on every
  case.
* Both configurations must produce identical subset signatures and
  match reports (the oracle suite proves semantics; this pins them at
  benchmark scale too).

Results land in ``BENCH_pattern_plans.json``; the ``*_us`` indicators
feed the ``ocep perf trend`` trajectory.
"""

import math
import os
import time

from common import REPETITIONS, emit_json, emit_text, scaled
from repro.core.config import MatcherConfig
from repro.engine import Pipeline
from repro.workloads import (
    absence_pattern,
    build_absence,
    build_hotpath,
    build_message_race,
    hotpath_pattern,
    message_race_pattern,
)

#: Per-case event budget (the issue's full-scale target is 10^5).
EVENTS = min(scaled(20000), 100_000)

#: Required speedup on the head-to-head (operator-bearing) case.
MIN_SPEEDUP = float(os.environ.get("OCEP_PLAN_MIN_SPEEDUP", "1.2"))

#: Allowed planner slowdown on cases with nothing to reorder.
TOLERANCE = float(os.environ.get("OCEP_PLAN_TOLERANCE", "0.10"))

#: Re-measurements of a failing case before declaring a breach real.
MAX_ATTEMPTS = 4

#: Event cap for the absence case: every Commit matches every earlier
#: same-worker Request, so its search cost grows quadratically in the
#: stream length under BOTH plan orders (same rationale as the
#: deadlock cap in the encoded-clocks bench).
ABSENCE_CAP = 4000


def _units(per_unit: float, producers: int) -> int:
    """Workload units per producer to overshoot the event budget ~5%."""
    return max(2, math.ceil(EVENTS * 1.05 / (producers * per_unit)))


def _cases():
    # per_unit: calibrated events per job/message (send + recv + the
    # producer's emits) — only needs to overshoot the recording cap
    return {
        "hotpath": dict(
            pattern=hotpath_pattern(),
            build=lambda: build_hotpath(
                num_couriers=8,
                seed=0,
                jobs_per_courier=_units(46.0, 8),
                clock_backend="encoded",
            ),
            head_to_head=True,
            cap=None,
        ),
        "absence": dict(
            pattern=absence_pattern(),
            build=lambda: build_absence(
                num_workers=8,
                seed=0,
                jobs_per_worker=_units(5.0, 8),
                clock_backend="encoded",
            ),
            head_to_head=False,
            cap=ABSENCE_CAP,
        ),
        "race": dict(
            pattern=message_race_pattern(),
            build=lambda: build_message_race(
                num_traces=16,
                seed=0,
                messages_per_sender=_units(4.0, 15),
                clock_backend="encoded",
            ),
            head_to_head=False,
            cap=None,
        ),
    }


def _record(build, cap=None):
    pipeline = Pipeline.for_workload(build())
    recorder = pipeline.record()
    budget = EVENTS if cap is None else min(EVENTS, cap)
    pipeline.run(max_events=budget)
    return recorder.events, list(pipeline.trace_names)


def _replay_us(events, names, case, pattern, planner):
    """Min-of-repetitions watched replay: per-event cost + outputs."""
    best = float("inf")
    monitor = None
    for _ in range(REPETITIONS):
        pipeline = Pipeline.replay(events, names, clock_backend="encoded")
        monitor = pipeline.watch(
            case,
            pattern,
            record_timings=False,
            config=MatcherConfig(planner=planner),
        )
        started = time.perf_counter()
        pipeline.run()
        best = min(best, time.perf_counter() - started)
    return {
        "us_per_event": best / len(events) * 1e6,
        "signature": monitor.subset.signature(),
        "reports": monitor.reports,
        "matches": len(monitor.reports),
        "plans_computed": monitor.matcher.plans_computed,
    }


def _measure_case(name, spec):
    events, names = _record(spec["build"], spec["cap"])
    runs = {
        label: _replay_us(events, names, name, spec["pattern"], planner)
        for label, planner in (("planner", True), ("legacy", False))
    }
    assert runs["planner"]["signature"] == runs["legacy"]["signature"], (
        f"{name}: representative subsets differ between plan orders"
    )
    assert runs["planner"]["reports"] == runs["legacy"]["reports"], (
        f"{name}: match reports differ between plan orders"
    )
    result = {
        "events": len(events),
        "traces": len(names),
        "matches": runs["planner"]["matches"],
        "plans_computed": runs["planner"]["plans_computed"],
        "planner_us_per_event": runs["planner"]["us_per_event"],
        "legacy_us_per_event": runs["legacy"]["us_per_event"],
        "speedup": (
            runs["legacy"]["us_per_event"] / runs["planner"]["us_per_event"]
        ),
        "head_to_head": spec["head_to_head"],
    }
    return result, events, names


def test_cost_based_plans_beat_the_static_heuristic():
    cases = {}
    streams = {}
    for name, spec in _cases().items():
        result, events, names = _measure_case(name, spec)
        cases[name] = result
        streams[name] = (events, names)

    # The pass/fail numbers are ratios of wall times on a shared
    # runner; re-measure a failing case before declaring a breach.
    def breached(c):
        if c["head_to_head"] and c["speedup"] < MIN_SPEEDUP:
            return True
        return c["speedup"] < 1.0 / (1.0 + TOLERANCE)

    for attempt in range(2, MAX_ATTEMPTS + 1):
        failing = [n for n, c in cases.items() if breached(c)]
        if not failing:
            break
        for name in failing:
            events, names = streams[name]
            spec = _cases()[name]
            for label, planner in (("planner", True), ("legacy", False)):
                run = _replay_us(events, names, name, spec["pattern"], planner)
                cases[name][f"{label}_us_per_event"] = run["us_per_event"]
            cases[name]["speedup"] = (
                cases[name]["legacy_us_per_event"]
                / cases[name]["planner_us_per_event"]
            )
            cases[name]["attempts"] = attempt

    payload = {
        "events_budget": EVENTS,
        "min_speedup_required": MIN_SPEEDUP,
        "tolerance": TOLERANCE,
        "cases": cases,
    }
    # top-level *_us keys feed the perf-trend indicator sweep
    for name, c in cases.items():
        payload[f"{name}_planner_us"] = c["planner_us_per_event"]
        payload[f"{name}_legacy_us"] = c["legacy_us_per_event"]
    emit_json("pattern_plans", payload)

    lines = [
        "Cost-based constraint planner vs static heuristic order "
        f"({EVENTS} event budget per case, min of {REPETITIONS} replays):",
        "",
        f"  {'case':10s} {'events':>7s} {'matches':>7s} "
        f"{'legacy':>9s} {'planner':>9s} {'speedup':>8s}",
    ]
    for name, c in cases.items():
        marker = "  <- head-to-head" if c["head_to_head"] else ""
        lines.append(
            f"  {name:10s} {c['events']:7d} {c['matches']:7d} "
            f"{c['legacy_us_per_event']:8.2f}u "
            f"{c['planner_us_per_event']:8.2f}u "
            f"{c['speedup']:7.2f}x{marker}"
        )
    lines += [
        "",
        "  identical subset signatures and match reports under both "
        "orders; legacy patterns (race) bypass the planner via the "
        "has_v2_features guard, so their ratio is pure noise.",
    ]
    emit_text("pattern_plans", "\n".join(lines))

    for name, c in cases.items():
        assert c["speedup"] >= 1.0 / (1.0 + TOLERANCE), (
            f"{name}: cost-based order is slower than the legacy "
            f"heuristic ({c['speedup']:.2f}x, tolerance {TOLERANCE:.0%}) "
            f"after {MAX_ATTEMPTS} attempts"
        )
    head = [c for c in cases.values() if c["head_to_head"]]
    assert any(c["speedup"] >= MIN_SPEEDUP for c in head), (
        "no operator-bearing case cleared the required "
        f"{MIN_SPEEDUP:.1f}x planner speedup: "
        + ", ".join(
            f"{n} {c['speedup']:.2f}x"
            for n, c in cases.items()
            if c["head_to_head"]
        )
    )
