"""Workload characterization: the causal structure of each case study.

Not a paper artifact per se, but the context the evaluation section
implies: how much communication and concurrency each case-study stream
contains.  Reported: events, messages, causal critical path, average
width, and the exact pairwise-concurrency ratio.
"""

import pytest

from common import REPETITIONS, emit_text, record_stream, replay, scaled
from repro.analysis import compute_metrics, format_table
from repro.workloads import (
    atomicity_pattern,
    build_atomicity,
    build_message_race,
    build_ordering_bug,
    build_random_walk,
    deadlock_pattern,
    message_race_pattern,
    ordering_bug_pattern,
)

_ROWS = []

CASES = {
    "deadlock": (
        lambda: build_random_walk(num_traces=8, seed=31, skip_probability=0.08),
        lambda: deadlock_pattern(8),
        scaled(8_000),
    ),
    "race": (
        lambda: build_message_race(num_traces=8, seed=31, messages_per_sender=8),
        message_race_pattern,
        None,
    ),
    "atomicity": (
        lambda: build_atomicity(
            num_processes=8, seed=31, iterations=12, bypass_probability=0.05
        ),
        atomicity_pattern,
        None,
    ),
    "ordering": (
        lambda: build_ordering_bug(
            num_traces=8, seed=31, synchs_per_follower=4, bug_probability=0.2
        ),
        ordering_bug_pattern,
        None,
    ),
}


@pytest.fixture(scope="module", autouse=True)
def characterization_report():
    yield
    if _ROWS:
        table = format_table(
            [
                "case",
                "events",
                "messages",
                "critical path",
                "avg width",
                "concurrency",
            ],
            _ROWS,
        )
        emit_text(
            "workload_characterization",
            "Workload characterization (causal structure per case study)\n\n"
            + table,
        )


@pytest.mark.parametrize("case", list(CASES))
def test_characterize(benchmark, case):
    build, pattern, max_events = CASES[case]
    events, names, workload, outcome = record_stream(
        ("characterize", case, 31), build, max_events=max_events
    )
    benchmark.pedantic(
        lambda: replay(events, pattern(), names),
        rounds=REPETITIONS,
        iterations=1,
    )
    metrics = compute_metrics(events, workload.num_traces)
    _ROWS.append(
        [
            case,
            str(metrics.num_events),
            str(metrics.num_messages),
            str(metrics.critical_path),
            f"{metrics.width:.1f}",
            f"{metrics.concurrency_ratio:.2f}",
        ]
    )
    assert metrics.num_messages > 0
    assert 0.0 <= metrics.concurrency_ratio <= 1.0
