#!/usr/bin/env python3
"""The Figure 3 scenario: representative subset vs. sliding window.

The paper motivates the representative subset with a three-process
diagram: on arrival of the terminating event ``b``, four matches of
``A -> B`` exist, but an ``n^2``-event sliding window only sees the
recent ones and misses the match involving the ``a`` on P1 — so the
window's answer is not representative.  OCEP reports one match per
(pattern event, trace) slot, which by construction covers every process
that participates in any match.

This example builds the scenario by hand with the
:class:`repro.testing.Weaver` and shows all three answers: every match
(the oracle), the sliding window's, and OCEP's representative subset.

Run with::

    python examples/representative_subset.py
"""

from repro import MatcherConfig, enumerate_matches
from repro.baselines import SlidingWindowMatcher
from repro.engine import Pipeline
from repro.testing import Weaver

PATTERN = "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;"
TRACES = ["P0", "P1", "P2"]


def build_scenario() -> Weaver:
    w = Weaver(3)
    w.local(0, "C")          # noise
    w.local(0, "A")          # a13
    w.local(0, "A")          # a14
    w.local(0, "A")          # a15
    w.local(1, "A")          # a21
    s1, _ = w.message(1, 2)  # orders a21 before b
    for _ in range(4):       # push the old events out of a small window
        w.local(2, "Noise")
    s2, _ = w.message(0, 2)  # orders P0's a's before b
    w.local(2, "B")          # b25 — the terminating event
    return w


def render(matches) -> str:
    return ", ".join(
        "{" + ", ".join(f"{m[k].etype}@{TRACES[m[k].trace]}.{m[k].index}"
                        for k in sorted(m)) + "}"
        for m in matches
    )


def main() -> None:
    weaver = build_scenario()

    from repro.analysis import render_diagram

    print("the process-time diagram (paper Figure 3, plus window noise):")
    print(render_diagram(weaver.events, 3, trace_names=TRACES))
    print()

    pipeline = Pipeline.replay(weaver.events, TRACES)
    monitor = pipeline.watch(
        "subset", PATTERN, config=MatcherConfig(prune_history=False)
    )
    pipeline.run()

    window = SlidingWindowMatcher(monitor.pattern, 3, window=6)
    window_matches = []
    for event in weaver.events:
        window_matches.extend(window.on_event(event))

    oracle = enumerate_matches(monitor.pattern, weaver.events)
    print(f"all matches ({len(oracle)}):")
    print("  " + render(oracle))

    print(f"\nsliding window of 6 events ({len(window_matches)}):")
    print("  " + (render(window_matches) or "(nothing)"))
    missed = {(0, 1)} - window.covered_slots
    if missed:
        print("  -> the window never pairs b with the A on P1: "
              "its answer is not representative")

    subset = [s.as_dict() for s in monitor.subset.matches]
    print(f"\nOCEP representative subset ({len(subset)}):")
    print("  " + render(subset))
    print(f"  covered (event, trace) slots: "
          f"{sorted(monitor.subset.covered_slots)}")

    assert monitor.subset.covered_slots == {(0, 0), (0, 1), (1, 2)}
    print("\nevery process participating in a match is represented.")


if __name__ == "__main__":
    main()
