#!/usr/bin/env python3
"""The ZooKeeper bug-962 case study (paper, Sections III-D and V-C4).

ZooKeeper followers synchronize with the leader by requesting a
snapshot.  Bug #962: the leader was not blocked from applying an
update *after* taking the snapshot and *before* forwarding it, so a
restarting follower could receive stale service data.

The ordering pattern expresses the violating causal chain

    Synch  ->  Snapshot  ->  Update  ->  Forward

with event variables pinning the same snapshot/update and an attribute
variable pairing the request's events.  This example runs the
leader/follower simulation with the bug injected at 10% and shows
OCEP catching every buggy request — and nothing else.

Run with::

    python examples/zookeeper_ordering_bug.py
"""

from repro.engine import Pipeline
from repro.workloads import build_ordering_bug, ordering_bug_pattern


def main() -> None:
    pipeline = Pipeline.for_workload(build_ordering_bug(
        num_traces=8,  # one leader, seven followers
        seed=7,
        synchs_per_follower=6,
        bug_probability=0.10,
    ))
    workload = pipeline.workload

    print("ordering pattern under watch:")
    print(ordering_bug_pattern())

    monitor = pipeline.watch("ordering", ordering_bug_pattern())

    print("running the replicated service ...")
    result = pipeline.run().outcome
    print(f"simulated {result.num_events} events\n")

    matched_requests = {}
    for report in monitor.reports:
        request_id = dict(report.bindings)["r"]
        matched_requests.setdefault(request_id, report)

    print(f"injected stale-snapshot bugs: {sorted(workload.buggy_requests)}")
    print(f"requests flagged by OCEP:     {sorted(matched_requests)}\n")

    for request_id, report in sorted(matched_requests.items()):
        chain = sorted(report.as_dict().values(), key=lambda e: e.lamport)
        rendered = "  ->  ".join(
            f"{e.etype}@{workload.kernel.trace_names()[e.trace]}" for e in chain
        )
        print(f"  {request_id}: {rendered}")

    assert set(matched_requests) == set(workload.buggy_requests), (
        "detection must be complete with no false positives"
    )
    print("\nall injected violations detected; no false positives.")


if __name__ == "__main__":
    main()
