#!/usr/bin/env python3
"""MPI send-cycle deadlock detection (paper, Section V-C1).

A parallel random walk exchanges boundary-crossing walkers around a
ring.  The injected bug — occasionally skipping a receive — lets
unconsumed messages pile up until every rank is blocked in ``MPI_Send``
at once.  OCEP detects the cycle as ``n`` pairwise-concurrent
``SendBlock`` events; the wait-for-graph baseline detects the same
deadlock by cycle search, at a very different cost profile.

Run with::

    python examples/deadlock_detection.py
"""

import statistics

from repro.baselines import WaitForGraphDetector
from repro.engine import Pipeline
from repro.workloads import build_random_walk, deadlock_pattern

RING = 8


def main() -> None:
    pipeline = Pipeline.for_workload(
        build_random_walk(num_traces=RING, seed=11, skip_probability=0.08)
    )
    monitor = pipeline.watch("deadlock", deadlock_pattern(RING))
    recorder = pipeline.record()
    workload = pipeline.workload

    print(f"running a {RING}-rank parallel random walk with a latent "
          "communication deadlock ...")
    result = pipeline.run(max_events=60_000).outcome
    print(f"simulation ended after {result.num_events} events; "
          f"deadlocked={result.deadlocked}, blocked ranks={list(result.blocked)}\n")

    if monitor.reports:
        final = monitor.reports[-1]
        print("OCEP matched the blocked-send cycle:")
        for _, event in final.assignment:
            name = workload.kernel.trace_names()[event.trace]
            print(f"  {name}: SendBlock {event.text!r} "
                  f"(event {event.event_id})")
    else:
        print("no cycle matched (run again with a different seed)")

    # The wait-for-graph baseline on the same recorded stream.
    detector = WaitForGraphDetector(workload.num_traces)
    graph_report = None
    for event in recorder.events:
        found = detector.on_event(event)
        if found is not None and graph_report is None:
            graph_report = found
    print("\nwait-for-graph baseline:",
          f"cycle {list(graph_report.cycle)}" if graph_report else "no cycle")

    if monitor.terminating_timings:
        med = statistics.median(monitor.terminating_timings) * 1e6
        print(f"\nOCEP per-trigger matching time: median {med:.0f} us over "
              f"{len(monitor.terminating_timings)} terminating events")


if __name__ == "__main__":
    main()
