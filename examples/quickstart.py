#!/usr/bin/env python3
"""Quickstart: monitor a simulated distributed application online.

This is the smallest complete OCEP pipeline:

1. build a simulated target application (two processes exchanging
   messages) on the discrete-event kernel;
2. wrap it in an engine :class:`~repro.engine.Pipeline` (which
   instruments it with the POET substrate);
3. watch the causal pattern ``A -> B``;
4. run — matches are reported the moment their last event arrives.

Run with::

    python examples/quickstart.py
"""

from repro import Kernel
from repro.engine import Pipeline

PATTERN = """
# A request event on any process, causally followed by a completion
# event on any process.
A := ['', Request, ''];
B := ['', Complete, ''];
pattern := A -> B;
"""


def producer(p):
    """Emits Request events and ships work to the consumer."""
    for i in range(5):
        yield p.emit("Request", text=f"job-{i}")
        yield p.send(1, payload=f"job-{i}")


def consumer(p):
    """Receives work and emits Complete events."""
    for _ in range(5):
        msg = yield p.receive()
        yield p.emit("Complete", text=msg.payload)


def main() -> None:
    kernel = Kernel(num_processes=2, seed=42)

    def on_match(report):
        assignment = report.as_dict()
        request, complete = assignment[0], assignment[1]
        print(
            f"  match: {request.text!r} on trace {request.trace} "
            f"-> {complete.text!r} on trace {complete.trace}"
        )

    pipeline = Pipeline.for_kernel(kernel)
    monitor = pipeline.watch("quickstart", PATTERN, on_match=on_match)

    kernel.spawn(0, producer)
    kernel.spawn(1, consumer)

    print("running the simulated application ...")
    result = pipeline.run()

    stats = monitor.stats()
    print(f"\nprocessed {stats.events_seen} events")
    print(f"reported {stats.matches_reported} matches online")
    print(
        f"representative subset stores {stats.subset_size} matches "
        f"(bound: {monitor.pattern.num_leaves} leaves x "
        f"{kernel.num_traces} traces)"
    )
    assert not result.deadlocked


if __name__ == "__main__":
    main()
