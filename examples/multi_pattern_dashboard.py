#!/usr/bin/env python3
"""Watching several safety conditions at once with a sharded pipeline.

A realistic deployment monitors many patterns over one event stream.
This example runs the traffic-light system (the paper's introductory
example) through one :class:`~repro.engine.Pipeline` whose sharded
dispatcher watches three conditions simultaneously:

* ``conflict``  — two lights green concurrently (the unsafe state);
* ``handshake`` — every grant is answered: controller grant message
  partnered with the light's receive (a liveness-ish sanity pattern);
* ``sequence``  — a light goes green after receiving its grant.

Run with::

    python examples/multi_pattern_dashboard.py
"""

from repro.analysis import format_table
from repro.engine import Pipeline
from repro.workloads import build_traffic_light, traffic_light_pattern

HANDSHAKE = """
Grant := [P0, Send, ''];
Taken := ['', Receive, ''];
pattern := Grant <> Taken;
"""

SEQUENCE = """
Taken := ['', Receive, ''];
Green := ['', Green, ''];
Taken $t;
pattern := $t -> Green;
"""


def main() -> None:
    alerts = []
    pipeline = Pipeline.for_workload(build_traffic_light(
        num_lights=4, seed=2, cycles=30, fault_probability=0.15
    )).on_match(lambda name, report: alerts.append(name))
    pipeline.watch("conflict", traffic_light_pattern())
    pipeline.watch("handshake", HANDSHAKE)
    pipeline.watch("sequence", SEQUENCE)
    workload = pipeline.workload

    print("running the traffic-light system with a flaky relay ...")
    outcome = pipeline.run()
    result = outcome.outcome
    print(f"simulated {result.num_events} events; "
          f"{len(workload.faults)} stuck-relay faults injected\n")

    rows = []
    for name, stats in outcome.stats().items():
        rows.append(
            [
                name,
                str(stats.matches_reported),
                str(stats.subset_size),
                str(stats.searches_run),
                str(stats.history_size),
            ]
        )
    print(format_table(
        ["pattern", "matches", "subset", "searches", "history"], rows
    ))

    conflicts = outcome["conflict"].reports
    print(f"\nunsafe states (concurrent greens): {len(conflicts)}")
    for report in conflicts[:5]:
        g1, g2 = report.as_dict().values()
        names = workload.kernel.trace_names()
        print(f"  {names[g1.trace]} green ({g1.text}) || "
              f"{names[g2.trace]} green ({g2.text})")

    assert bool(workload.faults) == bool(conflicts), (
        "conflicts must appear exactly when relays stick"
    )
    print("\nconflicts appear exactly when the relay sticks; the "
          "handshake and sequence patterns match routinely, as designed.")


if __name__ == "__main__":
    main()
