#!/usr/bin/env python3
"""POET dump/reload workflow (paper, Section V-B).

The evaluation methodology collects each workload's events once, dumps
them to a file, and replays the file through the matcher several
times: identical inputs, repeatable measurements.  This example records
an atomicity-violation run, dumps it, reloads it, and shows the replay
producing the identical detections.

Run with::

    python examples/dump_and_replay.py
"""

import tempfile
from pathlib import Path

from repro import dump_events
from repro.engine import Pipeline
from repro.workloads import atomicity_pattern, build_atomicity


def detections(monitor):
    return [
        tuple(sorted(str(e.event_id) for _, e in report.assignment))
        for report in monitor.reports
    ]


def main() -> None:
    live = Pipeline.for_workload(build_atomicity(
        num_processes=6, seed=21, iterations=40, bypass_probability=0.05
    ))
    recorder = live.record()
    live_monitor = live.watch("atomicity", atomicity_pattern())
    workload = live.workload

    print("running the semaphore workload live ...")
    result = live.run().outcome
    print(f"  {result.num_events} events, "
          f"{len(workload.bypasses)} broken acquires injected, "
          f"{len(live_monitor.reports)} violations reported live")

    with tempfile.TemporaryDirectory() as tmp:
        dump_path = Path(tmp) / "atomicity.poet"
        count = dump_events(
            dump_path,
            recorder.events,
            workload.num_traces,
            list(live.trace_names),
        )
        size = dump_path.stat().st_size
        print(f"\ndumped {count} events to {dump_path.name} ({size:,} bytes)")

        replay = Pipeline.from_dump(dump_path)
        replay_monitor = replay.watch("atomicity", atomicity_pattern())
        replayed = replay.run()
        print(f"reloaded {replayed.num_events} events over "
              f"{replay.num_traces} traces (batch-first delivery)")
        print(f"replay reported {len(replay_monitor.reports)} violations")

        assert detections(live_monitor) == detections(replay_monitor)
        print("\nlive and replayed detections are identical.")


if __name__ == "__main__":
    main()
