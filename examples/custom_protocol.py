#!/usr/bin/env python3
"""Monitoring your own protocol with a custom pattern.

This example builds a small two-phase-commit-style protocol from
scratch on the simulation kernel and writes a bespoke safety pattern
for it: *a participant must never apply a transaction it voted NO on*.

The coordinator broadcasts PREPARE, collects votes, and broadcasts
COMMIT when all votes are YES (ABORT otherwise).  The injected bug: a
participant occasionally applies the transaction on PREPARE already,
presuming the commit — a safety violation because the decision might
be ABORT.

Safety as a causal pattern: a correct apply is causally *after* the
coordinator's decision, ``Decide(tx) -> Apply(tx)``.  The presumptuous
apply happens before the participant's vote is even sent, so it
causally *precedes* the decision — the violating order is exactly
``Apply(tx) -> Decide(tx)``, with the transaction id tied by the
attribute variable ``$tx``.  In a correct run this chain can never
occur (the decision for ``tx`` is unique and precedes every apply of
``tx``), so any match is a true violation.

Run with::

    python examples/custom_protocol.py
"""

from repro import ANY_SOURCE, Kernel
from repro.engine import Pipeline

PARTICIPANTS = 4
TRANSACTIONS = 12
PRESUME_COMMIT_PROB = 0.08  # the injected bug

PATTERN = """
# an application of a transaction that causally PRECEDES the
# coordinator's decision for the same transaction ($tx binds the ids):
# the participant applied before the outcome existed.
Decide := [P0, Decide, $tx];
Apply  := ['', Apply, $tx];
pattern := Apply -> Decide;
"""


def coordinator(p):
    for tx in range(TRANSACTIONS):
        tx_id = f"tx{tx}"
        for participant in range(1, PARTICIPANTS + 1):
            yield p.send(participant, payload=("prepare", tx_id), tag="2pc")
        votes = []
        for _ in range(PARTICIPANTS):
            msg = yield p.receive(ANY_SOURCE, tag="vote")
            votes.append(msg.payload[1])
        decision = "commit" if all(votes) else "abort"
        yield p.emit("Decide", text=tx_id)
        for participant in range(1, PARTICIPANTS + 1):
            yield p.send(participant, payload=(decision, tx_id), tag="2pc")


def participant(p):
    rng = p.rng
    while True:
        msg = yield p.receive(0, tag="2pc")
        kind, tx_id = msg.payload
        if kind == "prepare":
            vote = rng.random() > 0.2
            if rng.random() < PRESUME_COMMIT_PROB:
                # the bug: apply before hearing the decision
                yield p.emit("Apply", text=tx_id)
            yield p.send(0, payload=("vote", vote), tag="vote")
        elif kind == "commit":
            yield p.emit("Apply", text=tx_id)
        # aborts apply nothing


def main() -> None:
    kernel = Kernel(num_processes=PARTICIPANTS + 1, seed=17)
    pipeline = Pipeline.for_kernel(kernel)
    monitor = pipeline.watch("presumed-commit", PATTERN)

    kernel.spawn(0, coordinator)
    for pid in range(1, PARTICIPANTS + 1):
        kernel.spawn(pid, participant)

    print(f"running 2PC for {TRANSACTIONS} transactions over "
          f"{PARTICIPANTS} participants ...")
    result = pipeline.run(max_events=20_000).outcome
    print(f"simulated {result.num_events} events\n")

    violations = {}
    for report in monitor.reports:
        tx = dict(report.bindings)["tx"]
        apply_event = next(
            e for e in report.as_dict().values() if e.etype == "Apply"
        )
        violations.setdefault(tx, set()).add(
            kernel.trace_names()[apply_event.trace]
        )

    if violations:
        print("presumed-commit violations detected:")
        for tx, names in sorted(violations.items()):
            print(f"  {tx}: applied before the decision existed, "
                  f"on {sorted(names)}")
    else:
        print("no violations this run (increase PRESUME_COMMIT_PROB "
              "or change the seed)")

    # each reported apply really precedes its decision
    for report in monitor.reports:
        assignment = report.as_dict()
        apply_event = next(
            e for e in assignment.values() if e.etype == "Apply"
        )
        decide_event = next(
            e for e in assignment.values() if e.etype == "Decide"
        )
        assert apply_event.happens_before(decide_event)
    print(f"\n{len(monitor.reports)} reports, all causally verified; "
          f"subset stores {len(monitor.subset)} matches")


if __name__ == "__main__":
    main()
