"""Unit tests for :class:`~repro.patterns.classes.UnionClass`.

The disjunction leaf matches its alternatives left to right,
first-match-wins; each branch is tried under a *copy* of the binding
environment, so a branch that binds an attribute variable and then
fails cannot leak that binding into the next branch (the ``$1``-in-
both-branches regression).
"""

import pytest

from repro.core import Monitor
from repro.patterns import PatternTree, parse_pattern
from repro.patterns.ast import AttrVar, ClassDef, Exact, Wildcard
from repro.patterns.classes import UnionClass
from repro.testing import Weaver

NAMES = ("P0", "P1", "P2")


def union(*defs):
    return UnionClass.from_defs(defs, NAMES)


def cdef(name, process=Wildcard(), etype=Wildcard(), text=Wildcard()):
    return ClassDef(name=name, process=process, etype=etype, text=text)


def event(etype="A", text="", trace=0):
    w = Weaver(len(NAMES))
    return w.local(trace, etype, text)


class TestMatching:
    def test_first_match_wins_left_to_right(self):
        u = union(cdef("A", etype=Exact("A")), cdef("B", etype=Exact("B")))
        assert u.matches(event("A")) == {}
        assert u.matches(event("B")) == {}
        assert u.matches(event("C")) is None

    def test_name_joins_alternatives(self):
        u = union(cdef("A"), cdef("B"))
        assert u.name == "A \\/ B"

    def test_needs_two_alternatives(self):
        with pytest.raises(ValueError):
            union(cdef("A"))

    def test_could_match_any_branch(self):
        u = union(cdef("A", etype=Exact("A")), cdef("B", etype=Exact("B")))
        assert u.could_match(event("B"))
        assert not u.could_match(event("C"))


class TestPerBranchScoping:
    def test_failed_branch_does_not_leak_bindings(self):
        # branch 1 binds $1 to the process, then fails on the text;
        # branch 2 must still see the *original* environment
        u = union(
            cdef("A", process=AttrVar("1"), text=Exact("nope")),
            cdef("B", process=AttrVar("1")),
        )
        env = u.matches(event(trace=2))
        assert env == {"1": "P2"}

    def test_variable_bound_by_matching_branch_propagates(self):
        u = union(
            cdef("A", etype=Exact("A"), process=AttrVar("1")),
            cdef("B", etype=Exact("B"), process=AttrVar("1")),
        )
        env = u.matches(event("B", trace=1))
        assert env == {"1": "P1"}
        # a pre-bound variable constrains every branch
        assert u.matches(event("B", trace=1), {"1": "P2"}) is None

    def test_input_environment_never_mutated(self):
        u = union(
            cdef("A", process=AttrVar("1"), text=Exact("nope")),
            cdef("B", process=AttrVar("2")),
        )
        before = {"0": "x"}
        u.matches(event(trace=0), before)
        assert before == {"0": "x"}


class TestHints:
    def test_hints_only_when_all_branches_agree(self):
        agree = union(
            cdef("A", etype=Exact("E"), process=Exact("P1")),
            cdef("B", etype=Exact("E"), process=Exact("P1")),
        )
        assert agree.exact_etype() == "E"
        assert agree.pinned_trace({}) == 1
        disagree = union(
            cdef("A", etype=Exact("E")), cdef("B", etype=Exact("F"))
        )
        assert disagree.exact_etype() is None
        assert disagree.pinned_trace({}) is None


class TestDisjunctionPatternRegression:
    """End-to-end: ``$1`` used inside both branches of ``\\/``."""

    SOURCE = """
A := [$1, A, 'x'];
B := [$1, B, ''];
C := [$1, C, ''];
pattern := A \\/ B -> C;
"""

    def test_branch_failure_keeps_env_clean(self):
        # an A-typed event with the wrong text falls through branch 1
        # *after* branch 1 bound $1; branch 2 must not inherit that
        w = Weaver(3)
        b = w.local(1, "B")          # matches branch 2, binds $1=P1
        c = w.local(1, "C")          # completes the match on P1
        w.local(2, "A", "wrong")     # branch 1 fails on text
        monitor = Monitor.from_source(self.SOURCE, NAMES)
        for e in w.events:
            monitor.on_event(e)
        assert len(monitor.reports) == 1
        assert monitor.reports[0].as_dict() == {0: b, 1: c}
        assert dict(monitor.reports[0].bindings) == {"1": "P1"}

    def test_cross_leaf_consistency_respected(self):
        # $1 bound by the union leaf must constrain the C leaf
        w = Weaver(3)
        w.local(1, "B")
        w.local(2, "C")              # wrong process: no match
        monitor = Monitor.from_source(self.SOURCE, NAMES)
        for e in w.events:
            monitor.on_event(e)
        assert monitor.reports == []

    def test_tree_builds_single_union_leaf(self):
        tree = PatternTree(parse_pattern(self.SOURCE), NAMES)
        assert len(tree.leaves) == 2
        assert isinstance(tree.leaves[0].event_class, UnionClass)
