"""Unit tests for the OCEP matching engine on hand-built scenarios."""

from repro.core import MatcherConfig, OCEPMatcher, SweepMode
from repro.patterns import PatternTree, compile_pattern, parse_pattern
from repro.testing import Weaver


def build_matcher(source, num_traces, names=None, **config_kwargs):
    names = names or [f"P{i}" for i in range(num_traces)]
    compiled = compile_pattern(PatternTree(parse_pattern(source), names))
    return OCEPMatcher(compiled, num_traces, MatcherConfig(**config_kwargs))


def feed(matcher, events):
    reports = []
    for event in events:
        reports.extend(matcher.on_event(event))
    return reports


def ids(report):
    return {leaf: str(e.event_id) for leaf, e in report.assignment}


AB = "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;"


class TestSimplePrecedence:
    def test_match_through_message(self):
        w = Weaver(2)
        a = w.local(0, "A")
        s, r = w.message(0, 1)
        b = w.local(1, "B")
        m = build_matcher(AB, 2)
        reports = feed(m, w.events)
        assert len(reports) == 1
        assert ids(reports[0]) == {0: "e0.1", 1: "e1.2"}

    def test_no_match_for_concurrent_events(self):
        w = Weaver(2)
        w.local(0, "A")
        w.local(1, "B")
        m = build_matcher(AB, 2)
        assert feed(m, w.events) == []

    def test_no_match_for_reversed_order(self):
        w = Weaver(2)
        b = w.local(0, "B")
        s, r = w.message(0, 1)
        a = w.local(1, "A")
        m = build_matcher(AB, 2)
        assert feed(m, w.events) == []

    def test_same_trace_precedence(self):
        w = Weaver(1)
        w.local(0, "A")
        w.local(0, "B")
        m = build_matcher(AB, 1)
        reports = feed(m, w.events)
        assert len(reports) == 1

    def test_figure3_representative_subset(self):
        """The Figure 3 scenario: on arrival of b, the desired subset
        pairs b with the newest a on each trace that has one."""
        w = Weaver(3)
        # P0: c a a a  (a13 a14 a15 in the figure, approximately)
        w.local(0, "C")
        a13 = w.local(0, "A")
        a14 = w.local(0, "A")
        a15 = w.local(0, "A")
        # P1: a then a message to P2 so a21 precedes b25
        a21 = w.local(1, "A")
        s, r = w.message(1, 2)
        # P0 -> P2 message so P0's a events precede b as well
        s2, r2 = w.message(0, 2)
        b25 = w.local(2, "B")
        m = build_matcher(AB, 3, prune_history=False)
        reports = feed(m, w.events)
        pairs = {ids(rep)[0] for rep in reports}
        # one match per trace with an A, using the newest A on P0
        assert pairs == {str(a15.event_id), str(a21.event_id)}
        assert m.subset.covered_slots == {(0, 0), (0, 1), (1, 2)}

    def test_history_pruning_keeps_newest_and_still_matches(self):
        w = Weaver(3)
        w.local(0, "C")
        for _ in range(3):
            w.local(0, "A")
        s2, r2 = w.message(0, 2)
        b = w.local(2, "B")
        m = build_matcher(AB, 3, prune_history=True)
        reports = feed(m, w.events)
        assert len(reports) == 1
        assert m.history.leaf(0).size == 1  # three As collapsed to one


class TestConcurrency:
    def test_both_directions_trigger(self):
        AB_CONC = "A := ['', A, '']; B := ['', B, '']; pattern := A || B;"
        w = Weaver(2)
        w.local(0, "A")
        w.local(1, "B")
        m = build_matcher(AB_CONC, 2)
        reports = feed(m, w.events)
        # the B arrival completes the match (A arrived first)
        assert len(reports) == 1

    def test_ordered_events_never_match_concurrency(self):
        AB_CONC = "A := ['', A, '']; B := ['', B, '']; pattern := A || B;"
        w = Weaver(2)
        w.local(0, "A")
        s, r = w.message(0, 1)
        w.local(1, "B")
        m = build_matcher(AB_CONC, 2)
        assert feed(m, w.events) == []


class TestVariables:
    def test_event_variable_requires_same_event(self):
        source = (
            "A := ['', A, '']; B := ['', B, '']; C := ['', C, '']; A $x;"
            "pattern := ($x -> B) /\\ ($x -> C);"
        )
        w = Weaver(3)
        a = w.local(0, "A")
        s1, r1 = w.message(0, 1)
        b = w.local(1, "B")
        s2, r2 = w.message(0, 2)
        c = w.local(2, "C")
        m = build_matcher(source, 3)
        reports = feed(m, w.events)
        assert reports
        for rep in reports:
            assignment = rep.as_dict()
            assert assignment[0] == a  # the shared $x leaf

    def test_attribute_variable_constrains_process(self):
        source = "A := [$p, A, '']; B := [$p, B, '']; pattern := A -> B;"
        w = Weaver(2)
        w.local(0, "A")
        s, r = w.message(0, 1)
        w.local(1, "B")  # B on different trace: $p mismatch
        m = build_matcher(source, 2)
        assert feed(m, w.events) == []
        w2 = Weaver(2)
        w2.local(0, "A")
        w2.local(0, "B")
        m2 = build_matcher(source, 2)
        reports = feed(m2, w2.events)
        assert len(reports) == 1
        assert dict(reports[0].bindings) == {"p": "P0"}


class TestPartnerOperator:
    SR = "S := ['', Send, '']; R := ['', Receive, '']; pattern := S <> R;"

    def test_matches_only_true_partners(self):
        w = Weaver(3)
        s1, r1 = w.message(0, 1)
        s2, r2 = w.message(2, 1)
        m = build_matcher(self.SR, 3)
        reports = feed(m, w.events)
        matched_pairs = {
            tuple(sorted(str(e.event_id) for _, e in rep.assignment))
            for rep in reports
        }
        assert matched_pairs == {
            tuple(sorted((str(s1.event_id), str(r1.event_id)))),
            tuple(sorted((str(s2.event_id), str(r2.event_id)))),
        }


class TestLimitedPrecedence:
    LIM = "A := ['', A, '']; B := ['', B, '']; pattern := A ~> B;"

    def test_intermediate_a_blocks_match(self):
        w = Weaver(1)
        a1 = w.local(0, "A")
        a2 = w.local(0, "A")
        b = w.local(0, "B")
        m = build_matcher(self.LIM, 1, sweep=SweepMode.EXHAUSTIVE)
        reports = feed(m, w.events)
        # only the immediate predecessor a2 matches
        assert [ids(r)[0] for r in reports] == [str(a2.event_id)]

    def test_plain_match_when_no_intermediate(self):
        w = Weaver(1)
        a = w.local(0, "A")
        b = w.local(0, "B")
        m = build_matcher(self.LIM, 1)
        assert len(feed(m, w.events)) == 1


class TestSweepModes:
    def _scenario(self):
        w = Weaver(3)
        a1 = w.local(0, "A")
        a2 = w.local(1, "A")
        s1, r1 = w.message(0, 2)
        s2, r2 = w.message(1, 2)
        b = w.local(2, "B")
        return w

    def test_first_stops_after_one(self):
        w = self._scenario()
        m = build_matcher(AB, 3, sweep=SweepMode.FIRST)
        assert len(feed(m, w.events)) == 1

    def test_coverage_reports_one_per_trace(self):
        w = self._scenario()
        m = build_matcher(AB, 3, sweep=SweepMode.COVERAGE)
        reports = feed(m, w.events)
        assert len(reports) == 2  # one A per trace

    def test_exhaustive_reports_all(self):
        w = Weaver(2)
        a1 = w.local(0, "A")
        a2 = w.local(0, "A")
        s, r = w.message(0, 1)
        b = w.local(1, "B")
        m = build_matcher(AB, 2, sweep=SweepMode.EXHAUSTIVE, prune_history=False)
        assert len(feed(m, w.events)) == 2


class TestTriggering:
    def test_non_terminating_event_runs_no_search(self):
        w = Weaver(2)
        w.local(0, "A")
        m = build_matcher(AB, 2)
        feed(m, w.events)
        assert m.searches_run == 0

    def test_terminating_event_runs_search(self):
        w = Weaver(2)
        w.local(1, "B")
        m = build_matcher(AB, 2)
        feed(m, w.events)
        assert m.searches_run == 1

    def test_single_leaf_pattern_matches_immediately(self):
        source = "A := ['', A, '']; pattern := A;"
        w = Weaver(1)
        w.local(0, "A")
        m = build_matcher(source, 1)
        assert len(feed(m, w.events)) == 1


class TestChronologicalEquivalence:
    def test_ablation_produces_same_matches(self):
        import random

        for seed in range(5):
            rng = random.Random(seed)
            w = Weaver(3)
            pending = []
            for _ in range(40):
                roll = rng.random()
                trace = rng.randrange(3)
                if roll < 0.5:
                    w.local(trace, rng.choice("AB"))
                elif roll < 0.75 or not pending:
                    pending.append(w.send(trace))
                else:
                    send = pending.pop()
                    dst = rng.choice([t for t in range(3) if t != send.trace])
                    w.recv(dst, send)
            fast = build_matcher(AB, 3, sweep=SweepMode.EXHAUSTIVE)
            slow = build_matcher(
                AB,
                3,
                sweep=SweepMode.EXHAUSTIVE,
                restrict_domains=False,
                backjump=False,
            )
            fast_reports = {
                tuple(ids(r).items()) for r in feed(fast, w.events)
            }
            slow_reports = {
                tuple(ids(r).items()) for r in feed(slow, w.events)
            }
            assert fast_reports == slow_reports, seed
