"""Unit tests for per-trace sequences and the event store."""

import pytest

from repro.events import EventId, EventStore, Trace
from repro.testing import Weaver


def _two_trace_events():
    w = Weaver(2)
    a = w.local(0, "A")
    send, recv = w.message(0, 1)
    b = w.local(1, "B")
    return w, [a, send, recv, b]


class TestTrace:
    def test_append_validates_trace_ownership(self):
        w = Weaver(2)
        event = w.local(1)
        trace = Trace(0)
        with pytest.raises(ValueError):
            trace.append(event)

    def test_append_validates_contiguous_indices(self):
        w = Weaver(1)
        first = w.local(0)
        second = w.local(0)
        trace = Trace(0)
        with pytest.raises(ValueError):
            trace.append(second)  # skipped index 1
        trace.append(first)
        trace.append(second)
        assert len(trace) == 2

    def test_at_is_one_based(self):
        w = Weaver(1)
        first = w.local(0)
        trace = Trace(0)
        trace.append(first)
        assert trace.at(1) is first
        with pytest.raises(IndexError):
            trace.at(2)
        with pytest.raises(IndexError):
            trace.at(0)

    def test_last_on_empty_trace(self):
        assert Trace(0).last() is None

    def test_binary_search_on_clock_column(self):
        w = Weaver(2)
        s1, r1 = w.message(0, 1)
        w.local(1)
        s2, r2 = w.message(0, 1)
        trace = Trace(1)
        for e in (r1, w.events[2], r2):
            pass
        trace1_events = [e for e in w.events if e.trace == 1]
        t = Trace(1)
        for e in trace1_events:
            t.append(e)
        # first event on trace 1 whose column-0 reaches s2's index
        pos = t.first_index_with_column_at_least(0, s2.index)
        assert t.at(pos).partner == s2.event_id
        # a value beyond everything returns None
        assert t.first_index_with_column_at_least(0, 999) is None


class TestEventStore:
    def test_round_trip_lookup(self):
        _, events = _two_trace_events()
        store = EventStore(2)
        for e in events:
            store.add(e)
        assert store.num_events == 4
        assert store.get(EventId(1, 1)) == events[2]

    def test_partner_resolution(self):
        _, events = _two_trace_events()
        store = EventStore(2)
        for e in events:
            store.add(e)
        recv = events[2]
        assert store.partner_of(recv) == events[1]
        assert store.partner_of(events[0]) is None

    def test_trace_count_validation(self):
        with pytest.raises(ValueError):
            EventStore(0)
        with pytest.raises(ValueError):
            EventStore(2, trace_names=["only-one"])

    def test_out_of_range_trace_rejected(self):
        w = Weaver(3)
        event = w.local(2)
        store = EventStore(2)
        with pytest.raises(ValueError):
            store.add(event)

    def test_negative_trace_lookup_rejected(self):
        # A negative trace id used to wrap under list indexing and
        # silently return the store's LAST trace; a corrupted or
        # hand-built id must be a hard error instead.
        _, events = _two_trace_events()
        store = EventStore(2)
        for e in events:
            store.add(e)
        with pytest.raises(ValueError, match="out of range"):
            store.trace(-1)
        # EventId itself refuses construction with a negative trace,
        # so a wrapped lookup can never even be expressed.
        with pytest.raises(ValueError, match="trace must be >= 0"):
            store.get(EventId(trace=-1, index=1))

    def test_out_of_range_trace_lookup_rejected(self):
        store = EventStore(2)
        with pytest.raises(ValueError, match="out of range"):
            store.trace(2)
        with pytest.raises(ValueError, match="out of range"):
            store.get(EventId(trace=2, index=1))

    def test_iteration_groups_by_trace(self):
        _, events = _two_trace_events()
        store = EventStore(2)
        for e in events:
            store.add(e)
        seen = list(store)
        assert [e.trace for e in seen] == [0, 0, 1, 1]

    def test_trace_names(self):
        store = EventStore(2, trace_names=["leader", "follower"])
        assert store.trace(0).name == "leader"
        assert store.trace(1).name == "follower"
