"""Unit tests for the process-time diagram renderer."""

import pytest

from repro.analysis import render_diagram
from repro.testing import Weaver


def sample():
    w = Weaver(2)
    a = w.local(0, "A")
    s, r = w.message(0, 1)
    b = w.local(1, "B")
    return w, a, b


class TestRenderDiagram:
    def test_contains_trace_labels_and_type_letters(self):
        w, a, b = sample()
        out = render_diagram(w.events, 2)
        assert "P0" in out and "P1" in out
        assert "A" in out and "B" in out
        assert "S" in out and "R" in out  # send/receive initials

    def test_custom_trace_names(self):
        w, _, _ = sample()
        out = render_diagram(w.events, 2, trace_names=["leader", "worker"])
        assert "leader" in out and "worker" in out
        with pytest.raises(ValueError):
            render_diagram(w.events, 2, trace_names=["only-one"])

    def test_highlight_marks_events(self):
        w, a, b = sample()
        out = render_diagram(w.events, 2, highlight=[a, b])
        diagram_rows = [l for l in out.splitlines() if l.startswith("P")]
        assert sum(row.count("*") for row in diagram_rows) == 2
        assert "match constituent" in out

    def test_delivery_order_is_left_to_right(self):
        w, a, b = sample()
        out = render_diagram(w.events, 2)
        p0_line = next(l for l in out.splitlines() if l.startswith("P0"))
        p1_line = next(l for l in out.splitlines() if l.startswith("P1"))
        assert p0_line.index("A") < p0_line.index("S")
        assert p1_line.index("R") < p1_line.index("B")
        # the receive column is to the right of the send column
        assert p1_line.index("R") > p0_line.index("S")

    def test_message_arrow_between_far_traces(self):
        w = Weaver(3)
        s = w.send(0)
        r = w.recv(2, s)
        out = render_diagram(w.events, 3)
        assert "|" in out  # the vertical connector through trace 1

    def test_truncation(self):
        w = Weaver(1)
        for _ in range(100):
            w.local(0, "E")
        out = render_diagram(w.events, 1, max_width=30)
        assert "truncated" in out

    def test_plain_markers(self):
        w, _, _ = sample()
        out = render_diagram(w.events, 2, label_types=False)
        assert "o" in out
        assert "A" not in out.replace("(", "")  # no type letters drawn

    def test_rejects_bad_trace_count(self):
        with pytest.raises(ValueError):
            render_diagram([], 0)

    def test_empty_stream(self):
        out = render_diagram([], 2)
        assert "P0" in out
