"""Unit tests for the MPI and μC++ veneers and tagged messaging."""

import pytest

from repro.poet import RecordingClient, instrument
from repro.simulation import ANY_SOURCE, Kernel, Semaphore, mpi_run
from repro.simulation.mpi import MPI_ANY_SOURCE


class TestMPIRun:
    def test_all_ranks_run_the_body(self):
        seen = []

        def body(mpi):
            seen.append((mpi.rank, mpi.size))
            yield mpi.emit("Hello", text=str(mpi.rank))

        kernel = mpi_run(size=4, body=body, seed=1)
        server = instrument(kernel)
        recorder = RecordingClient()
        server.connect(recorder)
        result = kernel.run()
        assert not result.deadlocked
        assert sorted(seen) == [(0, 4), (1, 4), (2, 4), (3, 4)]
        assert sorted(e.text for e in recorder.events) == ["0", "1", "2", "3"]

    def test_send_recv_round(self):
        def body(mpi):
            if mpi.rank == 0:
                yield mpi.send(1, payload="ping", text="to1")
                msg = yield mpi.recv(source=1)
                assert msg.payload == "pong"
            else:
                msg = yield mpi.recv(source=MPI_ANY_SOURCE)
                assert msg.payload == "ping"
                yield mpi.send(0, payload="pong", text="to0")

        kernel = mpi_run(size=2, body=body, seed=2)
        result = kernel.run()
        assert not result.deadlocked

    def test_rank_rng_is_seeded(self):
        def collect(run_seed):
            values = {}

            def body(mpi):
                values[mpi.rank] = mpi.rng.random()
                yield mpi.emit("E")

            kernel = mpi_run(size=3, body=body, seed=run_seed)
            kernel.run()
            return values

        assert collect(5) == collect(5)
        assert collect(5) != collect(6)


class TestSemaphoreHelper:
    def test_acquire_release_generators(self):
        kernel = Kernel(num_processes=2, num_semaphores=1, seed=3)
        sem = Semaphore(0)
        order = []

        def body(p):
            yield from sem.acquire(p)
            order.append(("in", p.pid))
            yield p.sleep(5.0)
            order.append(("out", p.pid))
            yield from sem.release(p)

        kernel.spawn(0, body)
        kernel.spawn(1, body)
        result = kernel.run()
        assert not result.deadlocked
        # sections never interleave
        assert [kind for kind, _ in order] == ["in", "out", "in", "out"]

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Semaphore(-1)


class TestTaggedMessaging:
    def test_receive_by_tag(self):
        kernel = Kernel(num_processes=2, seed=4)
        got = []

        def sender(p):
            yield p.send(1, payload="noise", tag="data")
            yield p.send(1, payload="important", tag="control")

        def receiver(p):
            msg = yield p.receive(tag="control")
            got.append(msg.payload)
            msg = yield p.receive(tag="data")
            got.append(msg.payload)

        kernel.spawn(0, sender)
        kernel.spawn(1, receiver)
        result = kernel.run()
        assert not result.deadlocked
        assert got == ["important", "noise"]

    def test_any_source_constant_is_negative_one(self):
        assert ANY_SOURCE == -1 == MPI_ANY_SOURCE
