"""Unit tests for the cost-based constraint planner."""

from repro.core import Monitor
from repro.core.matcher import MatcherConfig
from repro.patterns import PatternTree, compile_pattern, parse_pattern
from repro.patterns.plan import LeafStats, plan_order
from repro.testing import Weaver

NAMES = ["P0", "P1", "P2"]


def compiled(source):
    return compile_pattern(PatternTree(parse_pattern(source), NAMES))

SKEWED = """
P := ['', Pickup, ''];
M := ['', Move, 'hot'];
D := ['', Drop, ''];
M $m;
pattern := ((P ~> $m+) /\\ ($m+ -> D)) WITHIN 16;
"""

CHAIN = "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;"

VARS = """
S := ['', Synch, $r];
T := [$l, Snap, $r];
U := [$l, Fwd, $r];
T $t;
pattern := (S -> $t) /\\ ($t -> U);
"""


class TestFallback:
    def test_no_stats_selects_legacy_order(self):
        pattern = compiled(SKEWED)
        plan = plan_order(pattern, 2, None)
        assert not plan.cost_based
        assert plan.order == pattern.evaluation_order(2)

    def test_empty_stats_select_legacy_order(self):
        pattern = compiled(SKEWED)
        stats = {i: LeafStats(size=0) for i in range(3)}
        plan = plan_order(pattern, 2, stats)
        assert not plan.cost_based
        assert plan.order == pattern.evaluation_order(2)


class TestCostBasedOrder:
    def test_rare_leaf_ordered_before_huge_leaf(self):
        # the static heuristic ranks the doubly-exact Move class right
        # after the trigger; live sizes flip that to Pickup-first
        pattern = compiled(SKEWED)
        assert pattern.evaluation_order(2) == (2, 1, 0)
        stats = {0: LeafStats(30), 1: LeafStats(5000), 2: LeafStats(30)}
        plan = plan_order(pattern, 2, stats)
        assert plan.cost_based
        assert plan.order == (2, 0, 1)

    def test_trigger_is_always_level_one(self):
        pattern = compiled(SKEWED)
        stats = {0: LeafStats(10), 1: LeafStats(10), 2: LeafStats(10)}
        for trigger in range(3):
            assert plan_order(pattern, trigger, stats).order[0] == trigger

    def test_order_is_a_permutation(self):
        pattern = compiled(VARS)
        stats = {0: LeafStats(7), 1: LeafStats(900), 2: LeafStats(40)}
        plan = plan_order(pattern, 2, stats)
        assert sorted(plan.order) == [0, 1, 2]

    def test_bound_attr_vars_discount_estimate(self):
        # T shares $l and $r with the prefix: its effective estimate is
        # size × 0.01, cheaper than an unshared leaf of equal size
        pattern = compiled(VARS)
        stats = {0: LeafStats(500), 1: LeafStats(500), 2: LeafStats(500)}
        plan = plan_order(pattern, 2, stats)
        step = next(s for s in plan.steps if s.leaf_id == 1)
        assert "$l" in step.reason and "$r" in step.reason

    def test_deterministic_tie_break(self):
        pattern = compiled(CHAIN)
        stats = {0: LeafStats(10), 1: LeafStats(10)}
        assert plan_order(pattern, 1, stats).order == (1, 0)


class TestExplain:
    def test_explain_mentions_every_leaf(self):
        pattern = compiled(SKEWED)
        stats = {0: LeafStats(3), 1: LeafStats(100), 2: LeafStats(3)}
        text = plan_order(pattern, 2, stats).explain()
        assert "cost-based" in text
        for leaf in pattern.leaves:
            assert leaf.label in text

    def test_legacy_explain_says_so(self):
        pattern = compiled(CHAIN)
        assert "legacy heuristic" in plan_order(pattern, 1, None).explain()


class TestMatcherIntegration:
    def test_legacy_patterns_never_use_cost_based_order(self):
        # output-compatibility guard: no v2 operator -> legacy order,
        # even with the planner enabled and live statistics available
        monitor = Monitor.from_source(CHAIN, NAMES)
        w = Weaver(3)
        for _ in range(5):
            w.local(0, "A")
        w.local(1, "B")
        for e in w.events:
            monitor.on_event(e)
        matcher = monitor.matcher
        assert not matcher.pattern.has_v2_features
        plan = matcher.current_plan(1)
        assert not plan.cost_based
        assert matcher.plans_computed == 0

    def test_v2_pattern_uses_cost_based_order(self):
        monitor = Monitor.from_source(SKEWED, NAMES)
        w = Weaver(3)
        w.local(0, "Pickup")
        for _ in range(6):
            w.local(0, "Move", "hot")
        w.local(0, "Drop")
        for e in w.events:
            monitor.on_event(e)
        matcher = monitor.matcher
        assert matcher.current_plan(2).cost_based
        assert matcher.plans_computed >= 1

    def test_planner_disabled_by_config(self):
        monitor = Monitor.from_source(
            SKEWED, NAMES, config=MatcherConfig(planner=False)
        )
        w = Weaver(3)
        w.local(0, "Pickup")
        w.local(0, "Move", "hot")
        w.local(0, "Drop")
        for e in w.events:
            monitor.on_event(e)
        assert not monitor.matcher.current_plan(2).cost_based
        assert monitor.matcher.plans_computed == 0

    def test_plan_cache_refreshes_on_interval(self):
        monitor = Monitor.from_source(
            SKEWED, NAMES, config=MatcherConfig(plan_refresh_interval=2)
        )
        w = Weaver(3)
        w.local(0, "Pickup")
        w.local(0, "Move", "hot")
        for _ in range(4):
            w.local(0, "Drop")
        for e in w.events:
            monitor.on_event(e)
        # four Drop triggers across different refresh stamps recompute
        # the plan more than once, but not once per search forever
        assert 2 <= monitor.matcher.plans_computed <= 4
