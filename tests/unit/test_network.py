"""Unit tests for the buffered network model."""

import pytest

from repro.clocks import VectorClock
from repro.events import EventId
from repro.simulation import Message, Network


def _msg(src=0, dst=1, tag=None, index=1):
    return Message(
        src=src,
        dst=dst,
        payload=None,
        send_event=EventId(src, index),
        send_clock=VectorClock.zero(2),
        send_lamport=1,
        tag=tag,
    )


class TestCapacity:
    def test_unbounded_always_has_room(self):
        net = Network(2, capacity=None)
        for _ in range(100):
            net.reserve(1)
        assert net.has_room(1)

    def test_zero_capacity_never_has_room(self):
        net = Network(2, capacity=0)
        assert not net.has_room(1)

    def test_in_flight_counts_against_capacity(self):
        net = Network(2, capacity=2)
        assert net.has_room(1)
        net.reserve(1)
        net.reserve(1)
        assert not net.has_room(1)

    def test_buffered_counts_against_capacity(self):
        net = Network(2, capacity=1)
        m = _msg()
        net.reserve(1)
        net.arrive(m)
        assert not net.has_room(1)
        net.consume(1, m)
        assert net.has_room(1)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Network(2, capacity=-1)


class TestMatching:
    def test_any_source_matches_first(self):
        net = Network(3, capacity=None)
        m0, m2 = _msg(src=0, dst=1), _msg(src=2, dst=1)
        for m in (m0, m2):
            net.reserve(1)
            net.arrive(m)
        assert net.match(1, source=-1) is m0

    def test_source_filter(self):
        net = Network(3, capacity=None)
        m0, m2 = _msg(src=0, dst=1), _msg(src=2, dst=1)
        for m in (m0, m2):
            net.reserve(1)
            net.arrive(m)
        assert net.match(1, source=2) is m2
        assert net.match(1, source=1) is None

    def test_tag_filter(self):
        net = Network(2, capacity=None)
        tagged = _msg(tag="sync")
        net.reserve(1)
        net.arrive(tagged)
        assert net.match(1, source=-1, tag="other") is None
        assert net.match(1, source=-1, tag="sync") is tagged

    def test_consume_unknown_message_fails(self):
        net = Network(2, capacity=None)
        with pytest.raises(RuntimeError):
            net.consume(1, _msg())

    def test_arrival_without_reservation_fails(self):
        net = Network(2, capacity=None)
        with pytest.raises(RuntimeError):
            net.arrive(_msg())


class TestIdle:
    def test_idle_reflects_traffic(self):
        net = Network(2, capacity=None)
        assert net.idle()
        m = _msg()
        net.reserve(1)
        assert not net.idle()
        net.arrive(m)
        assert not net.idle()
        net.consume(1, m)
        assert net.idle()

    def test_counters(self):
        net = Network(2, capacity=None)
        m = _msg()
        net.reserve(1)
        assert net.in_flight(1) == 1
        net.arrive(m)
        assert net.in_flight(1) == 0
        assert net.buffered(1) == 1
