"""Prometheus text-exposition conformance for :func:`to_prometheus`.

Rather than eyeballing substrings, these tests reparse the emitted
document with a small parser implementing the text-format grammar
(``# HELP``/``# TYPE`` comment lines, ``name{labels} value`` samples)
and check the format's structural rules: cumulative, monotone
``_bucket`` series terminated by ``le="+Inf"``, ``_count`` equal to
the +Inf bucket, one TYPE line per metric family, and label escaping
that survives a round trip.
"""

import math
import re

import pytest

from repro.obs.export import to_prometheus
from repro.obs.metrics import MetricsRegistry

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_exposition(text: str):
    """Parse the text format into (samples, types, helps).

    samples: list of (name, labels-dict, value) in document order.
    """
    samples, types, helps = [], {}, {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, kind = rest.split(" ", 1)
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = kind
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, help_text = rest.split(" ", 1)
            helps[name] = help_text
            continue
        assert not line.startswith("#"), f"unknown comment at line {lineno}"
        match = _SAMPLE.match(line)
        assert match, f"unparseable sample line {lineno}: {line!r}"
        labels = {}
        label_text = match.group("labels")
        if label_text:
            consumed = 0
            for label_match in _LABEL.finditer(label_text):
                labels[label_match.group(1)] = _unescape(label_match.group(2))
                consumed = label_match.end()
            rest = label_text[consumed:].strip(", ")
            assert not rest, f"trailing label junk at line {lineno}: {rest!r}"
        samples.append(
            (match.group("name"), labels, _parse_value(match.group("value")))
        )
    return samples, types, helps


def build_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("jobs_total", "jobs processed").inc(7)
    registry.counter(
        "jobs_total", "jobs processed", labels={"kind": "batch"}
    ).inc(3)
    registry.gauge("queue_depth", "items waiting").set(4.5)
    histogram = registry.histogram(
        "latency_seconds", "request latency", bounds=(0.1, 1.0, 10.0)
    )
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        histogram.observe(value)
    return registry


class TestPrometheusConformance:
    def test_document_parses_fully(self):
        samples, types, _ = parse_exposition(to_prometheus(build_registry()))
        assert samples
        assert types == {
            "jobs_total": "counter",
            "queue_depth": "gauge",
            "latency_seconds": "histogram",
        }

    def test_counter_and_gauge_values(self):
        samples, _, _ = parse_exposition(to_prometheus(build_registry()))
        by_key = {(n, tuple(sorted(l.items()))): v for n, l, v in samples}
        assert by_key[("jobs_total", ())] == 7
        assert by_key[("jobs_total", (("kind", "batch"),))] == 3
        assert by_key[("queue_depth", ())] == 4.5

    def test_histogram_buckets_cumulative_and_inf_terminated(self):
        samples, _, _ = parse_exposition(to_prometheus(build_registry()))
        buckets = [
            (l["le"], v) for n, l, v in samples if n == "latency_seconds_bucket"
        ]
        les = [_parse_value(le) for le, _ in buckets]
        counts = [count for _, count in buckets]
        # le edges strictly increasing and terminated by +Inf.
        assert les == sorted(les)
        assert les[-1] == math.inf
        # Cumulative: monotone non-decreasing.
        assert counts == sorted(counts)
        assert counts == [1, 3, 4, 5]

    def test_count_equals_inf_bucket_and_sum_matches(self):
        samples, _, _ = parse_exposition(to_prometheus(build_registry()))
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        inf_bucket = next(
            v for l, v in by_name["latency_seconds_bucket"] if l["le"] == "+Inf"
        )
        count = by_name["latency_seconds_count"][0][1]
        total = by_name["latency_seconds_sum"][0][1]
        assert count == inf_bucket == 5
        assert total == pytest.approx(0.05 + 0.5 + 0.5 + 5.0 + 50.0)

    def test_help_line_precedes_type_per_family(self):
        text = to_prometheus(build_registry())
        lines = [line for line in text.splitlines() if line]
        seen_samples = set()
        for line in lines:
            if line.startswith("# "):
                kind, name = line.split(" ", 2)[1:3][0], line.split(" ")[2]
                assert name not in seen_samples, (
                    f"{kind} for {name} appears after its samples"
                )
            else:
                seen_samples.add(_SAMPLE.match(line).group("name").rsplit(
                    "_bucket", 1
                )[0].rsplit("_sum", 1)[0].rsplit("_count", 1)[0])

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        nasty = 'quote " backslash \\ newline \n end'
        registry.counter("escapes_total", "test", labels={"v": nasty}).inc()
        samples, _, _ = parse_exposition(to_prometheus(registry))
        name, labels, value = samples[0]
        assert name == "escapes_total"
        assert labels["v"] == nasty
        assert value == 1

    def test_help_escaping_preserves_newlines(self):
        registry = MetricsRegistry()
        registry.counter("h_total", "line one\nline two").inc()
        _, _, helps = parse_exposition(to_prometheus(registry))
        assert helps["h_total"] == "line one\\nline two"

    def test_empty_registry_is_empty_document(self):
        assert to_prometheus(MetricsRegistry()) == ""

    def test_real_pipeline_registry_conforms(self):
        from tests.unit.test_spans import run_traced_race

        _, registry, monitor, _ = run_traced_race(max_events=600)
        monitor.publish_metrics()
        samples, types, _ = parse_exposition(to_prometheus(registry))
        names = {name for name, _, _ in samples}
        assert "ocep_detection_latency_sim_time_units_bucket" in names
        assert types["ocep_detection_latency_sim_time_units"] == "histogram"
        # Every histogram family's buckets are cumulative.
        for family, kind in types.items():
            if kind != "histogram":
                continue
            series = {}
            for name, labels, value in samples:
                if name == f"{family}_bucket":
                    key = tuple(sorted(
                        (k, v) for k, v in labels.items() if k != "le"
                    ))
                    series.setdefault(key, []).append(value)
            for counts in series.values():
                assert counts == sorted(counts)
