"""Unit tests for computation metrics over the happens-before DAG."""

import math

import pytest

from repro.analysis import compute_metrics, happens_before_graph
from repro.testing import Weaver, random_computation


class TestHappensBeforeGraph:
    def test_nodes_carry_attributes(self):
        w = Weaver(2)
        a = w.local(0, "A")
        s, r = w.message(0, 1)
        graph = happens_before_graph(w.events)
        assert graph.nodes[a.event_id]["etype"] == "A"
        assert graph.nodes[a.event_id]["trace"] == 0
        assert graph.has_edge(s.event_id, r.event_id)

    def test_reachability_equals_happens_before(self):
        import networkx as nx

        w = random_computation(11, num_traces=3, steps=30)
        graph = happens_before_graph(w.events)
        for a in w.events:
            descendants = nx.descendants(graph, a.event_id)
            for b in w.events:
                if a == b:
                    continue
                assert (b.event_id in descendants) == a.happens_before(b)


class TestMetrics:
    def test_sequential_computation(self):
        w = Weaver(1)
        for _ in range(10):
            w.local(0)
        metrics = compute_metrics(w.events, 1)
        assert metrics.critical_path == 10
        assert metrics.width == pytest.approx(1.0)
        assert metrics.concurrency_ratio == 0.0
        assert metrics.num_messages == 0

    def test_fully_concurrent_computation(self):
        w = Weaver(4)
        for trace in range(4):
            w.local(trace)
        metrics = compute_metrics(w.events, 4)
        assert metrics.critical_path == 1
        assert metrics.width == pytest.approx(4.0)
        assert metrics.concurrency_ratio == 1.0

    def test_message_counted_and_chains(self):
        w = Weaver(2)
        w.local(0)
        s, r = w.message(0, 1)
        w.local(1)
        metrics = compute_metrics(w.events, 2)
        assert metrics.num_messages == 1
        assert metrics.critical_path == 4  # the full chain
        assert metrics.events_per_trace == {0: 2, 1: 2}

    def test_empty_stream(self):
        metrics = compute_metrics([], 3)
        assert metrics.num_events == 0
        assert metrics.critical_path == 0
        assert metrics.width == 0.0

    def test_concurrency_limit_yields_nan(self):
        w = Weaver(2)
        for _ in range(5):
            w.local(0)
            w.local(1)
        metrics = compute_metrics(w.events, 2, exact_concurrency_limit=3)
        assert math.isnan(metrics.concurrency_ratio)
        exact = compute_metrics(w.events, 2, exact_concurrency_limit=None)
        assert 0.0 < exact.concurrency_ratio < 1.0
