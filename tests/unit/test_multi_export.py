"""Unit tests for MultiMonitor, DOT export, and random_computation."""

import pytest

from repro import Kernel, MultiMonitor, instrument
from repro.analysis import causality_edges, to_dot
from repro.events import EventId
from repro.testing import Weaver, random_computation

AB = "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;"
CONC = "A := ['', A, '']; B := ['', B, '']; pattern := A || B;"


def _stream():
    w = Weaver(2)
    a = w.local(0, "A")
    s, r = w.message(0, 1)
    b = w.local(1, "B")
    return w


class TestMultiMonitor:
    def test_patterns_run_independently(self):
        w = _stream()
        multi = MultiMonitor(["P0", "P1"])
        multi.watch("order", AB)
        multi.watch("conc", CONC)
        for event in w.events:
            multi.on_event(event)
        assert len(multi["order"].reports) == 1
        assert len(multi["conc"].reports) == 0  # a -> b, never concurrent
        assert multi.total_reports() == 1
        assert multi.events_seen == len(w.events)

    def test_named_callback(self):
        w = _stream()
        seen = []
        multi = MultiMonitor(["P0", "P1"], on_match=lambda n, r: seen.append(n))
        multi.watch("order", AB)
        multi.watch("conc", CONC)
        for event in w.events:
            multi.on_event(event)
        assert seen == ["order"]

    def test_duplicate_name_rejected(self):
        multi = MultiMonitor(["P0"])
        multi.watch("x", AB)
        with pytest.raises(ValueError):
            multi.watch("x", CONC)

    def test_container_protocol(self):
        multi = MultiMonitor(["P0"])
        multi.watch("x", AB)
        assert "x" in multi
        assert "y" not in multi
        assert len(multi) == 1
        assert dict(iter(multi))["x"] is multi["x"]

    def test_stats_keyed_by_name(self):
        w = _stream()
        multi = MultiMonitor(["P0", "P1"])
        multi.watch("order", AB)
        for event in w.events:
            multi.on_event(event)
        stats = multi.stats()
        assert stats["order"].matches_reported == 1

    def test_live_pipeline(self):
        kernel = Kernel(num_processes=2, seed=9)
        server = instrument(kernel)
        multi = MultiMonitor(kernel.trace_names())
        multi.watch("order", AB)
        server.connect(multi)

        def p0(p):
            yield p.emit("A")
            yield p.send(1)

        def p1(p):
            yield p.receive()
            yield p.emit("B")

        kernel.spawn(0, p0)
        kernel.spawn(1, p1)
        kernel.run()
        assert len(multi["order"].reports) == 1


class TestCausalityEdges:
    def test_program_order_and_message_edges(self):
        w = _stream()
        edges = causality_edges(w.events)
        # P0: A -> Send; P1: Receive -> B; message: Send -> Receive
        assert (EventId(0, 1), EventId(0, 2)) in edges
        assert (EventId(1, 1), EventId(1, 2)) in edges
        assert (EventId(0, 2), EventId(1, 1)) in edges
        assert len(edges) == 3

    def test_edges_cover_happens_before(self):
        """Transitive closure of the covering edges equals the full
        happens-before relation."""
        w = random_computation(5, num_traces=3, steps=25)
        edges = causality_edges(w.events)
        adjacency = {}
        for src, dst in edges:
            adjacency.setdefault(src, set()).add(dst)

        def reachable(start):
            seen, stack = set(), [start]
            while stack:
                node = stack.pop()
                for nxt in adjacency.get(node, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            return seen

        for a in w.events:
            closure = reachable(a.event_id)
            for b in w.events:
                if a == b:
                    continue
                assert (b.event_id in closure) == a.happens_before(b)


class TestDotExport:
    def test_structure(self):
        w = _stream()
        dot = to_dot(w.events, 2, trace_names=["left", "right"])
        assert dot.startswith("digraph computation {")
        assert dot.rstrip().endswith("}")
        assert 'label="left"' in dot and 'label="right"' in dot
        assert "e0_2 -> e1_1" in dot  # the message edge
        assert "style=dashed" in dot

    def test_highlighting(self):
        w = Weaver(1)
        a = w.local(0, "A")
        dot = to_dot(w.events, 1, highlight=[a])
        assert "fillcolor" in dot

    def test_name_mismatch_rejected(self):
        w = _stream()
        with pytest.raises(ValueError):
            to_dot(w.events, 2, trace_names=["only-one"])


class TestRandomComputation:
    def test_deterministic(self):
        a = random_computation(7, num_traces=3, steps=30)
        b = random_computation(7, num_traces=3, steps=30)
        assert [(e.trace, e.index, e.etype) for e in a.events] == [
            (e.trace, e.index, e.etype) for e in b.events
        ]

    def test_respects_types_and_texts(self):
        w = random_computation(1, etypes=("X",), texts=("t",), steps=30)
        locals_ = [e for e in w.events if e.etype == "X"]
        assert locals_
        assert all(e.text == "t" for e in locals_)

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            random_computation(0, local_probability=0.9, send_probability=0.5)

    def test_stream_is_linearization(self):
        from repro.poet import is_linearization

        for seed in range(5):
            w = random_computation(seed, num_traces=4, steps=40)
            assert is_linearization(w.events, 4)
