"""Metric-name conformance audit as a test.

Every metric the stack can register — across a full-featured pipeline
run (faults + hold-back + overload + stage telemetry + detection
latency + scrape server) — must:

* carry non-empty HELP text,
* follow the Prometheus naming conventions (counters end ``_total``;
  wall-clock duration histograms end ``_seconds``; names are
  ``snake_case``),
* survive the Prometheus text-exposition reparse harness.

This is the executable form of the naming audit: a new metric that
breaks the conventions fails here, not in a reviewer's head.
"""

import re

from repro.engine import Pipeline
from repro.obs.export import to_prometheus
from repro.obs.latency import DetectionLatencyTracker
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import ObsServer
from repro.obs.stages import STAGES
from repro.resilience.faults import FaultPlan
from repro.testing import Weaver

from tests.unit.test_export_prometheus import parse_exposition

AB = "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;"
TRACES = ["P0", "P1", "P2"]

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Histograms measuring something other than wall-clock seconds carry
#: their unit as the suffix instead.
_NON_SECONDS_HISTOGRAM_UNITS = ("_units", "_events")


def _full_registry():
    """A registry populated by every metric source in the stack."""
    registry = MetricsRegistry()
    w = Weaver(3)
    for _ in range(20):
        w.local(0, "A")
        w.message(0, 2)
        w.local(2, "B")
    pipeline = Pipeline.replay(w.events, TRACES, registry=registry)
    pipeline.with_overload_control()
    monitor = pipeline.watch("ab", AB)
    pipeline.with_faults(FaultPlan(kind="none"))
    pipeline.with_holdback()
    tracker = DetectionLatencyTracker(clock=lambda: 0.0, registry=registry)
    for event in w.events:
        tracker.observe_event(event)
    server = ObsServer(registry)
    pipeline.run()
    for report in monitor.reports:
        tracker.observe_report(report)
    monitor.publish_metrics()
    assert server is not None
    return registry


class TestConformance:
    def setup_method(self):
        self.registry = _full_registry()

    def test_every_metric_has_help(self):
        missing = [m.name for m in self.registry.metrics() if not m.help]
        assert not missing, f"metrics without HELP text: {sorted(set(missing))}"

    def test_names_are_snake_case(self):
        bad = [
            m.name for m in self.registry.metrics()
            if not _NAME_RE.match(m.name)
        ]
        assert not bad, f"non-conforming metric names: {sorted(set(bad))}"

    def test_counters_end_total(self):
        bad = [
            m.name for m in self.registry.metrics()
            if m.kind == "counter" and not m.name.endswith("_total")
        ]
        assert not bad, f"counters missing _total: {sorted(set(bad))}"

    def test_histograms_carry_a_unit_suffix(self):
        bad = [
            m.name for m in self.registry.metrics()
            if m.kind == "histogram"
            and not m.name.endswith("_seconds")
            and not m.name.endswith(_NON_SECONDS_HISTOGRAM_UNITS)
        ]
        assert not bad, f"histograms without a unit suffix: {sorted(set(bad))}"

    def test_aliases_never_leak_into_exposition(self):
        aliases = {
            metric.alias
            for metric in self.registry.metrics()
            if getattr(metric, "alias", None)
        }
        assert aliases, "expected at least one renamed metric with an alias"
        _, types, _ = parse_exposition(to_prometheus(self.registry))
        assert not aliases & set(types)

    def test_full_registry_reparses(self):
        samples, types, helps = parse_exposition(to_prometheus(self.registry))
        assert samples
        # Every TYPEd family has HELP text in the exposition too.
        assert set(types) == set(helps)

    def test_stage_series_present_and_typed(self):
        samples, types, _ = parse_exposition(to_prometheus(self.registry))
        assert types["ocep_stage_events_total"] == "counter"
        assert types["ocep_stage_queue_depth"] == "gauge"
        assert types["ocep_stage_latency_seconds"] == "histogram"
        assert types["ocep_stage_batch_size_events"] == "histogram"
        stages = {
            labels["stage"]
            for name, labels, _ in samples
            if name == "ocep_stage_events_total"
        }
        assert stages == set(STAGES)
