"""Unit tests for the cluster wire format and shard routing policy."""

import json

import pytest

from repro.clocks.vector_clock import VectorClock
from repro.cluster.wire import (
    FRAME_HEADER_SIZE,
    MAX_FRAME_PAYLOAD,
    PROTOCOL_VERSION,
    FrameType,
    decode_event_batch,
    decode_json,
    encode_event_batch,
    encode_json,
    pack_frame,
    report_from_record,
    report_to_record,
    signature_from_record,
    signature_to_record,
    stats_from_record,
    stats_to_record,
    unpack_header,
)
from repro.core.matcher import MatchReport
from repro.core.monitor import MonitorStats
from repro.engine.dispatch import shard_worker, worker_shards
from repro.events.event import Event, EventId, EventKind


def _event(trace=0, index=1, etype="A", text="", kind=EventKind.UNARY,
           partner=None, lamport=7, width=3):
    clock = [0] * width
    clock[trace] = index
    if kind is EventKind.RECEIVE and partner is not None:
        clock[partner.trace] = partner.index
    return Event(
        trace=trace,
        index=index,
        etype=etype,
        text=text,
        clock=VectorClock(clock),
        kind=kind,
        partner=partner,
        lamport=lamport,
    )


class TestFrameEnvelope:
    def test_roundtrip(self):
        frame = pack_frame(FrameType.CONFIG, b"hello")
        length, ftype = unpack_header(frame[:FRAME_HEADER_SIZE])
        assert length == 5
        assert ftype is FrameType.CONFIG
        assert frame[FRAME_HEADER_SIZE:] == b"hello"

    def test_empty_payload(self):
        frame = pack_frame(FrameType.SHUTDOWN, b"")
        length, ftype = unpack_header(frame)
        assert length == 0
        assert ftype is FrameType.SHUTDOWN

    def test_oversized_payload_refused_on_send(self):
        with pytest.raises(ValueError, match="exceeds"):
            pack_frame(FrameType.EVENTS, b"\x00" * (MAX_FRAME_PAYLOAD + 1))

    def test_corrupt_length_refused_on_receive(self):
        import struct

        header = struct.pack("!IB", MAX_FRAME_PAYLOAD + 1,
                             int(FrameType.EVENTS))
        with pytest.raises(ValueError, match="exceeds limit"):
            unpack_header(header)

    def test_unknown_frame_type_refused(self):
        import struct

        header = struct.pack("!IB", 0, 200)
        with pytest.raises(ValueError):
            unpack_header(header)

    def test_json_payload_roundtrip(self):
        document = {"version": PROTOCOL_VERSION, "shards": ["a", "b"],
                    "nested": {"k": [1, 2, 3]}}
        assert decode_json(encode_json(document)) == document


class TestEventBatchCodec:
    def test_roundtrip_preserves_every_field(self):
        send = _event(trace=0, index=1, etype="Send", kind=EventKind.SEND,
                      lamport=1)
        recv = _event(trace=1, index=1, etype="Receive",
                      kind=EventKind.RECEIVE, partner=EventId(0, 1),
                      lamport=2)
        local = _event(trace=2, index=1, etype="Work", text="unicode: 拍",
                       kind=EventKind.LOCAL, lamport=3)
        events = [send, recv, local]
        decoded = decode_event_batch(encode_event_batch(events))
        assert len(decoded) == 3
        for original, copy in zip(events, decoded):
            assert copy.trace == original.trace
            assert copy.index == original.index
            assert copy.etype == original.etype
            assert copy.text == original.text
            assert copy.kind is original.kind
            assert copy.partner == original.partner
            assert copy.lamport == original.lamport
            assert tuple(copy.clock.components) == tuple(
                original.clock.components
            )

    def test_empty_batch(self):
        assert decode_event_batch(encode_event_batch([])) == []

    def test_all_kinds_covered(self):
        for kind in EventKind:
            partner = (EventId(1, 1) if kind is EventKind.RECEIVE else None)
            event = _event(kind=kind, partner=partner)
            (decoded,) = decode_event_batch(encode_event_batch([event]))
            assert decoded.kind is kind

    def test_trailing_bytes_rejected(self):
        payload = encode_event_batch([_event()]) + b"\x00"
        with pytest.raises(ValueError, match="trailing"):
            decode_event_batch(payload)

    def test_attribute_too_long_rejected(self):
        event = _event(text="x" * 70_000)
        with pytest.raises(ValueError, match="too long"):
            encode_event_batch(event and [event])


class TestResultSurface:
    def _report(self):
        a = _event(trace=0, index=1, etype="A", kind=EventKind.SEND,
                   lamport=1)
        b = _event(trace=1, index=1, etype="B", kind=EventKind.RECEIVE,
                   partner=EventId(0, 1), lamport=2)
        return MatchReport(
            trigger_leaf=1,
            trigger_event=b,
            assignment=((0, a), (1, b)),
            bindings=(("x", "payload"),),
            new_slots=((1, 1),),
        )

    def test_report_roundtrip_is_json_safe(self):
        report = self._report()
        record = json.loads(json.dumps(report_to_record(report)))
        assert report_from_record(record) == report

    def test_stats_roundtrip(self):
        stats = MonitorStats(
            events_seen=10, matches_reported=2, subset_size=3,
            history_size=4, searches_run=5, searches_truncated=0,
            forward_steps=6, candidates_scanned=7,
            empty_slice_conflicts=1, back_jumps=2,
        )
        record = json.loads(json.dumps(stats_to_record(stats)))
        assert stats_from_record(record) == stats

    def test_signature_roundtrip(self):
        signature = (((0, 0, 1), (1, 1, 1)), ((0, 0, 2),))
        record = json.loads(json.dumps(signature_to_record(signature)))
        assert signature_from_record(record) == signature


class TestShardRouting:
    def test_routing_is_stable(self):
        # The wire protocol ships shard names, not indices: both sides
        # must agree on the hash, forever.
        assert shard_worker("atomicity_violation", 4) == shard_worker(
            "atomicity_violation", 4
        )

    def test_all_workers_valid(self):
        names = [f"pattern_{i}" for i in range(50)]
        for workers in (1, 2, 3, 4, 8):
            for name in names:
                assert 0 <= shard_worker(name, workers) < workers

    def test_worker_shards_partition(self):
        names = [f"pattern_{i}" for i in range(10)]
        assignment = worker_shards(names, 3)
        assert len(assignment) == 3
        flat = [name for shard_list in assignment for name in shard_list]
        assert sorted(flat) == sorted(names)

    def test_more_workers_than_shards_leaves_empty_lists(self):
        assignment = worker_shards(["only"], 4)
        assert sum(len(shard_list) for shard_list in assignment) == 1
        assert sum(1 for shard_list in assignment if not shard_list) == 3
