"""Unit tests for the observability layer (repro.obs)."""

import json
import math

import pytest

from repro import Kernel, Monitor, instrument
from repro.core import MatcherConfig
from repro.obs import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    SearchTrace,
    parse_json,
    to_json,
    to_prometheus,
)
from repro.obs import trace as obs_trace


class TestCounter:
    def test_inc(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_decrease(self):
        c = Counter("c")
        with pytest.raises(ValueError):
            c.inc(-1)
        c.set_total(3)
        with pytest.raises(ValueError):
            c.set_total(2)

    def test_set_total_idempotent(self):
        c = Counter("c")
        c.set_total(7)
        c.set_total(7)
        assert c.value == 7


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestHistogram:
    def test_log_scale_bucketing(self):
        h = Histogram("h")
        h.observe(1e-6)   # ~2**-20
        h.observe(1e-3)   # ~2**-10
        h.observe(1.0)
        h.observe(100.0)  # beyond the largest bound -> overflow
        assert h.count == 4
        assert h.sum == pytest.approx(101.001001)
        assert h.min == pytest.approx(1e-6)
        assert h.max == pytest.approx(100.0)
        assert h.bucket_counts[-1] == 1  # the +Inf overflow bucket

    def test_quantile_resolves_to_bucket_edge(self):
        h = Histogram("h", bounds=[1.0, 2.0, 4.0, 8.0])
        for value in [0.5, 1.5, 1.6, 3.0]:
            h.observe(value)
        assert h.quantile(0.25) == 1.0
        assert h.quantile(0.75) == 2.0
        assert h.quantile(1.0) == 4.0

    def test_quantile_empty_and_bounds_checked(self):
        h = Histogram("h")
        assert h.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=[2.0, 1.0])

    def test_mean(self):
        h = Histogram("h")
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == pytest.approx(3.0)


class TestRegistry:
    def test_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.counter("a", labels={"x": "1"}) is not r.counter("a")
        assert len(r) == 2

    def test_kind_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(TypeError):
            r.gauge("a")

    def test_labels_canonicalised(self):
        r = MetricsRegistry()
        first = r.counter("a", labels={"x": "1", "y": "2"})
        second = r.counter("a", labels={"y": "2", "x": "1"})
        assert first is second

    def test_snapshot_deterministic_order(self):
        r = MetricsRegistry()
        r.counter("b")
        r.counter("a")
        r.gauge("a", labels={"z": "9"})
        names = [(m["name"], tuple(sorted(m["labels"].items())))
                 for m in r.snapshot()]
        assert names == sorted(names)

    def test_get_does_not_create(self):
        r = MetricsRegistry()
        assert r.get("missing") is None
        assert len(r) == 0


class TestNullRegistry:
    def test_everything_is_noop(self):
        r = NullRegistry()
        c = r.counter("a")
        c.inc()
        c.set_total(10)
        r.gauge("g").set(5)
        r.histogram("h").observe(1.0)
        assert r.snapshot() == []
        assert len(r) == 0
        assert r.get("a") is None
        assert not r.enabled

    def test_shared_singleton(self):
        assert isinstance(NULL_REGISTRY, NullRegistry)
        assert NULL_REGISTRY.counter("x") is NULL_REGISTRY.counter("y")


class TestSearchTrace:
    def test_ring_buffer_evicts_oldest(self):
        trace = SearchTrace(capacity=3)
        for i in range(5):
            trace.record(obs_trace.FORWARD, search=1, level=i, leaf_id=0)
        assert len(trace) == 3
        assert trace.capacity == 3
        assert trace.recorded_total == 5
        assert [r.level for r in trace.records()] == [2, 3, 4]

    def test_last_search_filters(self):
        trace = SearchTrace(capacity=10)
        trace.record(obs_trace.SEARCH_START, search=1, level=0, leaf_id=0)
        trace.record(obs_trace.MATCH, search=1, level=1, leaf_id=0)
        trace.record(obs_trace.SEARCH_START, search=2, level=0, leaf_id=1)
        trace.record(obs_trace.BACKTRACK, search=2, level=1, leaf_id=1)
        assert [r.search for r in trace.last_search()] == [2, 2]

    def test_tally_and_dicts(self):
        trace = SearchTrace(capacity=10)
        trace.record(obs_trace.BACKJUMP, search=1, level=2, leaf_id=3,
                     trace=1, detail="to level 1")
        trace.record(obs_trace.BACKJUMP, search=1, level=2, leaf_id=3)
        assert trace.tally() == {"backjump": 2}
        first = trace.as_dicts()[0]
        assert first["kind"] == "backjump"
        assert first["trace"] == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SearchTrace(capacity=0)


class TestExporters:
    def _populated(self):
        r = MetricsRegistry()
        r.counter("runs_total", "number of runs").inc(3)
        r.gauge("depth", labels={"pattern": "p1"}).set(2.5)
        h = r.histogram("latency_seconds", bounds=[0.1, 1.0])
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        return r

    def test_json_round_trip(self):
        registry = self._populated()
        parsed = parse_json(to_json(registry))
        assert parsed[("runs_total", ())]["value"] == 3
        assert parsed[("depth", (("pattern", "p1"),))]["value"] == 2.5
        hist = parsed[("latency_seconds", ())]
        assert hist["count"] == 3
        assert [b["count"] for b in hist["buckets"]] == [1, 1, 1]
        assert hist["buckets"][-1]["le"] == "+Inf"

    def test_parse_rejects_unknown_schema(self):
        with pytest.raises(ValueError):
            parse_json(json.dumps({"schema": 99, "metrics": []}))

    def test_prometheus_format(self):
        text = to_prometheus(self._populated())
        assert "# TYPE runs_total counter" in text
        assert "runs_total 3" in text
        assert 'depth{pattern="p1"} 2.5' in text
        # histogram buckets are cumulative, with an +Inf bucket
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="1"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 3' in text
        assert "latency_seconds_sum 5.55" in text
        assert "latency_seconds_count 3" in text

    def test_empty_registry_exports(self):
        r = MetricsRegistry()
        assert to_prometheus(r) == ""
        assert parse_json(to_json(r)) == {}


def _run_quickstart(registry=None, config=None):
    """The examples/quickstart.py workload: a producer/consumer pair
    monitored for ``Request -> Complete``."""
    pattern = (
        "A := ['', Request, ''];\n"
        "B := ['', Complete, ''];\n"
        "pattern := A -> B;\n"
    )

    def producer(p):
        for i in range(5):
            yield p.emit("Request", text=f"job-{i}")
            yield p.send(1, payload=f"job-{i}")

    def consumer(p):
        for _ in range(5):
            msg = yield p.receive()
            yield p.emit("Complete", text=msg.payload)

    kernel = Kernel(num_processes=2, seed=42)
    server = instrument(kernel, registry=registry)
    monitor = Monitor.from_source(
        pattern, kernel.trace_names(), config=config, registry=registry
    )
    server.connect(monitor)
    kernel.spawn(0, producer)
    kernel.spawn(1, consumer)
    result = kernel.run()
    assert not result.deadlocked
    return monitor, server


class TestEndToEnd:
    def test_quickstart_counters_round_trip_through_json(self):
        registry = MetricsRegistry()
        monitor, server = _run_quickstart(registry=registry)
        monitor.publish_metrics()

        parsed = parse_json(to_json(registry))
        counters = monitor.matcher.counters()
        for name, value in counters.items():
            assert parsed[(f"ocep_matcher_{name}_total", ())]["value"] == value
        assert counters["searches_run"] == 5  # one per Complete event
        assert counters["matches_found"] == len(monitor.reports) > 0
        assert (
            parsed[("ocep_monitor_events_total", ())]["value"]
            == monitor.matcher.events_processed
        )
        assert (
            parsed[("poet_events_collected_total", ())]["value"]
            == server.num_events
        )
        assert (
            parsed[("ocep_subset_matches", ())]["value"]
            == len(monitor.subset)
        )
        latency = parsed[("ocep_monitor_event_seconds", ())]
        assert latency["count"] == monitor.matcher.events_processed
        search_latency = parsed[("ocep_monitor_search_seconds", ())]
        assert search_latency["count"] == counters["searches_run"]

    def test_quickstart_counters_round_trip_through_prometheus(self):
        registry = MetricsRegistry()
        monitor, _ = _run_quickstart(registry=registry)
        monitor.publish_metrics()
        text = to_prometheus(registry)
        for name, value in monitor.matcher.counters().items():
            assert f"ocep_matcher_{name}_total {value}\n" in text

    def test_quickstart_search_trace_records_decisions(self):
        monitor, _ = _run_quickstart(
            config=MatcherConfig(search_trace_size=64)
        )
        trace = monitor.search_trace
        assert trace is not None
        assert trace.capacity == 64
        tally = trace.tally()
        assert tally.get("search_start", 0) > 0
        assert tally.get("match", 0) > 0
        assert trace.recorded_total >= len(trace)

    def test_search_trace_disabled_by_default(self):
        monitor, _ = _run_quickstart()
        assert monitor.search_trace is None

    def test_histogram_infinity_serialises(self):
        registry = MetricsRegistry()
        h = registry.histogram("h", bounds=[1.0])
        h.observe(0.5)
        document = json.loads(to_json(registry))
        metric = document["metrics"][0]
        assert metric["buckets"][-1]["le"] == "+Inf"
        assert metric["max"] == 0.5
        assert not math.isinf(metric["mean"])
