"""Unit tests for the testing Weaver and the experiment runner."""

import pytest

from repro.analysis.runner import replay_through_monitor, run_case, scaled
from repro.events import EventKind
from repro.poet import is_linearization
from repro.testing import Weaver
from repro.workloads import build_message_race, message_race_pattern


class TestWeaver:
    def test_local_event_shape(self):
        w = Weaver(2)
        event = w.local(1, "Etype", "text")
        assert event.trace == 1
        assert event.index == 1
        assert event.etype == "Etype"
        assert event.text == "text"
        assert event.kind is EventKind.UNARY

    def test_message_links_partner_and_clock(self):
        w = Weaver(2)
        send, recv = w.message(0, 1, text="hi")
        assert recv.partner == send.event_id
        assert send.happens_before(recv)
        assert recv.clock[0] == send.index

    def test_recv_requires_send(self):
        w = Weaver(2)
        event = w.local(0)
        with pytest.raises(ValueError):
            w.recv(1, event)

    def test_trace_bounds_checked(self):
        w = Weaver(1)
        with pytest.raises(ValueError):
            w.local(1)
        with pytest.raises(ValueError):
            Weaver(0)

    def test_stream_is_always_a_linearization(self):
        w = Weaver(3)
        w.local(0)
        s1, r1 = w.message(0, 1)
        s2, r2 = w.message(1, 2)
        w.local(2)
        assert is_linearization(w.events, 3)

    def test_lamport_clocks_monotone_per_trace(self):
        w = Weaver(2)
        a = w.local(0)
        s, r = w.message(0, 1)
        b = w.local(1)
        assert a.lamport < s.lamport
        assert s.lamport < r.lamport < b.lamport


class TestScaled:
    def test_default_passthrough(self, monkeypatch):
        monkeypatch.delenv("OCEP_EVENTS", raising=False)
        monkeypatch.delenv("OCEP_FULL_SCALE", raising=False)
        assert scaled(1234) == 1234

    def test_full_scale(self, monkeypatch):
        monkeypatch.delenv("OCEP_EVENTS", raising=False)
        monkeypatch.setenv("OCEP_FULL_SCALE", "1")
        assert scaled(1234) == 1_000_000

    def test_explicit_budget_wins(self, monkeypatch):
        monkeypatch.setenv("OCEP_EVENTS", "777")
        monkeypatch.setenv("OCEP_FULL_SCALE", "1")
        assert scaled(1234) == 777


class TestReplayThroughMonitor:
    def _events(self):
        from repro.poet import RecordingClient

        workload = build_message_race(num_traces=4, seed=3, messages_per_sender=4)
        recorder = RecordingClient()
        workload.server.connect(recorder)
        workload.run()
        return recorder.events, workload.kernel.trace_names()

    def test_averages_across_repetitions(self):
        events, names = self._events()
        timings, monitor = replay_through_monitor(
            events, message_race_pattern(), names, repetitions=3
        )
        assert len(timings) == len(monitor.terminating_timings)
        assert all(t >= 0 for t in timings)

    def test_rejects_zero_repetitions(self):
        events, names = self._events()
        with pytest.raises(ValueError):
            replay_through_monitor(
                events, message_race_pattern(), names, repetitions=0
            )


class TestRunCase:
    def test_produces_stats_and_counts(self):
        result = run_case(
            "race-4",
            lambda: build_message_race(num_traces=4, seed=3, messages_per_sender=4),
            message_race_pattern(),
            repetitions=2,
        )
        assert result.label == "race-4"
        assert result.num_events > 0
        assert result.matches_reported > 0
        stats = result.stats()
        assert stats.q1 <= stats.median <= stats.q3
