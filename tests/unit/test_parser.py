"""Unit tests for the pattern-language parser."""

import pytest

from repro.patterns import (
    AndExpr,
    AttrVar,
    BinaryExpr,
    ClassRef,
    Exact,
    Operator,
    PatternParseError,
    VarRef,
    Wildcard,
    parse_pattern,
)


class TestClassDefs:
    def test_attribute_kinds(self):
        parsed = parse_pattern(
            "C := [$1, Take_Snapshot, '']; D := ['x', 'y z', $2];"
            "pattern := C -> D;"
        )
        c = parsed.classes["C"]
        assert c.process == AttrVar("1")
        assert c.etype == Exact("Take_Snapshot")
        assert c.text == Wildcard()
        d = parsed.classes["D"]
        assert d.process == Exact("x")
        assert d.etype == Exact("y z")

    def test_duplicate_class_rejected(self):
        with pytest.raises(PatternParseError):
            parse_pattern("A := ['','',''];A := ['','',''];pattern := A -> A;")

    def test_malformed_class_rejected(self):
        with pytest.raises(PatternParseError):
            parse_pattern("A := ['', ''];pattern := A;")


class TestVarDecls:
    def test_variable_declared_with_class(self):
        parsed = parse_pattern(
            "Snap := ['', S, '']; Snap $Diff; pattern := $Diff -> $Diff;"
        )
        assert parsed.variables["Diff"].class_name == "Snap"
        assert parsed.class_of_var("Diff").name == "Snap"

    def test_numeric_variable_name_rejected(self):
        with pytest.raises(PatternParseError):
            parse_pattern("A := ['','','']; A $1; pattern := A;")

    def test_duplicate_variable_rejected(self):
        with pytest.raises(PatternParseError):
            parse_pattern(
                "A := ['','','']; A $x; A $x; pattern := $x -> $x;"
            )

    def test_variable_of_unknown_class_rejected(self):
        with pytest.raises(PatternParseError):
            parse_pattern("Nope $x; pattern := $x;")


class TestExpressions:
    def test_operator_precedence_and_binds_loosest(self):
        parsed = parse_pattern(
            "A := ['', a, '']; B := ['', b, '']; C := ['', c, ''];"
            "pattern := A -> B /\\ B -> C;"
        )
        assert isinstance(parsed.expr, AndExpr)
        left, right = parsed.expr.parts
        assert isinstance(left, BinaryExpr) and left.op is Operator.PRECEDES
        assert isinstance(right, BinaryExpr)

    def test_causal_chain_is_left_associative(self):
        parsed = parse_pattern(
            "A := ['', a, '']; B := ['', b, '']; C := ['', c, ''];"
            "pattern := A -> B -> C;"
        )
        expr = parsed.expr
        assert isinstance(expr, BinaryExpr)
        assert isinstance(expr.left, BinaryExpr)
        assert expr.left.left == ClassRef("A")
        assert expr.right == ClassRef("C")

    def test_parentheses_override(self):
        parsed = parse_pattern(
            "A := ['', a, '']; B := ['', b, '']; C := ['', c, ''];"
            "pattern := A -> (B || C);"
        )
        expr = parsed.expr
        assert expr.op is Operator.PRECEDES
        assert isinstance(expr.right, BinaryExpr)
        assert expr.right.op is Operator.CONCURRENT

    def test_variables_in_expression(self):
        parsed = parse_pattern(
            "A := ['', a, '']; A $x; B := ['', b, ''];"
            "pattern := ($x -> B) /\\ (B || $x);"
        )
        left, right = parsed.expr.parts
        assert left.left == VarRef("x")

    def test_unknown_class_in_pattern_rejected(self):
        with pytest.raises(PatternParseError):
            parse_pattern("A := ['','',''];pattern := A -> Missing;")

    def test_unknown_variable_rejected(self):
        with pytest.raises(PatternParseError):
            parse_pattern("A := ['','',''];pattern := A -> $ghost;")

    def test_missing_pattern_rejected(self):
        with pytest.raises(PatternParseError):
            parse_pattern("A := ['','',''];")

    def test_duplicate_pattern_rejected(self):
        with pytest.raises(PatternParseError):
            parse_pattern("A := ['','',''];pattern := A;pattern := A;")

    def test_paper_zookeeper_pattern_parses(self):
        source = """
        Synch    := [$1, Synch_Leader, $2];
        Snapshot := [$2, Take_Snapshot, ''];
        Update   := [$2, Make_Update, ''];
        Forward  := [$2, Take_Snapshot, $1];
        Snapshot $Diff;
        Update $Write;
        pattern := (Synch -> $Diff) /\\ ($Diff -> $Write) /\\ ($Write -> Forward);
        """
        parsed = parse_pattern(source)
        assert set(parsed.classes) == {"Synch", "Snapshot", "Update", "Forward"}
        assert set(parsed.variables) == {"Diff", "Write"}
        assert isinstance(parsed.expr, AndExpr)
        assert len(parsed.expr.parts) == 3
