"""Unit tests for overload control: detector, scorer, shedder."""

import json

import pytest

from repro.core import MatcherConfig, OCEPMatcher
from repro.obs import MetricsRegistry
from repro.patterns import PatternTree, compile_pattern, parse_pattern
from repro.resilience.overload import (
    BAND_CHAFF,
    BAND_COMPLETING,
    BAND_LEAF,
    BAND_STRUCTURAL,
    EventUtilityScorer,
    LoadShedder,
    OverloadDetector,
    OverloadState,
)
from repro.testing import Weaver

AB = "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;"
SR = "S := ['', Send, '']; R := ['', Receive, '']; pattern := S <> R;"


def build_matcher(source, num_traces, **config_kwargs):
    names = [f"P{i}" for i in range(num_traces)]
    compiled = compile_pattern(PatternTree(parse_pattern(source), names))
    return OCEPMatcher(compiled, num_traces, MatcherConfig(**config_kwargs))


class TestDetectorValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"engage_latency": 0.0},
            {"engage_backlog": -1.0},
            {"disengage_fraction": 0.0},
            {"disengage_fraction": 1.0},
            {"critical_factor": 1.0},
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"min_dwell": 0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            OverloadDetector(**kwargs)


class TestDetectorStateMachine:
    def test_starts_normal_with_no_pressure(self):
        d = OverloadDetector()
        assert d.state is OverloadState.NORMAL
        assert d.pressure == 0.0
        assert d.latency_ema is None

    def test_cold_detector_engages_immediately_on_burst(self):
        d = OverloadDetector(engage_latency=1.0, alpha=1.0, min_dwell=8)
        d.observe_latency(2.0)
        assert d.state is OverloadState.SHEDDING
        assert d.transitions_total == 1

    def test_transitions_are_one_step(self):
        """A huge burst ramps NORMAL -> SHEDDING -> CRITICAL, never
        skipping the middle state."""
        d = OverloadDetector(engage_latency=1.0, alpha=1.0, min_dwell=1,
                             critical_factor=4.0)
        d.observe_latency(100.0)
        assert d.state is OverloadState.SHEDDING
        d.observe_latency(100.0)  # within dwell
        assert d.state is OverloadState.SHEDDING
        d.observe_latency(100.0)
        assert d.state is OverloadState.CRITICAL

    def test_hysteresis_holds_between_low_water_and_engage(self):
        """Pressure in (disengage, 1.0) neither engages nor disengages."""
        d = OverloadDetector(engage_latency=1.0, alpha=1.0, min_dwell=1,
                             disengage_fraction=0.5)
        for _ in range(10):
            d.observe_latency(0.8)
        assert d.state is OverloadState.NORMAL
        d.observe_latency(2.0)
        assert d.state is OverloadState.SHEDDING
        for _ in range(10):
            d.observe_latency(0.8)  # above low water: stays engaged
        assert d.state is OverloadState.SHEDDING
        for _ in range(3):
            d.observe_latency(0.2)  # below low water: disengages
        assert d.state is OverloadState.NORMAL

    def test_dwell_blocks_rapid_disengage(self):
        d = OverloadDetector(engage_latency=1.0, alpha=1.0, min_dwell=16)
        d.observe_latency(2.0)
        assert d.state is OverloadState.SHEDDING
        for _ in range(16):
            d.observe_latency(0.0)
        # 16 observations since the transition: still inside the dwell.
        assert d.state is OverloadState.SHEDDING
        d.observe_latency(0.0)
        assert d.state is OverloadState.NORMAL

    def test_backlog_component_engages(self):
        d = OverloadDetector(engage_latency=100.0, engage_backlog=10.0,
                             alpha=1.0, min_dwell=1)
        d.observe_latency(1.0)
        assert d.state is OverloadState.NORMAL
        d.observe_backlog(50.0)
        assert d.pressure == 5.0
        assert d.state is OverloadState.SHEDDING

    def test_backlog_ignored_without_threshold(self):
        d = OverloadDetector(engage_latency=100.0, alpha=1.0)
        d.observe_backlog(1e9)
        assert d.pressure == 0.0
        assert d.state is OverloadState.NORMAL

    def test_ema_and_variance_converge_on_constant_input(self):
        d = OverloadDetector(engage_latency=1e9, alpha=0.25)
        for _ in range(200):
            d.observe_latency(5.0)
        assert d.latency_ema == pytest.approx(5.0)
        assert d.latency_variance == pytest.approx(0.0, abs=1e-9)
        assert d.latency_std == pytest.approx(0.0, abs=1e-4)

    def test_variance_positive_under_jitter(self):
        d = OverloadDetector(engage_latency=1e9, alpha=0.25)
        for i in range(100):
            d.observe_latency(float(i % 2) * 10.0)
        assert d.latency_variance > 1.0

    def test_snapshot_restore_round_trip(self):
        d = OverloadDetector(engage_latency=1.0, alpha=0.5, min_dwell=2)
        for value in (2.0, 3.0, 0.1, 0.2, 5.0):
            d.observe_latency(value)
        d.observe_backlog(7.0)
        state = json.loads(json.dumps(d.snapshot()))
        twin = OverloadDetector(engage_latency=1.0, alpha=0.5, min_dwell=2)
        twin.restore(state)
        assert twin.state is d.state
        assert twin.latency_ema == d.latency_ema
        assert twin.latency_variance == d.latency_variance
        assert twin.backlog_ema == d.backlog_ema
        assert twin.observations == d.observations
        assert twin.transitions_total == d.transitions_total
        # And the twin keeps evolving identically.
        for value in (0.0, 0.0, 0.0, 0.0, 0.0, 0.0):
            d.observe_latency(value)
            twin.observe_latency(value)
        assert twin.state is d.state
        assert twin.latency_ema == d.latency_ema

    def test_instrumentation_gauge_and_transition_counter(self):
        registry = MetricsRegistry()
        d = OverloadDetector(engage_latency=1.0, alpha=1.0, min_dwell=1,
                             registry=registry)
        d.observe_latency(2.0)
        for _ in range(5):
            d.observe_latency(0.0)
        snapshot = {
            (m.name, m.labels): m.value
            for m in registry.metrics()
            if m.kind != "histogram"
        }
        assert snapshot[("ocep_overload_state", ())] == 0
        key = ("ocep_overload_transitions_total",
               (("from", "normal"), ("to", "shedding")))
        assert snapshot[key] == 1
        key = ("ocep_overload_transitions_total",
               (("from", "shedding"), ("to", "normal")))
        assert snapshot[key] == 1


class TestUtilityScorer:
    def test_requires_a_monitor(self):
        with pytest.raises(ValueError, match="at least one"):
            EventUtilityScorer([])

    def test_chaff_band_for_unmatched_local_event(self):
        w = Weaver(2)
        noise = w.local(0, "Noise")
        scorer = EventUtilityScorer([build_matcher(AB, 2)])
        assert scorer.score(noise) == BAND_CHAFF

    def test_structural_band_for_communication(self):
        """Only-order-leaves pattern: comm events match no leaf but
        carry the clock merges — structural, never chaff."""
        w = Weaver(2)
        s, r = w.message(0, 1)
        scorer = EventUtilityScorer([build_matcher(AB, 2)])
        assert scorer.score(s) == BAND_STRUCTURAL
        assert scorer.score(r) == BAND_STRUCTURAL

    def test_leaf_band_with_empty_other_histories(self):
        """A terminating-leaf hit caps at BAND_LEAF while any other
        leaf history is still empty: no search could complete."""
        w = Weaver(2)
        b = w.local(1, "B")
        matcher = build_matcher(AB, 2)
        scorer = EventUtilityScorer([matcher])
        assert scorer.score(b) == BAND_LEAF

    def test_nonterminating_leaf_hit_is_leaf_band(self):
        w = Weaver(2)
        a = w.local(0, "A")
        matcher = build_matcher(AB, 2)
        for event in w.events:
            matcher.on_event(event)
        scorer = EventUtilityScorer([matcher])
        # A has a BEFORE-outgoing edge: not terminating, so another A
        # can never complete a search by itself.
        assert scorer.score(a) == BAND_LEAF

    def test_completing_band_once_other_histories_fill(self):
        w = Weaver(2)
        a = w.local(0, "A")
        matcher = build_matcher(AB, 2)
        matcher.on_event(a)
        b = w.local(1, "B")
        scorer = EventUtilityScorer([matcher])
        assert scorer.score(b) == BAND_COMPLETING

    def test_fully_pinned_partner_trace(self):
        """<> pattern with the send already stored: its receive is
        pinned (dropping it would orphan the pair) -> BAND_LEAF even
        though Receive-typed leaves are exhausted."""
        w = Weaver(2)
        s, r = w.message(0, 1)
        matcher = build_matcher(SR, 2)
        matcher.on_event(s)
        scorer = EventUtilityScorer([matcher])
        # r matches the R leaf class outright (hit); but a *second*
        # message's receive whose partner is NOT stored stays
        # structural, which is the refinement under test.
        assert scorer.score(r) == BAND_COMPLETING
        s2, r2 = w.message(0, 1)
        assert scorer.score(r2) == BAND_COMPLETING  # class hit dominates

    def test_partner_pin_refinement_without_class_hit(self):
        """A comm event that matches no leaf class but whose partner
        sits in a PARTNER-constrained history scores BAND_LEAF."""
        source = (
            "S := ['', Ping, '']; R := ['', Receive, '']; "
            "pattern := S <> R;"
        )
        w = Weaver(2)
        s = w.send(0, "Ping")
        r = w.recv(1, s)  # etype Receive
        matcher = build_matcher(source, 2)
        matcher.on_event(s)
        scorer = EventUtilityScorer([matcher])
        # A send that matches no leaf (etype Send != Ping) and whose
        # partner is absent: structural.
        s_other = w.send(0)  # etype Send
        assert scorer.score(s_other) == BAND_STRUCTURAL

    def test_empty_histories_everywhere_never_completing(self):
        """Edge case: fresh matcher, every history empty — no event
        can score BAND_COMPLETING."""
        w = Weaver(2)
        a = w.local(0, "A")
        b = w.local(1, "B")
        scorer = EventUtilityScorer([build_matcher(AB, 2)])
        assert scorer.score(a) == BAND_LEAF
        assert scorer.score(b) == BAND_LEAF
        assert all(
            scorer.score(e) < BAND_COMPLETING for e in (a, b)
        )

    def test_max_across_shards(self):
        """With several watched patterns the score is the most
        optimistic one."""
        w = Weaver(2)
        b = w.local(1, "B")
        only_c = "C := ['', C, '']; D := ['', D, '']; pattern := C -> D;"
        scorer = EventUtilityScorer(
            [build_matcher(only_c, 2), build_matcher(AB, 2)]
        )
        assert scorer.score(b) == BAND_LEAF


class _Collector:
    """Minimal POET client capturing deliveries."""

    def __init__(self):
        self.events = []
        self.batches = 0

    def on_event(self, event):
        self.events.append(event)

    def on_batch(self, events):
        self.batches += 1
        self.events.extend(events)


class _ExplodingScorer:
    def score(self, event):  # pragma: no cover - must not run
        raise AssertionError("scorer consulted on the NORMAL fast path")


def _forced(state=OverloadState.SHEDDING):
    detector = OverloadDetector(engage_latency=1.0, alpha=1.0, min_dwell=1,
                                critical_factor=1.5)
    detector.observe_latency(2.0)
    if state is OverloadState.CRITICAL:
        detector.observe_latency(10.0)
        detector.observe_latency(10.0)
    assert detector.state is state
    return detector


class TestLoadShedder:
    def _stream_and_matcher(self):
        w = Weaver(2)
        w.local(0, "A")
        w.local(0, "Noise")
        w.message(0, 1)
        w.local(1, "Noise")
        w.local(1, "B")
        return w.events, build_matcher(AB, 2)

    def test_band_validation(self):
        events, matcher = self._stream_and_matcher()
        scorer = EventUtilityScorer([matcher])
        sink = _Collector()
        with pytest.raises(ValueError, match="shed_band"):
            LoadShedder(sink, scorer, OverloadDetector(),
                        shed_band=BAND_COMPLETING)
        with pytest.raises(ValueError, match="critical_band"):
            LoadShedder(sink, scorer, OverloadDetector(),
                        shed_band=BAND_LEAF, critical_band=BAND_CHAFF)
        with pytest.raises(ValueError, match="max_drop_rate"):
            LoadShedder(sink, scorer, OverloadDetector(), max_drop_rate=0.0)

    def test_normal_state_is_unscored_batch_pass_through(self):
        events, _ = self._stream_and_matcher()
        sink = _Collector()
        shedder = LoadShedder(sink, _ExplodingScorer(), OverloadDetector())
        shedder.on_batch(events)
        assert sink.events == list(events)
        assert sink.batches == 1
        assert shedder.offered_total == len(events)
        assert shedder.shed_total == 0

    def test_shedding_drops_chaff_keeps_leaves(self):
        events, matcher = self._stream_and_matcher()
        sink = _Collector()
        shedder = LoadShedder(
            sink, EventUtilityScorer([matcher]), _forced(),
            shed_band=BAND_CHAFF, record_kept=True,
        )
        shedder.on_batch(events)
        kept_types = [e.etype for e in sink.events]
        assert "Noise" not in kept_types
        assert "A" in kept_types and "B" in kept_types
        assert shedder.shed_total == 2
        assert shedder.kept_events == sink.events
        assert [i.trace for i in shedder.dropped_ids] == [0, 1]

    def test_critical_band_drops_structural_too(self):
        events, matcher = self._stream_and_matcher()
        sink = _Collector()
        shedder = LoadShedder(
            sink, EventUtilityScorer([matcher]),
            _forced(OverloadState.CRITICAL),
            shed_band=BAND_CHAFF, critical_band=BAND_STRUCTURAL,
        )
        shedder.on_batch(events)
        kinds = {e.etype for e in sink.events}
        assert "Send" not in kinds and "Receive" not in kinds
        assert shedder.shed_total == 4  # 2 noise + send + recv

    def test_max_drop_rate_budget(self):
        events, matcher = self._stream_and_matcher()
        # Everything is chaff for an unrelated pattern, but the budget
        # caps drops at ~25% of offered.
        other = build_matcher(
            "X := ['', X, '']; Y := ['', Y, '']; pattern := X -> Y;", 2
        )
        sink = _Collector()
        shedder = LoadShedder(
            sink, EventUtilityScorer([other]), _forced(),
            shed_band=BAND_STRUCTURAL, max_drop_rate=0.25,
        )
        for _ in range(4):
            shedder.on_batch(events)
        assert shedder.offered_total == 4 * len(events)
        assert shedder.drop_rate <= 0.25

    def test_shed_metrics_labelled_by_reason_band_state(self):
        registry = MetricsRegistry()
        events, matcher = self._stream_and_matcher()
        sink = _Collector()
        shedder = LoadShedder(
            sink, EventUtilityScorer([matcher]), _forced(),
            shed_band=BAND_CHAFF, registry=registry,
        )
        shedder.on_batch(events)
        snapshot = {
            (m.name, m.labels): m.value
            for m in registry.metrics()
            if m.kind != "histogram"
        }
        assert snapshot[
            ("poet_holdback_shed_total", (("reason", "overload"),))
        ] == 2
        assert snapshot[
            ("ocep_overload_shed_total",
             (("band", "chaff"), ("state", "shedding")))
        ] == 2

    def test_snapshot_restore_round_trip(self):
        events, matcher = self._stream_and_matcher()
        sink = _Collector()
        shedder = LoadShedder(
            sink, EventUtilityScorer([matcher]), _forced(),
            shed_band=BAND_CHAFF,
        )
        shedder.on_batch(events)
        state = json.loads(json.dumps(shedder.snapshot()))
        twin = LoadShedder(
            _Collector(), EventUtilityScorer([matcher]),
            OverloadDetector(engage_latency=1.0, alpha=1.0, min_dwell=1,
                             critical_factor=1.5),
        )
        twin.restore(state)
        assert twin.offered_total == shedder.offered_total
        assert twin.shed_total == shedder.shed_total
        assert twin.detector.state is shedder.detector.state
        assert twin.stats() == shedder.stats()
