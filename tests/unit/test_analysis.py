"""Unit tests for boxplot statistics, rendering, and tables."""

import pytest

from repro.analysis import (
    compute_boxplot,
    format_table,
    quartile_table,
    render_boxplots,
)


class TestComputeBoxplot:
    def test_simple_quartiles(self):
        stats = compute_boxplot([1, 2, 3, 4, 5])
        assert stats.q1 == 2
        assert stats.median == 3
        assert stats.q3 == 4
        assert stats.minimum == 1
        assert stats.maximum == 5
        assert stats.iqr == 2

    def test_interpolated_quartiles(self):
        stats = compute_boxplot([1, 2, 3, 4])
        assert stats.q1 == pytest.approx(1.75)
        assert stats.median == pytest.approx(2.5)
        assert stats.q3 == pytest.approx(3.25)

    def test_single_sample(self):
        stats = compute_boxplot([7.0])
        assert stats.q1 == stats.median == stats.q3 == 7.0
        assert stats.outliers == ()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compute_boxplot([])

    def test_outliers_beyond_fences(self):
        samples = [10, 11, 12, 13, 14, 100]
        stats = compute_boxplot(samples)
        assert 100 in stats.outliers
        assert stats.top_whisker <= 14

    def test_whiskers_clamped_to_data(self):
        samples = [1, 2, 3, 4, 5]
        stats = compute_boxplot(samples)
        assert stats.low_whisker == 1
        assert stats.top_whisker == 5

    def test_order_invariance(self):
        a = compute_boxplot([5, 1, 4, 2, 3])
        b = compute_boxplot([1, 2, 3, 4, 5])
        assert a == b

    def test_mean(self):
        assert compute_boxplot([1, 2, 3]).mean == pytest.approx(2.0)


class TestRenderBoxplots:
    def _groups(self):
        return {
            "10 traces": compute_boxplot([100, 150, 200, 250, 900]),
            "20 traces": compute_boxplot([200, 260, 300, 380, 1500]),
        }

    def test_contains_labels_and_marks(self):
        out = render_boxplots(self._groups(), title="Fig X")
        assert "Fig X" in out
        assert "10 traces" in out
        assert "#" in out  # median mark
        assert "[" in out and "]" in out  # IQR box
        # outliers appear either in range ('x') or clipped at the edge ('>')
        assert "x" in out or ">" in out

    def test_respects_width(self):
        out = render_boxplots(self._groups(), width=40)
        for line in out.splitlines()[1:]:
            assert len(line) <= 40 + len("10 traces") + 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_boxplots({})


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["1", "2"]])

    def test_quartile_table_shape(self):
        out = quartile_table({"Deadlock": compute_boxplot([1712, 1805, 1888])})
        assert "Test Case" in out
        assert "Deadlock" in out
        assert "Top Whisker" in out
