"""Unit tests for encoded (bounded-storage) timestamps."""

import pytest

from repro.clocks import (
    CLOCK_BACKENDS,
    ClockFrame,
    EncodedClock,
    VectorClock,
    encode_events,
    make_clock_bank,
    validate_backend,
)
from repro.testing import Weaver, random_computation


class TestBackendSelection:
    def test_known_backends(self):
        assert CLOCK_BACKENDS == ("fidge", "encoded")
        for backend in CLOCK_BACKENDS:
            assert validate_backend(backend) == backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown clock backend"):
            validate_backend("matrix")

    def test_clock_bank_fidge(self):
        clocks, frame = make_clock_bank("fidge", 3)
        assert frame is None
        assert all(isinstance(c, VectorClock) for c in clocks)
        assert all(c.components == (0, 0, 0) for c in clocks)

    def test_clock_bank_encoded_shares_one_frame(self):
        clocks, frame = make_clock_bank("encoded", 3)
        assert isinstance(frame, ClockFrame)
        assert all(c.frame is frame for c in clocks)
        assert [c.trace for c in clocks] == [0, 1, 2]
        assert all(c.components == (0, 0, 0) for c in clocks)


class TestClockFrame:
    def test_rows_are_interned(self):
        frame = ClockFrame(3)
        a = frame.intern((0, 1, 2))
        b = frame.intern((0, 1, 2))
        assert a == b
        assert frame.num_rows == 2  # zero row + one interned row

    def test_zero_epoch_is_all_zero(self):
        frame = ClockFrame(4)
        assert frame.row(0) == (0, 0, 0, 0)

    def test_zero_validates_trace(self):
        frame = ClockFrame(2)
        with pytest.raises(ValueError):
            frame.zero(-1)
        with pytest.raises(ValueError):
            frame.zero(2)

    def test_check_dominates_is_exact(self):
        frame = ClockFrame(3)
        lo = frame.intern((0, 1, 2))
        hi = frame.intern((0, 1, 3))
        incomparable = frame.intern((0, 2, 1))
        assert frame.check_dominates(lo, lo)
        assert frame.check_dominates(lo, hi)
        assert not frame.check_dominates(hi, lo)
        assert not frame.check_dominates(lo, incomparable)
        # A verified pair is cached for O(1) re-checks.
        assert (lo, hi) in frame._dominated

    def test_merge_certifies_result_dominates_parent(self):
        frame = ClockFrame(3)
        a = frame.encode((2, 1, 0), 0)
        b = frame.encode((0, 3, 4), 1)
        merged = a.merge(b)
        assert (a.epoch, merged.epoch) in frame._dominated

    def test_transcode_certifies_receive_transitions(self):
        weaver = random_computation(seed=3, num_traces=4, steps=120)
        encoded, frame = encode_events(weaver.events, 4)
        last = {}
        for event in encoded:
            prev = last.get(event.trace)
            if prev is not None and prev != event.clock.epoch:
                assert frame.check_dominates(prev, event.clock.epoch)
                assert (prev, event.clock.epoch) in frame._dominated
            last[event.trace] = event.clock.epoch

    def test_encode_roundtrips_components(self):
        frame = ClockFrame(3)
        clock = frame.encode((2, 5, 1), trace=1)
        assert clock.components == (2, 5, 1)
        assert clock.index == 5
        assert clock.knowledge == (2, 0, 1)

    def test_encode_validates(self):
        frame = ClockFrame(3)
        with pytest.raises(ValueError):
            frame.encode((1, 2), trace=0)  # wrong width
        with pytest.raises(ValueError):
            frame.encode((1, -2, 0), trace=0)  # negative component
        with pytest.raises(ValueError):
            frame.encode((1, 2, 0), trace=3)  # trace out of range


class TestTickAndMerge:
    def test_tick_is_o1_and_advances_own_component(self):
        frame = ClockFrame(3)
        clock = frame.zero(1).tick(1).tick(1)
        assert clock.components == (0, 2, 0)
        assert clock.epoch == 0  # no merge, no new rows
        assert frame.num_rows == 1

    def test_tick_rejects_foreign_trace(self):
        clock = ClockFrame(3).zero(1)
        with pytest.raises(ValueError):
            clock.tick(0)

    def test_tick_rejects_negative_trace(self):
        # The VectorClock wrap bug's encoded counterpart: a negative
        # trace must never silently alter another component.
        clock = ClockFrame(3).zero(1)
        with pytest.raises(ValueError):
            clock.tick(-1)

    def test_merge_folds_remote_knowledge(self):
        frame = ClockFrame(3)
        a = frame.zero(0).tick(0)                      # (1,0,0)
        b = frame.zero(1).merge(a.tick(0)).tick(1)     # sees (2,0,0)
        assert b.components == (2, 1, 0)

    def test_merge_with_vector_clock(self):
        frame = ClockFrame(3)
        merged = frame.zero(2).merge(VectorClock([4, 1, 0])).tick(2)
        assert merged.components == (4, 1, 1)

    def test_merge_width_mismatch(self):
        with pytest.raises(ValueError):
            ClockFrame(3).zero(0).merge(VectorClock([1, 2]))

    def test_merge_cannot_move_own_component_backwards(self):
        clock = ClockFrame(2).zero(0)  # own component 0
        with pytest.raises(ValueError):
            clock.merge(VectorClock([5, 0]))

    def test_merge_without_new_knowledge_keeps_epoch(self):
        frame = ClockFrame(2)
        a = frame.zero(0).tick(0)
        merged = a.merge(VectorClock([1, 0]))
        assert merged is a


class TestProtocolEquivalence:
    def test_indexing_width_iteration(self):
        clock = ClockFrame(3).encode((2, 5, 1), trace=1)
        assert len(clock) == 3
        assert [clock[t] for t in range(3)] == [2, 5, 1]
        assert list(clock) == [2, 5, 1]
        with pytest.raises(IndexError):
            clock[3]

    def test_equality_and_hash_match_vector_clock(self):
        frame = ClockFrame(3)
        encoded = frame.encode((2, 5, 1), trace=1)
        full = VectorClock([2, 5, 1])
        assert encoded == full
        assert full == encoded
        assert hash(encoded) == hash(full)

    def test_partial_order_against_vector_clock(self):
        frame = ClockFrame(2)
        small = frame.encode((1, 0), trace=0)
        big = VectorClock([2, 1])
        assert small <= big
        assert small < big
        assert not (small >= big)

    def test_same_epoch_fast_path_cross_trace(self):
        # Two clocks sharing one frame and epoch: the O(1) comparison
        # must agree with the componentwise definition.
        frame = ClockFrame(2)
        a = frame.zero(0).tick(0)                # (1, 0)
        b = frame.zero(1).merge(a).tick(1)       # (1, 1), new epoch
        c = b.tick(1)                            # (1, 2), same epoch as b
        assert b <= c and not (c <= b)
        assert a <= b  # cross-epoch generic path
        assert a.concurrent_with(frame.zero(1).tick(1))


class TestEncodeEvents:
    def test_transcode_preserves_everything_but_clock_repr(self):
        weaver = random_computation(seed=7, num_traces=4, steps=60)
        encoded, frame = encode_events(weaver.events, 4)
        assert len(encoded) == len(weaver.events)
        for orig, enc in zip(weaver.events, encoded):
            assert isinstance(enc.clock, EncodedClock)
            assert enc.clock.frame is frame
            assert enc.clock.components == orig.clock.components
            assert (enc.trace, enc.index, enc.etype, enc.kind,
                    enc.partner, enc.lamport) == (
                orig.trace, orig.index, orig.etype, orig.kind,
                orig.partner, orig.lamport)

    def test_transcode_validates_linearization(self):
        weaver = Weaver(2)
        weaver.local(0)
        weaver.local(0)
        with pytest.raises(ValueError, match="linearization"):
            encode_events(reversed(weaver.events), 2)

    def test_transcode_validates_trace_range(self):
        weaver = Weaver(3)
        weaver.local(2)
        with pytest.raises(ValueError, match="out of range"):
            encode_events(weaver.events, 2)

    def test_frame_reuse_across_streams(self):
        weaver = random_computation(seed=3, num_traces=3, steps=30)
        first, frame = encode_events(weaver.events, 3)
        second, frame2 = encode_events(weaver.events, 3, frame=frame)
        assert frame2 is frame
        assert [e.clock.epoch for e in first] == [e.clock.epoch for e in second]

    def test_frame_width_mismatch(self):
        with pytest.raises(ValueError):
            encode_events([], 3, frame=ClockFrame(2))


class TestNativeGeneration:
    def test_weaver_backends_weave_identical_components(self):
        full = random_computation(seed=11, num_traces=4, steps=80)
        enc = random_computation(
            seed=11, num_traces=4, steps=80, clock_backend="encoded"
        )
        assert len(full.events) == len(enc.events)
        for a, b in zip(full.events, enc.events):
            assert isinstance(b.clock, EncodedClock)
            assert a.clock.components == b.clock.components
            assert a.event_id == b.event_id

    def test_weaver_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            Weaver(2, clock_backend="matrix")
