"""Targeted tests for COVERAGE-sweep semantics and trigger behaviour."""

from repro.core import MatcherConfig, OCEPMatcher, SweepMode
from repro.patterns import PatternTree, compile_pattern, parse_pattern
from repro.testing import Weaver

AB = "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;"


def build(source, num_traces, **kwargs):
    names = [f"P{i}" for i in range(num_traces)]
    compiled = compile_pattern(PatternTree(parse_pattern(source), names))
    return OCEPMatcher(compiled, num_traces, MatcherConfig(**kwargs))


def feed(matcher, events):
    reports = []
    for event in events:
        reports.extend(matcher.on_event(event))
    return reports


class TestCoverageSweep:
    def _three_trace_as(self):
        """An A on each of three traces, all before a B on a fourth."""
        w = Weaver(4)
        sends = []
        for trace in range(3):
            w.local(trace, "A")
            sends.append(w.send(trace))
        for send in sends:
            w.recv(3, send)
        w.local(3, "B")
        return w

    def test_one_match_per_trace_with_candidates(self):
        w = self._three_trace_as()
        matcher = build(AB, 4)
        reports = feed(matcher, w.events)
        assert len(reports) == 3
        traces = sorted(r.as_dict()[0].trace for r in reports)
        assert traces == [0, 1, 2]

    def test_covered_traces_skipped_on_later_triggers(self):
        """After all slots are covered, a later trigger reports only
        its own (fast-path) match instead of re-sweeping."""
        w = self._three_trace_as()
        w.local(3, "B")  # a second trigger
        matcher = build(AB, 4)
        reports = feed(matcher, w.events)
        first_trigger = [r for r in reports if r.trigger_event.index == 4]
        second_trigger = [r for r in reports if r.trigger_event.index == 5]
        assert len(first_trigger) == 3  # the coverage sweep
        assert len(second_trigger) == 1  # slots covered: one match only

    def test_subset_growth_matches_reports(self):
        w = self._three_trace_as()
        matcher = build(AB, 4)
        reports = feed(matcher, w.events)
        # every sweep report covered at least one new slot
        assert all(r.new_slots for r in reports)
        assert matcher.subset.covered_slots == {
            (0, 0), (0, 1), (0, 2), (1, 3)
        }

    def test_newest_candidate_preferred(self):
        w = Weaver(2)
        w.local(0, "A")
        w.local(0, "A")
        newest = w.local(0, "A")
        s, r = w.message(0, 1)
        w.local(1, "B")
        matcher = build(AB, 2)
        reports = feed(matcher, w.events)
        assert len(reports) == 1
        assert reports[0].as_dict()[0] == newest

    def test_first_mode_single_report_even_with_open_slots(self):
        w = self._three_trace_as()
        matcher = build(AB, 4, sweep=SweepMode.FIRST)
        reports = feed(matcher, w.events)
        assert len(reports) == 1


class TestTriggerFastPaths:
    def test_search_skipped_when_a_leaf_never_matched(self):
        """The fail-fast: a trigger with an empty partner leaf history
        must not enter the backtracking search at all."""
        w = Weaver(2)
        w.local(1, "B")  # B arrives with no A anywhere
        matcher = build(AB, 2)
        feed(matcher, w.events)
        # a search ran (counted) but produced nothing and did zero
        # forward steps — verify indirectly via its zero reports and
        # empty subset
        assert matcher.searches_run == 1
        assert len(matcher.subset) == 0

    def test_comm_events_bump_epochs_not_histories(self):
        source = "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;"
        w = Weaver(2)
        w.local(0, "A")
        s, r = w.message(0, 1)  # neither matches a pattern class
        matcher = build(source, 2)
        feed(matcher, w.events)
        assert matcher.history.leaf(0).size == 1
        assert matcher.history.leaf(1).size == 0

    def test_event_matching_two_terminating_leaves_searches_twice(self):
        source = "X := ['', E, '']; Y := ['', E, '']; pattern := X || Y;"
        w = Weaver(2)
        w.local(0, "E")
        w.local(1, "E")
        matcher = build(source, 2)
        reports = feed(matcher, w.events)
        # the second E triggers searches as both X and Y
        assert matcher.searches_run == 4  # two per event
        assert reports  # the concurrent pair is found
