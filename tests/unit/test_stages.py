"""Unit tests for the stage-axis telemetry (``repro.obs.stages``).

Covers the :class:`StageLink` interposer (counting, batch sizes,
inclusive latency), :class:`PipelineTelemetry` series minting and
probe publication, and the pipeline integration: a run with a live
registry exposes all seven ``ocep_stage_*`` series, with the
resilience stages counting only when wired.
"""

import pytest

from repro.engine import Pipeline
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.stages import (
    STAGES,
    PipelineTelemetry,
    StageLink,
    attach_telemetry,
)
from repro.resilience.faults import FaultPlan
from repro.testing import Weaver

AB = "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;"


def _ab_stream():
    w = Weaver(3)
    w.local(0, "A")
    w.message(0, 2)
    w.local(2, "B")
    w.local(1, "A")
    w.message(1, 2)
    w.local(2, "B")
    return w.events


TRACES = ["P0", "P1", "P2"]


class _Downstream:
    def __init__(self):
        self.events = []
        self.batches = []

    def on_event(self, event):
        self.events.append(event)

    def on_batch(self, events):
        self.batches.append(list(events))
        self.events.extend(events)


class TestStageLink:
    def _link(self):
        telemetry = PipelineTelemetry(MetricsRegistry())
        downstream = _Downstream()
        return telemetry, downstream, telemetry.link("dispatcher", downstream)

    def test_on_event_forwards_and_counts(self):
        telemetry, downstream, link = self._link()
        assert isinstance(link, StageLink)
        link.on_event("e1")
        link.on_event("e2")
        assert downstream.events == ["e1", "e2"]
        assert telemetry.stage_summary()["dispatcher"]["events"] == 2

    def test_on_batch_counts_events_and_batch_size(self):
        telemetry, downstream, link = self._link()
        link.on_batch(["a", "b", "c"])
        assert downstream.batches == [["a", "b", "c"]]
        assert telemetry.stage_summary()["dispatcher"]["events"] == 3
        registry = telemetry.registry
        batch = next(
            m for m in registry.metrics()
            if m.name == "ocep_stage_batch_size_events"
            and dict(m.labels)["stage"] == "dispatcher"
        )
        assert batch.count == 1
        assert batch.sum == 3

    def test_latency_histogram_observes_each_delivery(self):
        telemetry, _, link = self._link()
        link.on_event("x")
        link.on_batch(["y", "z"])
        latency = next(
            m for m in telemetry.registry.metrics()
            if m.name == "ocep_stage_latency_seconds"
            and dict(m.labels)["stage"] == "dispatcher"
        )
        # One observation per delivery (per batch, not per event).
        assert latency.count == 2
        assert latency.sum >= 0.0

    def test_unknown_stage_is_rejected(self):
        telemetry = PipelineTelemetry(MetricsRegistry())
        with pytest.raises(KeyError):
            telemetry.link("nonesuch", _Downstream())


class TestPipelineTelemetry:
    def test_all_series_minted_up_front(self):
        registry = MetricsRegistry()
        PipelineTelemetry(registry)
        names = {
            (m.name, dict(m.labels).get("stage")) for m in registry.metrics()
        }
        for stage in STAGES:
            for family in (
                "ocep_stage_events_total",
                "ocep_stage_queue_depth",
                "ocep_stage_latency_seconds",
                "ocep_stage_batch_size_events",
            ):
                assert (family, stage) in names

    def test_count_probe_is_monotone_guarded(self):
        telemetry = PipelineTelemetry(MetricsRegistry())
        value = {"n": 5}
        telemetry.set_count_probe("source", lambda: value["n"])
        telemetry.refresh()
        assert telemetry.stage_summary()["source"]["events"] == 5
        # A torn mid-update read may step backwards; the published
        # counter must not.
        value["n"] = 3
        telemetry.refresh()
        assert telemetry.stage_summary()["source"]["events"] == 5
        value["n"] = 9
        telemetry.refresh()
        assert telemetry.stage_summary()["source"]["events"] == 9

    def test_queue_probe_published_on_refresh(self):
        telemetry = PipelineTelemetry(MetricsRegistry())
        telemetry.set_queue_probe("holdback", lambda: 7)
        assert telemetry.stage_summary()["holdback"]["queue_depth"] == 0
        telemetry.refresh()
        assert telemetry.stage_summary()["holdback"]["queue_depth"] == 7

    def test_lifecycle_flags(self):
        telemetry = PipelineTelemetry(MetricsRegistry())
        assert not telemetry.started and not telemetry.finished
        telemetry.mark_started()
        assert telemetry.started and not telemetry.finished
        telemetry.mark_finished()
        assert telemetry.started and telemetry.finished

    def test_attach_telemetry_requires_live_registry(self):
        assert attach_telemetry(None) is None
        assert attach_telemetry(NULL_REGISTRY) is None
        assert isinstance(attach_telemetry(MetricsRegistry()),
                          PipelineTelemetry)


class TestPipelineIntegration:
    def test_bare_run_publishes_core_stages(self):
        registry = MetricsRegistry()
        pipeline = Pipeline.replay(_ab_stream(), TRACES, registry=registry)
        pipeline.watch("ab", AB)
        result = pipeline.run()
        summary = result.telemetry.stage_summary()
        assert set(summary) == set(STAGES)
        for stage in ("source", "poet", "dispatcher", "monitors"):
            assert summary[stage]["events"] == result.num_events, stage
        # Unwired resilience stages exist but never count.
        for stage in ("faults", "holdback", "shedder"):
            assert summary[stage]["events"] == 0, stage

    def test_resilience_stages_count_when_wired(self):
        registry = MetricsRegistry()
        pipeline = Pipeline.replay(_ab_stream(), TRACES, registry=registry)
        pipeline.with_overload_control()
        pipeline.watch("ab", AB)
        pipeline.with_faults(FaultPlan(kind="none"))
        pipeline.with_holdback()
        result = pipeline.run()
        summary = result.telemetry.stage_summary()
        for stage in STAGES:
            assert summary[stage]["events"] == result.num_events, stage

    def test_disabled_registry_keeps_links_out(self):
        pipeline = Pipeline.replay(_ab_stream(), TRACES)
        monitor = pipeline.watch("ab", AB)
        result = pipeline.run()
        assert result.telemetry is None
        assert monitor.stats().matches_reported > 0

    def test_match_output_identical_with_and_without_telemetry(self):
        events = _ab_stream()
        plain = Pipeline.replay(events, TRACES)
        plain_monitor = plain.watch("ab", AB)
        plain.run()

        observed = Pipeline.replay(events, TRACES,
                                   registry=MetricsRegistry())
        observed_monitor = observed.watch("ab", AB)
        observed.run()

        assert observed_monitor.reports == plain_monitor.reports
        assert (observed_monitor.subset.signature()
                == plain_monitor.subset.signature())
