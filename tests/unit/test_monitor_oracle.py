"""Unit tests for the monitor front-end and the brute-force oracle."""

from repro.core import Monitor, enumerate_matches
from repro.core.oracle import covered_slots
from repro.patterns import PatternTree, compile_pattern, parse_pattern
from repro.testing import Weaver

AB = "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;"


def simple_stream():
    w = Weaver(2)
    a = w.local(0, "A")
    s, r = w.message(0, 1)
    b = w.local(1, "B")
    return w, a, b


class TestMonitor:
    def test_from_source_and_reports(self):
        w, a, b = simple_stream()
        monitor = Monitor.from_source(AB, ["P0", "P1"])
        for e in w.events:
            monitor.on_event(e)
        assert len(monitor.reports) == 1
        assert monitor.reports[0].as_dict() == {0: a, 1: b}

    def test_callback_invoked_per_match(self):
        w, a, b = simple_stream()
        seen = []
        monitor = Monitor.from_source(AB, ["P0", "P1"], on_match=seen.append)
        for e in w.events:
            monitor.on_event(e)
        assert len(seen) == 1
        assert seen[0].trigger_event == b

    def test_timings_recorded(self):
        w, _, _ = simple_stream()
        monitor = Monitor.from_source(AB, ["P0", "P1"])
        for e in w.events:
            monitor.on_event(e)
        assert len(monitor.timings) == len(w.events)
        assert len(monitor.terminating_timings) == 1  # only b triggers
        assert all(t >= 0 for t in monitor.timings)

    def test_timings_disabled(self):
        w, _, _ = simple_stream()
        monitor = Monitor.from_source(AB, ["P0", "P1"], record_timings=False)
        for e in w.events:
            monitor.on_event(e)
        assert monitor.timings == []
        assert len(monitor.reports) == 1

    def test_stats(self):
        w, _, _ = simple_stream()
        monitor = Monitor.from_source(AB, ["P0", "P1"])
        for e in w.events:
            monitor.on_event(e)
        stats = monitor.stats()
        assert stats.events_seen == len(w.events)
        assert stats.matches_reported == 1
        assert stats.subset_size == 1
        assert stats.searches_run == 1
        assert stats.history_size == 2


class TestOracle:
    def _compile(self, source, names):
        return compile_pattern(PatternTree(parse_pattern(source), names))

    def test_finds_same_simple_match(self):
        w, a, b = simple_stream()
        pattern = self._compile(AB, ["P0", "P1"])
        matches = enumerate_matches(pattern, w.events)
        assert matches == [{0: a, 1: b}]

    def test_event_order_does_not_matter(self):
        w, a, b = simple_stream()
        pattern = self._compile(AB, ["P0", "P1"])
        assert enumerate_matches(pattern, reversed(w.events)) == [{0: a, 1: b}]

    def test_distinctness_enforced(self):
        source = "A := ['', A, '']; pattern := A || A;"
        w = Weaver(2)
        a = w.local(0, "A")
        pattern = self._compile(source, ["P0", "P1"])
        assert enumerate_matches(pattern, [a]) == []

    def test_limited_semantics(self):
        source = "A := ['', A, '']; B := ['', B, '']; pattern := A ~> B;"
        w = Weaver(1)
        a1 = w.local(0, "A")
        a2 = w.local(0, "A")
        b = w.local(0, "B")
        pattern = self._compile(source, ["P0"])
        matches = enumerate_matches(pattern, w.events)
        assert matches == [{0: a2, 1: b}]

    def test_exist_check_filters_compound_precedence(self):
        source = (
            "A := ['', A, '']; B := ['', B, '']; C := ['', C, ''];"
            "pattern := (A || B) -> C;"
        )
        w = Weaver(3)
        a = w.local(0, "A")
        b = w.local(1, "B")
        c = w.local(2, "C")  # concurrent with both: no exists-pair
        pattern = self._compile(source, ["P0", "P1", "P2"])
        assert enumerate_matches(pattern, w.events) == []

        w2 = Weaver(3)
        a2 = w2.local(0, "A")
        b2 = w2.local(1, "B")
        s, r = w2.message(0, 2)
        c2 = w2.local(2, "C")  # a2 -> c2 now holds, b2 stays unordered
        pattern2 = self._compile(source, ["P0", "P1", "P2"])
        matches = enumerate_matches(pattern2, w2.events)
        assert matches == [{0: a2, 1: b2, 2: c2}]

    def test_covered_slots(self):
        w, a, b = simple_stream()
        pattern = self._compile(AB, ["P0", "P1"])
        matches = enumerate_matches(pattern, w.events)
        assert covered_slots(matches) == {(0, 0), (1, 1)}
