"""Unit tests for pattern rendering (the unparser)."""

import pytest

from repro.patterns import parse_pattern, render_pattern
from repro.patterns.ast import AttrVar, Exact, Wildcard
from repro.patterns.render import render_attr, render_expr


class TestRenderAttr:
    def test_wildcard(self):
        assert render_attr(Wildcard()) == "''"

    def test_variable(self):
        assert render_attr(AttrVar("1")) == "$1"
        assert render_attr(AttrVar("p")) == "$p"

    def test_bare_identifier(self):
        assert render_attr(Exact("Take_Snapshot")) == "Take_Snapshot"

    def test_quoting_when_needed(self):
        assert render_attr(Exact("a b")) == "'a b'"
        assert render_attr(Exact("")) == "''"
        assert render_attr(Exact("1abc")) == "'1abc'"
        assert render_attr(Exact("x;y")) == "'x;y'"


class TestRenderExpr:
    def _expr(self, source):
        full = (
            "A := ['', a, '']; B := ['', b, '']; C := ['', c, ''];"
            "A $x;"
            f"pattern := {source};"
        )
        return parse_pattern(full).expr

    @pytest.mark.parametrize(
        "source",
        [
            "A -> B",
            "A || B",
            "A <> B",
            "A ~> B",
            "A -> B -> C",
            "A -> (B || C)",
            "(A || B) -> C",
            "(A -> B) /\\ (B -> C)",
            "$x -> B",
            "(A || A) <-> (B || B)",
        ],
    )
    def test_round_trip_expressions(self, source):
        expr = self._expr(source)
        rendered = render_expr(expr)
        assert self._expr(rendered) == expr


class TestRenderPattern:
    def test_full_definition_round_trip(self):
        source = """
        Synch    := [$1, Synch_Leader, $2];
        Snapshot := [$2, Take_Snapshot, ''];
        Update   := [$2, Make_Update, ''];
        Forward  := [$2, Take_Snapshot, $1];
        Snapshot $Diff;
        Update $Write;
        pattern := (Synch -> $Diff) /\\ ($Diff -> $Write) /\\ ($Write -> Forward);
        """
        parsed = parse_pattern(source)
        rendered = render_pattern(parsed)
        reparsed = parse_pattern(rendered)
        assert reparsed == parsed

    def test_rendered_source_is_stable(self):
        source = "A := ['', a, '']; pattern := A;"
        once = render_pattern(parse_pattern(source))
        twice = render_pattern(parse_pattern(once))
        assert once == twice

    def test_workload_patterns_round_trip(self):
        from repro.workloads import (
            atomicity_pattern,
            deadlock_pattern,
            message_race_pattern,
            ordering_bug_pattern,
            traffic_light_pattern,
        )

        for source in (
            deadlock_pattern(4),
            message_race_pattern(),
            atomicity_pattern(),
            ordering_bug_pattern(),
            traffic_light_pattern(),
        ):
            parsed = parse_pattern(source)
            assert parse_pattern(render_pattern(parsed)) == parsed
