"""Unit tests for the baseline detectors and matchers."""

import pytest

from repro.baselines import (
    ConflictGraphDetector,
    SlidingWindowMatcher,
    TimestampRaceDetector,
    WaitForGraphDetector,
    chronological_config,
    chronological_monitor,
)
from repro.patterns import PatternTree, compile_pattern, parse_pattern
from repro.testing import Weaver

AB = "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;"


class TestChronological:
    def test_config_disables_optimisations(self):
        config = chronological_config()
        assert not config.restrict_domains
        assert not config.backjump

    def test_monitor_still_finds_matches(self):
        w = Weaver(2)
        a = w.local(0, "A")
        s, r = w.message(0, 1)
        b = w.local(1, "B")
        monitor = chronological_monitor(AB, ["P0", "P1"])
        for e in w.events:
            monitor.on_event(e)
        assert len(monitor.reports) == 1


class TestSlidingWindow:
    def _pattern(self):
        return compile_pattern(PatternTree(parse_pattern(AB), ["P0", "P1"]))

    def test_match_inside_window(self):
        w = Weaver(2)
        w.local(0, "A")
        s, r = w.message(0, 1)
        w.local(1, "B")
        matcher = SlidingWindowMatcher(self._pattern(), 2, window=10)
        found = []
        for e in w.events:
            found.extend(matcher.on_event(e))
        assert len(found) == 1

    def test_omission_outside_window(self):
        """The Figure 3 problem: a match spanning beyond the window is
        silently missed."""
        w = Weaver(2)
        w.local(0, "A")
        s, r = w.message(0, 1)
        for _ in range(10):
            w.local(1, "Noise")
        w.local(1, "B")
        matcher = SlidingWindowMatcher(self._pattern(), 2, window=4)
        found = []
        for e in w.events:
            found.extend(matcher.on_event(e))
        assert found == []  # the A fell out of the window

    def test_default_window_is_n_squared(self):
        matcher = SlidingWindowMatcher(self._pattern(), 2)
        assert matcher.window == 4

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            SlidingWindowMatcher(self._pattern(), 2, window=0)


class TestWaitForGraph:
    def test_detects_cycle(self):
        w = Weaver(3)
        s0 = w.send(0, text="to1")
        s1 = w.send(1, text="to2")
        s2 = w.send(2, text="to0")
        detector = WaitForGraphDetector(3)
        reports = [detector.on_event(e) for e in w.events]
        assert reports[0] is None and reports[1] is None
        assert reports[2] is not None
        assert set(reports[2].cycle) == {0, 1, 2}

    def test_receive_clears_edge(self):
        w = Weaver(2)
        s0 = w.send(0, text="to1")
        r = w.recv(1, s0)
        s1 = w.send(1, text="to0")
        detector = WaitForGraphDetector(2)
        for e in w.events:
            report = detector.on_event(e)
        assert report is None  # the consumed edge broke the would-be cycle
        assert detector.num_edges == 1

    def test_ignores_sends_without_destination_text(self):
        w = Weaver(2)
        w.send(0, text="not-a-destination")
        detector = WaitForGraphDetector(2)
        assert detector.on_event(w.events[0]) is None
        assert detector.num_edges == 0

    def test_timings_recorded(self):
        w = Weaver(2)
        w.send(0, text="to1")
        detector = WaitForGraphDetector(2)
        detector.on_event(w.events[0])
        assert len(detector.timings) == 1


class TestTimestampRace:
    def test_detects_concurrent_sends_to_same_receiver(self):
        w = Weaver(3)
        s1 = w.send(0)
        s2 = w.send(1)
        r1 = w.recv(2, s1)
        r2 = w.recv(2, s2)
        detector = TimestampRaceDetector(3)
        found = []
        for e in w.events:
            found.extend(detector.on_event(e))
        assert len(found) == 1
        assert {found[0].first_send, found[0].second_send} == {
            s1.event_id,
            s2.event_id,
        }

    def test_ordered_sends_do_not_race(self):
        w = Weaver(3)
        s1 = w.send(0)
        r1 = w.recv(1, s1)
        s2 = w.send(1)  # causally after s1
        r2 = w.recv(2, s2)
        s3 = w.send(0)
        detector = TimestampRaceDetector(3)
        found = []
        for e in w.events:
            found.extend(detector.on_event(e))
        assert found == []

    def test_history_size_grows(self):
        w = Weaver(3)
        pairs = [w.message(0, 2), w.message(1, 2)]
        detector = TimestampRaceDetector(3)
        for e in w.events:
            detector.on_event(e)
        assert detector.history_size == 2


class TestConflictGraph:
    def test_overlapping_sections_reported(self):
        w = Weaver(2)
        acq0 = w.local(0, "Acquire")
        acq1 = w.local(1, "Acquire")  # concurrent with section 0
        rel0 = w.local(0, "Release")
        detector = ConflictGraphDetector(2)
        found = []
        for e in w.events:
            found.extend(detector.on_event(e))
        assert len(found) == 1

    def test_serial_sections_not_reported(self):
        w = Weaver(2)
        acq0 = w.local(0, "Acquire")
        rel0 = w.send(0, etype="Release")
        handoff = w.recv(1, rel0, etype="Handoff")
        acq1 = w.local(1, "Acquire")
        detector = ConflictGraphDetector(2)
        found = []
        for e in w.events:
            found.extend(detector.on_event(e))
        assert found == []

    def test_same_trace_sections_never_conflict(self):
        w = Weaver(1)
        w.local(0, "Acquire")
        w.local(0, "Release")
        w.local(0, "Acquire")
        detector = ConflictGraphDetector(1)
        found = []
        for e in w.events:
            found.extend(detector.on_event(e))
        assert found == []
        assert detector.section_count == 2
