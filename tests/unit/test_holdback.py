"""Unit tests for the causal hold-back buffer."""

import pytest

from repro.core import MatcherConfig, OCEPMatcher
from repro.obs import MetricsRegistry
from repro.patterns import PatternTree, compile_pattern, parse_pattern
from repro.poet.holdback import (
    HoldbackBuffer,
    HoldbackOverflowError,
    HoldbackStallError,
)
from repro.resilience import EventUtilityScorer
from repro.testing import Weaver, random_computation

AB = "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;"


def _ab_scorer(num_traces=2):
    names = [f"P{i}" for i in range(num_traces)]
    compiled = compile_pattern(PatternTree(parse_pattern(AB), names))
    return EventUtilityScorer(
        [OCEPMatcher(compiled, num_traces, MatcherConfig())]
    )


def _stream(num_traces=3):
    w = Weaver(num_traces)
    w.local(0, "A")
    w.message(0, 1)
    w.local(1, "B")
    w.message(1, 2)
    w.local(2, "C")
    return w.events


def _buffer(num_traces=3, **kwargs):
    out = []
    buf = HoldbackBuffer(num_traces, out.append, **kwargs)
    return buf, out


class TestInOrder:
    def test_in_order_stream_passes_through(self):
        events = _stream()
        buf, out = _buffer()
        for e in events:
            assert buf.offer(e)
        assert out == events
        assert buf.pending_count == 0
        assert buf.stats()["reordered"] == 0

    def test_clock_width_validated(self):
        events = _stream()
        buf, _ = _buffer(num_traces=2)
        with pytest.raises(ValueError, match="clock width"):
            buf.offer(events[0])


class TestReordering:
    def test_deferred_event_restores_exact_order(self):
        events = _stream()
        # Hold a send back past its own receive (its causal successor).
        send_pos = next(
            i for i, e in enumerate(events) if e.partner is not None
        ) - 1
        perturbed = list(events)
        send = perturbed.pop(send_pos)
        perturbed.insert(send_pos + 1, send)

        buf, out = _buffer()
        for e in perturbed:
            assert buf.offer(e)
        assert out == events
        assert buf.pending_count == 0
        assert buf.stats()["reordered"] >= 1

    def test_arrival_order_release_among_ready(self):
        """Two concurrent events deferred together come out in the
        order they arrived, not in key order."""
        w = Weaver(2)
        a = w.local(0, "A")
        b = w.local(1, "B")
        s, r = w.message(0, 1)
        buf, out = _buffer(num_traces=2)
        # b arrives before a; both are immediately ready.
        assert buf.offer(b)
        assert buf.offer(a)
        assert buf.offer(s)
        assert buf.offer(r)
        assert out == [b, a, s, r]

    @pytest.mark.parametrize("seed", range(5))
    def test_random_streams_fully_repaired(self, seed):
        events = random_computation(seed, num_traces=3, steps=40).events
        # Defer every third event past one successor when possible is
        # fiddly by hand; instead reverse pairs, which keeps any
        # violation within the buffer's repair power only when causal —
        # so feed a worst case: completely reversed stream.
        buf, out = _buffer()
        for e in reversed(events):
            buf.offer(e)
        leftover = buf.flush()
        assert leftover == []
        # Everything was released and in *some* valid linearization.
        from repro.poet import is_linearization

        assert len(out) == len(events)
        assert is_linearization(out, 3)


class TestDuplicates:
    def test_released_duplicate_suppressed(self):
        events = _stream()
        buf, out = _buffer()
        for e in events:
            buf.offer(e)
        assert buf.offer(events[0])
        assert out == events
        assert buf.stats()["duplicates"] == 1

    def test_pending_duplicate_suppressed(self):
        w = Weaver(2)
        w.local(0, "A")
        s, r = w.message(0, 1)
        buf, out = _buffer(num_traces=2)
        events = w.events
        # r held back (s not yet released), then offered again.
        buf.offer(events[0])
        buf.offer(r)
        buf.offer(r)
        assert buf.stats()["duplicates"] == 1
        buf.offer(s)
        assert out == events


class TestOverflow:
    def _gap_stream(self):
        """A stream whose second half can never be released (the
        bridging send is withheld)."""
        w = Weaver(2)
        a = w.local(0, "A")
        s, r = w.message(0, 1)
        b = w.local(1, "B")
        return [a, s, r, b], s

    def test_raise_policy(self):
        events, dropped = self._gap_stream()
        arriving = [e for e in events if e is not dropped]
        buf, _ = _buffer(num_traces=2, capacity=1, overflow="raise")
        buf.offer(arriving[0])
        buf.offer(arriving[1])  # r: held (s missing)
        with pytest.raises(HoldbackOverflowError):
            buf.offer(arriving[2])  # b: would exceed capacity

    def test_block_policy_refuses_then_recovers(self):
        events, dropped = self._gap_stream()
        arriving = [e for e in events if e is not dropped]
        buf, out = _buffer(num_traces=2, capacity=1, overflow="block")
        assert buf.offer(arriving[0])
        assert buf.offer(arriving[1])
        assert not buf.offer(arriving[2])  # refused, caller must retry
        assert buf.offer(dropped)  # the missing predecessor arrives
        assert buf.offer(arriving[2])  # retry now succeeds
        assert out == events

    def test_block_policy_raises_via_push_interface(self):
        events, dropped = self._gap_stream()
        arriving = [e for e in events if e is not dropped]
        buf, _ = _buffer(num_traces=2, capacity=1, overflow="block")
        buf.on_event(arriving[0])
        buf.on_event(arriving[1])
        with pytest.raises(HoldbackOverflowError):
            buf.on_event(arriving[2])

    def test_shed_policy_drops_and_counts(self):
        events, dropped = self._gap_stream()
        arriving = [e for e in events if e is not dropped]
        buf, out = _buffer(num_traces=2, capacity=1, overflow="shed")
        buf.offer(arriving[0])
        buf.offer(arriving[1])
        assert buf.offer(arriving[2])  # absorbed (shed)
        assert buf.stats()["shed"] == 1
        buf.offer(dropped)
        assert arriving[2] not in out  # genuinely lost

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError, match="overflow"):
            HoldbackBuffer(2, lambda e: None, overflow="panic")

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            HoldbackBuffer(2, lambda e: None, capacity=0)


class TestUtilityShedding:
    """With a utility scorer, overflow evicts the *least useful* of
    (pending + arrival) instead of blindly dropping the arrival."""

    def test_pending_chaff_displaced_by_leaf_arrival(self):
        w = Weaver(2)
        a = w.local(0, "A")
        s, r = w.message(0, 1)  # s withheld: trace-1 tail pends
        noise = w.local(1, "Noise")
        b = w.local(1, "B")
        buf, out = _buffer(
            num_traces=2, capacity=1, overflow="shed",
            utility_scorer=_ab_scorer(),
        )
        buf.offer(a)
        buf.offer(r)             # pends (s missing): capacity now full
        assert buf.offer(noise)  # chaff loses to everything pending
        assert buf.offer(b)
        assert buf.stats()["shed"] >= 1
        assert noise not in out and noise not in buf.flush()
        # The leaf-band arrival was retained (held, awaiting repair).
        assert b in buf.flush()

    def test_leaf_pending_survives_chaff_arrival(self):
        w = Weaver(2)
        x = w.local(0, "X")  # withheld predecessor
        b = w.local(0, "B")
        noise = w.local(0, "Noise")
        buf, out = _buffer(
            num_traces=2, capacity=1, overflow="shed",
            utility_scorer=_ab_scorer(),
        )
        buf.offer(b)          # pends (x missing)
        assert buf.offer(noise)  # overflow: chaff arrival is the victim
        assert buf.stats()["shed"] == 1
        buf.offer(x)          # repair: the held leaf event drains
        assert out == [x, b]
        assert buf.pending_count == 0

    def test_band_tie_falls_on_the_arrival(self):
        w = Weaver(2)
        x = w.local(0, "X")  # withheld
        c1 = w.local(0, "Noise")
        c2 = w.local(0, "Hum")
        buf, out = _buffer(
            num_traces=2, capacity=1, overflow="shed",
            utility_scorer=_ab_scorer(),
        )
        buf.offer(c1)         # pends
        assert buf.offer(c2)  # same band: newest (arrival) dropped
        buf.offer(x)
        assert out == [x, c1]
        assert c2 not in out

    def test_shed_counter_labelled_overflow(self):
        registry = MetricsRegistry()
        w = Weaver(2)
        w.local(0, "X")  # withheld (index 0 of w.events)
        b = w.local(0, "B")
        noise = w.local(0, "Noise")
        out = []
        buf = HoldbackBuffer(
            2, out.append, capacity=1, overflow="shed",
            utility_scorer=_ab_scorer(), registry=registry,
        )
        buf.offer(b)
        buf.offer(noise)
        snapshot = {(m.name, m.labels): m.value for m in registry.metrics()}
        assert snapshot[
            ("poet_holdback_shed_total", (("reason", "overflow"),))
        ] == 1

    def test_without_scorer_arrival_still_dropped(self):
        w = Weaver(2)
        x = w.local(0, "X")  # withheld
        b = w.local(0, "B")
        noise = w.local(0, "Noise")
        buf, out = _buffer(num_traces=2, capacity=1, overflow="shed")
        buf.offer(b)
        assert buf.offer(noise)  # legacy policy: arrival absorbed
        buf.offer(x)
        assert out == [x, b]


class TestStalls:
    def _stalled_buffer(self, watermark=3, **kwargs):
        w = Weaver(2)
        a = w.local(0, "A")
        s, r = w.message(0, 1)
        fillers = [w.local(0, "F") for _ in range(watermark + 1)]
        buf, out = _buffer(
            num_traces=2, stall_watermark=watermark, **kwargs
        )
        buf.offer(a)
        buf.offer(r)  # s never arrives: permanent hole
        return buf, out, s, fillers

    def test_stall_detected_after_watermark(self):
        buf, _, s, fillers = self._stalled_buffer()
        assert not buf.stalled
        for f in fillers:
            buf.offer(f)
        assert buf.stalled
        assert buf.stats()["stalls"] == 1
        assert s.event_id in buf.missing_predecessors()

    def test_stall_raises_when_configured(self):
        buf, _, _, fillers = self._stalled_buffer(raise_on_stall=True)
        with pytest.raises(HoldbackStallError):
            for f in fillers:
                buf.offer(f)

    def test_stall_clears_on_release(self):
        buf, out, s, fillers = self._stalled_buffer()
        for f in fillers:
            buf.offer(f)
        assert buf.stalled
        buf.offer(s)  # hole filled: r and s released
        assert not buf.stalled
        assert buf.pending_count == 0
        assert buf.missing_predecessors() == []

    def test_no_watermark_means_no_detection(self):
        w = Weaver(2)
        w.local(0, "A")
        s, r = w.message(0, 1)
        buf, _ = _buffer(num_traces=2)
        buf.offer(w.events[0])
        buf.offer(r)
        for _ in range(100):
            buf.offer(r)  # duplicates keep arriving
        assert not buf.stalled


class TestInstrumentation:
    def test_registry_counters_mirror_stats(self):
        registry = MetricsRegistry()
        events = _stream()
        out = []
        buf = HoldbackBuffer(3, out.append, registry=registry)
        for e in events:
            buf.offer(e)
        buf.offer(events[0])  # one duplicate
        snapshot = {m.name: m.value for m in registry.metrics()}
        assert snapshot["poet_holdback_released_total"] == len(events)
        assert snapshot["poet_holdback_duplicates_total"] == 1
        assert snapshot["poet_holdback_pending_events"] == 0

    def test_stats_work_under_null_registry(self):
        events = _stream()
        buf, _ = _buffer()
        for e in events:
            buf.offer(e)
        stats = buf.stats()
        assert stats["released"] == len(events)
        assert stats["offers"] == len(events)
