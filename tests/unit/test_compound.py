"""Unit tests for compound events (Nichols' framework, Section III-B)."""

import pytest

from repro.events import (
    CompoundEvent,
    compound_concurrent,
    compound_precedes,
    crosses,
    disjoint,
    entangled,
    overlaps,
    strong_precedes,
    weak_precedes,
)
from repro.testing import Weaver


def _crossing_scenario():
    """Two compound events that cross: a0 -> b0 and b1 -> a1."""
    w = Weaver(2)
    a0 = w.send(0)
    b0 = w.recv(1, a0)
    b1 = w.send(1)
    a1 = w.recv(0, b1)
    return {a0, a1}, {b0, b1}


def _ordered_scenario():
    """A strictly precedes B through one message."""
    w = Weaver(2)
    a0 = w.local(0, "A")
    s = w.send(0)
    r = w.recv(1, s)
    b0 = w.local(1, "B")
    b1 = w.local(1, "B")
    return {a0, s}, {b0, b1}


def _concurrent_scenario():
    w = Weaver(2)
    a0 = w.local(0)
    a1 = w.local(0)
    b0 = w.local(1)
    b1 = w.local(1)
    return {a0, a1}, {b0, b1}


class TestSetRelations:
    def test_overlap_requires_shared_event(self):
        w = Weaver(1)
        x = w.local(0)
        y = w.local(0)
        assert overlaps({x, y}, {y})
        assert disjoint({x}, {y})

    def test_empty_compound_rejected(self):
        w = Weaver(1)
        x = w.local(0)
        with pytest.raises(ValueError):
            overlaps(set(), {x})

    def test_crosses(self):
        a, b = _crossing_scenario()
        assert crosses(a, b)
        assert crosses(b, a)

    def test_ordered_sets_do_not_cross(self):
        a, b = _ordered_scenario()
        assert not crosses(a, b)

    def test_overlapping_sets_do_not_cross(self):
        w = Weaver(2)
        s = w.send(0)
        r = w.recv(1, s)
        assert not crosses({s, r}, {r})


class TestEntanglement:
    def test_entangled_by_crossing(self):
        a, b = _crossing_scenario()
        assert entangled(a, b)

    def test_entangled_by_overlap(self):
        w = Weaver(1)
        x = w.local(0)
        y = w.local(0)
        assert entangled({x, y}, {y})

    def test_ordered_sets_not_entangled(self):
        a, b = _ordered_scenario()
        assert not entangled(a, b)


class TestPrecedence:
    def test_weak_and_strong_precedence(self):
        a, b = _ordered_scenario()
        assert weak_precedes(a, b)
        # a0 does not precede b0/b1 directly? it does via the message
        # chain only for the send; strong requires *all* pairs.
        assert strong_precedes(a, b) == all(
            x.happens_before(y) for x in a for y in b
        )

    def test_equation_two_precedence(self):
        a, b = _ordered_scenario()
        assert compound_precedes(a, b)
        assert not compound_precedes(b, a)

    def test_crossing_sets_do_not_precede(self):
        a, b = _crossing_scenario()
        assert weak_precedes(a, b)  # exists a pair
        assert not compound_precedes(a, b)  # but entangled

    def test_equation_three_concurrency(self):
        a, b = _concurrent_scenario()
        assert compound_concurrent(a, b)
        ordered_a, ordered_b = _ordered_scenario()
        assert not compound_concurrent(ordered_a, ordered_b)


class TestCompoundEventClass:
    def test_classify_is_exactly_one_of_four(self):
        scenarios = [
            _crossing_scenario(),
            _ordered_scenario(),
            _concurrent_scenario(),
        ]
        expected = ["<->", "->", "||"]
        for (a, b), relation in zip(scenarios, expected):
            assert CompoundEvent(a).classify(CompoundEvent(b)) == relation

    def test_classify_reverse_direction(self):
        a, b = _ordered_scenario()
        assert CompoundEvent(b).classify(CompoundEvent(a)) == "<-"

    def test_value_semantics(self):
        w = Weaver(1)
        x = w.local(0)
        assert CompoundEvent([x]) == CompoundEvent([x])
        assert len(CompoundEvent([x])) == 1
        assert x in CompoundEvent([x])
