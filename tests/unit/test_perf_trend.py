"""Tests for the perf-regression sentinel (``repro.analysis.perf_trend``)
and its ``ocep perf`` CLI surface."""

import json

import pytest

from repro.analysis.perf_trend import (
    TREND_FILENAME,
    TREND_SCHEMA,
    build_trend,
    collect_indicators,
    diff_trends,
    load_trend,
    write_trend,
)
from repro.cli import main


def _write_bench(directory, name, payload):
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps({"benchmark": name, **payload}))
    return path


class TestIndicatorCollection:
    def test_cost_fields_and_group_stats_extracted(self, tmp_path):
        _write_bench(tmp_path, "demo", {
            "total_seconds": 1.5,
            "noop_overhead": -0.02,
            "tolerance": 0.05,          # config, not a cost
            "events": 4000,             # count, not a cost
            "groups": {
                "10 traces": {"median": 2.5, "mean": 3.0, "n": 30},
            },
        })
        indicators = collect_indicators(tmp_path)
        assert indicators == {
            "demo/total_seconds": 1.5,
            "demo/noop_overhead": -0.02,
            "demo/10 traces/median_us": 2.5,
            "demo/10 traces/mean_us": 3.0,
        }

    def test_unreadable_and_foreign_files_skipped(self, tmp_path):
        (tmp_path / "BENCH_broken.json").write_text("{nope")
        (tmp_path / "notes.json").write_text('{"x_seconds": 9}')
        _write_bench(tmp_path, "ok", {"run_seconds": 2.0})
        assert collect_indicators(tmp_path) == {"ok/run_seconds": 2.0}

    def test_trend_file_itself_is_excluded(self, tmp_path):
        _write_bench(tmp_path, "ok", {"run_seconds": 2.0})
        write_trend(tmp_path)
        document = build_trend(tmp_path)
        assert document["sources"] == ["BENCH_ok.json"]
        assert TREND_FILENAME not in document["sources"]


class TestTrendDocument:
    def test_write_load_roundtrip(self, tmp_path):
        _write_bench(tmp_path, "ok", {"run_seconds": 2.0})
        path = write_trend(tmp_path)
        assert path.name == TREND_FILENAME
        document = load_trend(path)
        assert document["schema"] == TREND_SCHEMA
        assert document["indicators"] == {"ok/run_seconds": 2.0}

    def test_load_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": 99, "indicators": {}}')
        with pytest.raises(ValueError):
            load_trend(bad)
        worse = tmp_path / "worse.json"
        worse.write_text('{"schema": 1}')
        with pytest.raises(ValueError):
            load_trend(worse)


def _trend(**indicators):
    return {"schema": TREND_SCHEMA, "indicators": indicators}


class TestDiff:
    def test_no_regression_within_threshold(self):
        baseline = _trend(a=1.0, b=2.0)
        current = _trend(a=1.1, b=1.5)
        assert diff_trends(baseline, current, threshold=0.15) == []

    def test_positive_baseline_relative_rule(self):
        regressions = diff_trends(
            _trend(a=1.0), _trend(a=1.2), threshold=0.15
        )
        assert [r.indicator for r in regressions] == ["a"]
        assert regressions[0].ratio == pytest.approx(1.2)

    def test_negative_baseline_absolute_rule(self):
        # Overhead fractions hover around zero and can be negative; the
        # relative rule is meaningless there.
        baseline = _trend(overhead=-0.09)
        assert diff_trends(baseline, _trend(overhead=0.02), 0.15) == []
        hits = diff_trends(baseline, _trend(overhead=0.20), 0.15)
        assert [r.indicator for r in hits] == ["overhead"]
        assert hits[0].ratio is None
        # Improving (more negative) never regresses.
        assert diff_trends(baseline, _trend(overhead=-0.30), 0.15) == []

    def test_unshared_indicators_ignored(self):
        assert diff_trends(_trend(a=1.0), _trend(b=99.0), 0.15) == []

    def test_sorted_worst_first(self):
        regressions = diff_trends(
            _trend(a=1.0, b=1.0), _trend(a=1.5, b=3.0), threshold=0.15
        )
        assert [r.indicator for r in regressions] == ["b", "a"]

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            diff_trends(_trend(), _trend(), threshold=0.0)


class TestCli:
    def test_trend_then_clean_diff_exits_zero(self, tmp_path, capsys):
        _write_bench(tmp_path, "ok", {"run_seconds": 2.0})
        rc = main(["perf", "trend", "--results", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / TREND_FILENAME).exists()
        rc = main([
            "perf", "diff",
            "--baseline", str(tmp_path / TREND_FILENAME),
            "--results", str(tmp_path),
        ])
        assert rc == 0
        assert "no regressions" in capsys.readouterr().out

    def test_seeded_regression_exits_one(self, tmp_path, capsys):
        _write_bench(tmp_path, "ok", {"run_seconds": 2.0})
        baseline = write_trend(tmp_path)
        _write_bench(tmp_path, "ok", {"run_seconds": 3.0})
        rc = main([
            "perf", "diff",
            "--baseline", str(baseline),
            "--results", str(tmp_path),
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "ok/run_seconds" in out
        assert "+50.0%" in out

    def test_diff_against_explicit_current_file(self, tmp_path):
        _write_bench(tmp_path, "ok", {"run_seconds": 2.0})
        baseline = write_trend(tmp_path)
        current = tmp_path / "current.json"
        current.write_text(json.dumps(_trend(**{"ok/run_seconds": 10.0})))
        rc = main([
            "perf", "diff",
            "--baseline", str(baseline),
            "--current", str(current),
        ])
        assert rc == 1

    def test_committed_baseline_matches_committed_benches(self, capsys):
        # The repo-tracked trend must stay in sync with the BENCH files
        # it was built from (regenerated by the CI perf-trend job).
        rc = main([
            "perf", "diff",
            "--baseline", "benchmarks/results/BENCH_trend.json",
            "--results", "benchmarks/results",
        ])
        assert rc == 0
