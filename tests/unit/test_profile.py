"""Tests for the sampling profiler (``repro.obs.profile``)."""

import threading
import time

import pytest

from repro.obs.profile import (
    OTHER_STAGE,
    STAGE_MODULES,
    SamplingProfiler,
    stage_of_stack,
)


class TestStageOfStack:
    def test_innermost_mapped_frame_wins(self):
        # Outermost first: kernel (source) calling into the matcher
        # (monitors) — the innermost mapped frame attributes the sample.
        stack = ["repro.simulation.kernel", "repro.poet.server",
                 "repro.core.matcher"]
        assert stage_of_stack(stack) == "monitors"

    def test_longest_prefix_beats_shorter(self):
        # repro.poet.holdback is under repro.poet but owns its own stage.
        assert stage_of_stack(["repro.poet.holdback"]) == "holdback"
        assert stage_of_stack(["repro.poet.server"]) == "poet"

    def test_prefix_requires_module_boundary(self):
        # repro.poet_extras must not match the repro.poet prefix.
        assert stage_of_stack(["repro.poet_extras"]) == OTHER_STAGE

    def test_unmapped_stack_is_other(self):
        assert stage_of_stack(["json", "threading"]) == OTHER_STAGE
        assert stage_of_stack([]) == OTHER_STAGE

    def test_every_pipeline_stage_is_reachable(self):
        stages = set(STAGE_MODULES.values())
        for stage in ("source", "poet", "faults", "holdback", "shedder",
                      "dispatcher", "monitors"):
            assert stage in stages


def _busy_wait(seconds):
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(100))
    return total


class TestSamplingProfiler:
    def test_samples_a_busy_loop(self):
        with SamplingProfiler(interval=0.001) as profiler:
            _busy_wait(0.2)
        assert profiler.total_samples > 10
        collapsed = profiler.collapsed()
        assert collapsed
        # Collapsed format: semicolon-joined frames, space, count.
        stack, count = collapsed[0].rsplit(" ", 1)
        assert int(count) >= 1
        assert ";" in stack
        assert any("_busy_wait" in line for line in collapsed)

    def test_stage_self_time_fractions_sum_to_one(self):
        with SamplingProfiler(interval=0.001) as profiler:
            _busy_wait(0.1)
        fractions = profiler.stage_self_time()
        assert fractions
        assert sum(fractions.values()) == pytest.approx(1.0)
        # A test-module busy loop is not pipeline code.
        assert OTHER_STAGE in fractions

    def test_report_mentions_hottest_frames(self):
        with SamplingProfiler(interval=0.001) as profiler:
            _busy_wait(0.1)
        report = profiler.report(limit=3)
        assert "stage self time" in report
        assert "hottest frames" in report

    def test_empty_profile_reports_gracefully(self):
        profiler = SamplingProfiler(interval=10.0)
        profiler.start()
        profiler.stop()
        assert profiler.total_samples == 0
        assert profiler.collapsed() == []
        assert profiler.stage_self_time() == {}
        assert "no samples" in profiler.report()

    def test_targets_an_explicit_thread(self):
        stop = threading.Event()

        def worker():
            while not stop.is_set():
                sum(range(50))

        thread = threading.Thread(target=worker)
        thread.start()
        try:
            profiler = SamplingProfiler(
                interval=0.001, target_thread_id=thread.ident
            )
            profiler.start()
            time.sleep(0.1)
            profiler.stop()
        finally:
            stop.set()
            thread.join()
        assert profiler.total_samples > 0
        assert any("worker" in line for line in profiler.collapsed())

    def test_double_start_rejected(self):
        profiler = SamplingProfiler(interval=0.01)
        profiler.start()
        try:
            with pytest.raises(RuntimeError):
                profiler.start()
        finally:
            profiler.stop()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0.0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_depth=0)
