"""Unit tests for the consistent-global-state lattice detector."""

import pytest

from repro.baselines import (
    LatticeExplosion,
    StateLatticeDetector,
    concurrent_types,
)
from repro.testing import Weaver


class TestConsistency:
    def test_fully_concurrent_traces_form_a_grid(self):
        """Two independent traces of lengths m and n have (m+1)(n+1)
        consistent cuts — the full grid lattice."""
        w = Weaver(2)
        for _ in range(3):
            w.local(0)
        for _ in range(2):
            w.local(1)
        detector = StateLatticeDetector(2)
        assert detector.count_states(w.events) == 4 * 3

    def test_message_prunes_inconsistent_cuts(self):
        """A receive cannot enter a cut before its send: the grid loses
        the cuts where it would."""
        w = Weaver(2)
        s = w.send(0)
        r = w.recv(1, s)
        detector = StateLatticeDetector(2)
        # cuts: (0,0) (1,0) (1,1) — (0,1) is inconsistent
        assert detector.count_states(w.events) == 3

    def test_totally_ordered_chain_is_linear(self):
        w = Weaver(2)
        s1 = w.send(0)
        r1 = w.recv(1, s1)
        s2 = w.send(1)
        r2 = w.recv(0, s2)
        detector = StateLatticeDetector(2)
        # a chain of 4 events: 5 cuts
        assert detector.count_states(w.events) == 5


class TestDetection:
    def test_possibly_detects_concurrent_critical_sections(self):
        w = Weaver(2)
        w.local(0, "CS")
        w.local(1, "CS")  # concurrent with the other CS
        detector = StateLatticeDetector(2)
        result = detector.detect(w.events, concurrent_types("CS"))
        assert result.satisfied
        assert result.witness == (1, 1)

    def test_serialized_sections_not_detected(self):
        w = Weaver(2)
        w.local(0, "CS")
        s = w.send(0, etype="Release")
        r = w.recv(1, s, etype="Grant")
        w.local(1, "CS")
        detector = StateLatticeDetector(2)
        result = detector.detect(w.events, concurrent_types("CS"))
        # by the time trace 1 is in CS, trace 0's frontier moved past it
        assert not result.satisfied

    def test_detection_agrees_with_vector_clock_concurrency(self):
        import random

        for seed in range(10):
            rng = random.Random(seed)
            w = Weaver(3)
            pending = []
            for _ in range(12):
                roll = rng.random()
                trace = rng.randrange(3)
                if roll < 0.4:
                    w.local(trace, rng.choice(["CS", "X"]))
                elif roll < 0.7:
                    pending.append(w.send(trace))
                elif pending:
                    send = pending.pop()
                    choices = [t for t in range(3) if t != send.trace]
                    w.recv(rng.choice(choices), send)
            cs_events = [e for e in w.events if e.etype == "CS"]
            expected = any(
                a.concurrent_with(b)
                for i, a in enumerate(cs_events)
                for b in cs_events[i + 1 :]
            )
            detector = StateLatticeDetector(3)
            result = detector.detect(w.events, concurrent_types("CS"))
            assert result.satisfied == expected, seed


class TestExplosion:
    def test_budget_raises(self):
        w = Weaver(3)
        for _ in range(8):
            for trace in range(3):
                w.local(trace)
        detector = StateLatticeDetector(3, max_states=10)
        with pytest.raises(LatticeExplosion):
            detector.count_states(w.events)

    def test_state_count_grows_exponentially_with_concurrency(self):
        counts = []
        for traces in (2, 3, 4):
            w = Weaver(traces)
            for _ in range(4):
                for trace in range(traces):
                    w.local(trace)
            detector = StateLatticeDetector(traces, max_states=None)
            counts.append(detector.count_states(w.events))
        assert counts == [25, 125, 625]  # 5^n for 4 events per trace
