"""Unit tests for monitor checkpoint/recovery."""

import json

import pytest

from repro.core.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.monitor import Monitor
from repro.testing import random_computation

AB = "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;"
ABC = (
    "A := ['', A, '']; B := ['', B, '']; C := ['', C, ''];"
    " pattern := A -> (B -> C);"
)


def _events(seed=0, steps=80, num_traces=3):
    return random_computation(
        seed, num_traces=num_traces, steps=steps
    ).events


def _monitor(source=AB, num_traces=3):
    return Monitor.from_source(
        source, [f"P{i}" for i in range(num_traces)], record_timings=False
    )


def _run(events):
    monitor = _monitor()
    for e in events:
        monitor.on_event(e)
    return monitor


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("cut_fraction", [0.25, 0.5, 0.9])
    def test_restore_and_replay_converges(self, seed, cut_fraction):
        events = _events(seed=seed)
        oracle = _run(events)

        cut = max(1, int(len(events) * cut_fraction))
        first = _monitor()
        for e in events[:cut]:
            first.on_event(e)
        state = json.loads(json.dumps(first.checkpoint()))

        recovered = _monitor()
        recovered.restore(state)
        replayed = recovered.replay_suffix(events)
        assert replayed == len(events) - cut
        assert recovered.subset.signature() == oracle.subset.signature()
        assert recovered.matcher.counters() == oracle.matcher.counters()

    def test_checkpoint_is_json_ready(self):
        events = _events()
        monitor = _run(events)
        state = monitor.checkpoint()
        assert state["format"] == CHECKPOINT_FORMAT
        json.dumps(state)  # must not raise

    def test_delivered_counts_match_stream(self):
        events = _events()
        monitor = _run(events)
        counts = monitor.delivered_counts()
        for trace in range(3):
            assert counts[trace] == sum(
                1 for e in events if e.trace == trace
            )
        assert monitor.checkpoint()["delivered"] == counts

    def test_replay_suffix_skips_delivered_prefix(self):
        events = _events()
        monitor = _run(events)
        # Replaying the whole stream over a caught-up monitor is a no-op.
        assert monitor.replay_suffix(events) == 0

    def test_restore_preserves_multileaf_state(self):
        events = _events(seed=2, steps=120)
        oracle = Monitor.from_source(
            ABC, ["P0", "P1", "P2"], record_timings=False
        )
        for e in events:
            oracle.on_event(e)
        cut = len(events) // 2
        first = Monitor.from_source(
            ABC, ["P0", "P1", "P2"], record_timings=False
        )
        for e in events[:cut]:
            first.on_event(e)
        recovered = Monitor.from_source(
            ABC, ["P0", "P1", "P2"], record_timings=False
        )
        recovered.restore(json.loads(json.dumps(first.checkpoint())))
        recovered.replay_suffix(events)
        assert recovered.subset.signature() == oracle.subset.signature()


class TestValidation:
    def test_unknown_format_rejected(self):
        state = _run(_events()).checkpoint()
        state["format"] = "ocep-checkpoint-v999"
        with pytest.raises(CheckpointError, match="format"):
            _monitor().restore(state)

    def test_trace_count_mismatch_rejected(self):
        state = _run(_events()).checkpoint()
        with pytest.raises(CheckpointError, match="traces"):
            _monitor(num_traces=4).restore(state)

    def test_leaf_count_mismatch_rejected(self):
        state = _run(_events()).checkpoint()
        with pytest.raises(CheckpointError, match="leaf"):
            _monitor(source=ABC).restore(state)

    def test_non_fresh_monitor_rejected(self):
        events = _events()
        state = _run(events).checkpoint()
        dirty = _run(events[:5])
        with pytest.raises(CheckpointError, match="fresh"):
            dirty.restore(state)

    def test_corrupt_body_rejected(self):
        state = _run(_events()).checkpoint()
        state["index"]["lengths"] = "garbage"
        with pytest.raises(CheckpointError):
            _monitor().restore(state)

    def test_missing_header_rejected(self):
        with pytest.raises(CheckpointError, match="header"):
            _monitor().restore({"index": {}})


class TestPersistence:
    def test_save_and_load(self, tmp_path):
        state = _run(_events()).checkpoint()
        path = tmp_path / "monitor.ckpt"
        save_checkpoint(path, state)
        loaded = load_checkpoint(path)
        assert loaded == json.loads(json.dumps(state))
        recovered = _monitor()
        recovered.restore(loaded)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_text("not json\n")
        with pytest.raises(CheckpointError, match="unparseable"):
            load_checkpoint(path)

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "list.ckpt"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(CheckpointError, match="object"):
            load_checkpoint(path)
