"""Unit tests for causality predicates and Lamport clocks."""

import pytest

from repro.clocks import LamportClock, Ordering, compare, concurrent, happens_before
from repro.testing import Weaver


class TestLamportClock:
    def test_starts_at_zero(self):
        assert LamportClock().time == 0

    def test_tick_increments(self):
        clock = LamportClock()
        assert clock.tick() == 1
        assert clock.tick() == 2

    def test_receive_jumps_past_sender(self):
        clock = LamportClock(start=3)
        assert clock.receive(10) == 11

    def test_receive_from_past_still_advances(self):
        clock = LamportClock(start=9)
        assert clock.receive(2) == 10

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            LamportClock(start=-1)


class TestHappensBefore:
    def test_message_creates_order(self):
        w = Weaver(2)
        send, recv = w.message(0, 1)
        assert happens_before(send.clock, 0, recv.clock, 1)
        assert not happens_before(recv.clock, 1, send.clock, 0)

    def test_same_trace_order_is_strict(self):
        w = Weaver(1)
        first = w.local(0)
        second = w.local(0)
        assert happens_before(first.clock, 0, second.clock, 0)
        assert not happens_before(second.clock, 0, first.clock, 0)
        # an event does not happen before itself
        assert not happens_before(first.clock, 0, first.clock, 0)

    def test_transitivity_through_intermediary(self):
        w = Weaver(3)
        a = w.local(0)
        s1, r1 = w.message(0, 1)
        s2, r2 = w.message(1, 2)
        c = w.local(2)
        assert happens_before(a.clock, 0, c.clock, 2)


class TestCompare:
    def test_equal_events(self):
        w = Weaver(2)
        a = w.local(0)
        assert compare(a.clock, 0, a.clock, 0) is Ordering.EQUAL

    def test_concurrent_events(self):
        w = Weaver(2)
        a = w.local(0)
        b = w.local(1)
        assert compare(a.clock, 0, b.clock, 1) is Ordering.CONCURRENT
        assert concurrent(a.clock, 0, b.clock, 1)

    def test_before_and_after_are_mirrors(self):
        w = Weaver(2)
        send, recv = w.message(0, 1)
        assert compare(send.clock, 0, recv.clock, 1) is Ordering.BEFORE
        assert compare(recv.clock, 1, send.clock, 0) is Ordering.AFTER

    def test_ordering_inverse(self):
        assert Ordering.BEFORE.inverse() is Ordering.AFTER
        assert Ordering.AFTER.inverse() is Ordering.BEFORE
        assert Ordering.CONCURRENT.inverse() is Ordering.CONCURRENT
        assert Ordering.EQUAL.inverse() is Ordering.EQUAL

    def test_paper_two_comparison_form(self):
        """a -> b <=> Va[i] <= Vb[i] for distinct events (Section III-A)."""
        w = Weaver(2)
        send, recv = w.message(0, 1)
        # the receive merges the send's own component without ticking it
        assert send.clock[0] == recv.clock[0]
        assert happens_before(send.clock, 0, recv.clock, 1)
