"""Unit tests for leaf histories (with pruning) and the representative subset."""

from repro.core import HistorySet, RepresentativeSubset
from repro.core.history import LeafHistory
from repro.testing import Weaver


class TestLeafHistory:
    def test_slice_by_position(self):
        w = Weaver(1)
        events = [w.local(0) for _ in range(5)]
        history = LeafHistory(0, 1)
        for i, e in enumerate(events):
            history.append(e, epoch=i, may_prune=False)
        assert list(history.slice(0, 2, 4)) == events[1:4]
        assert list(history.slice(0, 1, None)) == events
        assert list(history.slice(0, 6, None)) == []

    def test_earliest_latest(self):
        w = Weaver(2)
        a = w.local(0)
        b = w.local(0)
        history = LeafHistory(0, 2)
        history.append(a, epoch=0, may_prune=False)
        history.append(b, epoch=0, may_prune=False)
        assert history.earliest_on(0) is a
        assert history.latest_on(0) is b
        assert history.earliest_on(1) is None

    def test_same_epoch_prune_replaces_latest(self):
        w = Weaver(1)
        a = w.local(0)
        b = w.local(0)
        history = LeafHistory(0, 1)
        history.append(a, epoch=7, may_prune=False)
        history.append(b, epoch=7, may_prune=True)
        assert list(history.on_trace(0)) == [b]
        assert history.size == 1

    def test_epoch_change_prevents_prune(self):
        w = Weaver(1)
        a = w.local(0)
        b = w.local(0)
        history = LeafHistory(0, 1)
        history.append(a, epoch=7, may_prune=False)
        history.append(b, epoch=8, may_prune=True)
        assert list(history.on_trace(0)) == [a, b]

    def test_has_between_detects_intermediary(self):
        w = Weaver(1)
        a = w.local(0)
        x = w.local(0)
        b = w.local(0)
        history = LeafHistory(0, 1)
        for e in (a, x, b):
            history.append(e, epoch=0, may_prune=False)
        assert history.has_between(a, b)
        assert not history.has_between(x, b)

    def test_has_between_cross_trace(self):
        w = Weaver(2)
        a = w.local(0, "A")
        s1 = w.send(0)
        x = w.recv(1, s1, etype="A")
        s2 = w.send(1)
        b = w.recv(0, s2, etype="B")
        history = LeafHistory(0, 2)
        history.append(a, epoch=0, may_prune=False)
        history.append(x, epoch=0, may_prune=False)
        assert history.has_between(a, b)

    def test_traces_with_events(self):
        w = Weaver(3)
        history = LeafHistory(0, 3)
        history.append(w.local(2), epoch=0, may_prune=False)
        assert list(history.traces_with_events()) == [2]


class TestHistorySet:
    def test_prune_requires_same_leaf_last_append(self):
        w = Weaver(1)
        hs = HistorySet(num_leaves=2, num_traces=1)
        a = w.local(0)
        b = w.local(0)
        c = w.local(0)
        hs.append(0, a, prune=True)
        hs.append(1, b, prune=True)  # other leaf appended in between
        hs.append(0, c, prune=True)
        assert list(hs.leaf(0).on_trace(0)) == [a, c]

    def test_comm_epoch_blocks_prune(self):
        w = Weaver(2)
        hs = HistorySet(num_leaves=1, num_traces=2)
        a = w.local(0)
        hs.append(0, a, prune=True)
        hs.bump_comm_epoch(0)  # a send/receive occurred on trace 0
        b = w.local(0)
        hs.append(0, b, prune=True)
        assert list(hs.leaf(0).on_trace(0)) == [a, b]

    def test_consecutive_same_leaf_same_epoch_prunes(self):
        w = Weaver(1)
        hs = HistorySet(num_leaves=1, num_traces=1)
        a = w.local(0)
        b = w.local(0)
        hs.append(0, a, prune=True)
        hs.append(0, b, prune=True)
        assert list(hs.leaf(0).on_trace(0)) == [b]
        assert hs.total_size() == 1

    def test_prune_flag_off_keeps_everything(self):
        w = Weaver(1)
        hs = HistorySet(num_leaves=1, num_traces=1)
        for _ in range(5):
            hs.append(0, w.local(0), prune=False)
        assert hs.total_size() == 5


class TestRepresentativeSubset:
    def _match(self, weaver, *traces):
        return {i: weaver.local(t) for i, t in enumerate(traces)}

    def test_first_match_always_stored(self):
        w = Weaver(2)
        subset = RepresentativeSubset(num_leaves=2, num_traces=2)
        new = subset.update(self._match(w, 0, 1))
        assert new == ((0, 0), (1, 1))
        assert len(subset) == 1

    def test_redundant_match_not_stored(self):
        w = Weaver(2)
        subset = RepresentativeSubset(2, 2)
        subset.update(self._match(w, 0, 1))
        assert subset.update(self._match(w, 0, 1)) == ()
        assert len(subset) == 1

    def test_partially_new_match_stored(self):
        w = Weaver(2)
        subset = RepresentativeSubset(2, 2)
        subset.update(self._match(w, 0, 1))
        new = subset.update(self._match(w, 1, 1))
        assert new == ((0, 1),)
        assert len(subset) == 2

    def test_kn_bound_holds_under_stress(self):
        import random

        rng = random.Random(0)
        w = Weaver(4)
        subset = RepresentativeSubset(num_leaves=3, num_traces=4)
        for _ in range(500):
            match = {
                i: w.local(rng.randrange(4)) for i in range(3)
            }
            subset.update(match)
        assert subset.check_bound()
        assert len(subset) <= 3 * 4

    def test_coverage_queries(self):
        w = Weaver(2)
        subset = RepresentativeSubset(2, 2)
        subset.update(self._match(w, 0, 1))
        assert subset.is_covered(0, 0)
        assert subset.is_covered(1, 1)
        assert not subset.is_covered(0, 1)
        assert subset.covered_slots == {(0, 0), (1, 1)}

    def test_stored_match_round_trip(self):
        w = Weaver(2)
        subset = RepresentativeSubset(2, 2)
        match = self._match(w, 0, 1)
        subset.update(match)
        stored = subset.matches[0]
        assert stored.as_dict() == match


class TestTextIndex:
    def test_slice_by_text(self):
        from repro.testing import Weaver

        w = Weaver(1)
        a1 = w.local(0, "A", "x")
        a2 = w.local(0, "A", "y")
        a3 = w.local(0, "A", "x")
        history = LeafHistory(0, 1)
        for i, e in enumerate((a1, a2, a3)):
            history.append(e, epoch=i, may_prune=False)
        assert list(history.slice_by_text(0, 1, None, "x")) == [a1, a3]
        assert list(history.slice_by_text(0, 2, None, "x")) == [a3]
        assert list(history.slice_by_text(0, 1, None, "z")) == []

    def test_prune_replacement_updates_index(self):
        from repro.testing import Weaver

        w = Weaver(1)
        a1 = w.local(0, "A", "x")
        a2 = w.local(0, "A", "y")  # same epoch: replaces a1
        history = LeafHistory(0, 1)
        history.append(a1, epoch=5, may_prune=False)
        history.append(a2, epoch=5, may_prune=True)
        assert list(history.slice_by_text(0, 1, None, "x")) == []
        assert list(history.slice_by_text(0, 1, None, "y")) == [a2]


class TestSearchHints:
    def _cls(self, process, etype, text):
        from repro.patterns.ast import ClassDef
        from repro.patterns.classes import EventClass

        return EventClass.from_def(
            ClassDef(name="C", process=process, etype=etype, text=text),
            trace_names=("P0", "P1"),
        )

    def test_pinned_trace_from_exact(self):
        from repro.patterns.ast import Exact, Wildcard

        cls = self._cls(Exact("P1"), Wildcard(), Wildcard())
        assert cls.pinned_trace(None) == 1
        cls_num = self._cls(Exact("0"), Wildcard(), Wildcard())
        assert cls_num.pinned_trace(None) == 0

    def test_pinned_trace_from_bound_variable(self):
        from repro.patterns.ast import AttrVar, Wildcard

        cls = self._cls(AttrVar("p"), Wildcard(), Wildcard())
        assert cls.pinned_trace(None) is None
        assert cls.pinned_trace({}) is None
        assert cls.pinned_trace({"p": "P1"}) == 1

    def test_pinned_trace_nonexistent_name(self):
        from repro.patterns.ast import Exact, Wildcard

        cls = self._cls(Exact("P9"), Wildcard(), Wildcard())
        assert cls.pinned_trace(None) == -1

    def test_required_text(self):
        from repro.patterns.ast import AttrVar, Exact, Wildcard

        exact = self._cls(Wildcard(), Wildcard(), Exact("r1"))
        assert exact.required_text(None) == "r1"
        var = self._cls(Wildcard(), Wildcard(), AttrVar("t"))
        assert var.required_text({"t": "r2"}) == "r2"
        assert var.required_text({}) is None
        wild = self._cls(Wildcard(), Wildcard(), Wildcard())
        assert wild.required_text({"t": "r2"}) is None
