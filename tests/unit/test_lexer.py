"""Unit tests for the pattern-language tokenizer."""

import pytest

from repro.patterns import PatternParseError, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


class TestTokens:
    def test_class_definition_tokens(self):
        tokens = tokenize("Synch := [$1, Synch_Leader, $2];")
        assert [t.kind for t in tokens] == [
            TokenKind.IDENT,
            TokenKind.ASSIGN,
            TokenKind.LBRACKET,
            TokenKind.DOLLAR,
            TokenKind.COMMA,
            TokenKind.IDENT,
            TokenKind.COMMA,
            TokenKind.DOLLAR,
            TokenKind.RBRACKET,
            TokenKind.SEMI,
            TokenKind.EOF,
        ]
        assert tokens[3].value == "1"
        assert tokens[5].value == "Synch_Leader"

    def test_all_operators(self):
        assert kinds("-> || <> ~> /\\") == [
            TokenKind.PRECEDES,
            TokenKind.CONCURRENT,
            TokenKind.PARTNER,
            TokenKind.LIMITED,
            TokenKind.AND,
            TokenKind.EOF,
        ]

    def test_unicode_aliases(self):
        assert kinds("A → B ∧ C ∥ D") == [
            TokenKind.IDENT,
            TokenKind.PRECEDES,
            TokenKind.IDENT,
            TokenKind.AND,
            TokenKind.IDENT,
            TokenKind.CONCURRENT,
            TokenKind.IDENT,
            TokenKind.EOF,
        ]

    def test_strings_and_empty_string(self):
        tokens = tokenize("'hello world' ''")
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].value == "hello world"
        assert tokens[1].value == ""

    def test_comments_skipped(self):
        assert kinds("A # comment -> ||\nB") == [
            TokenKind.IDENT,
            TokenKind.IDENT,
            TokenKind.EOF,
        ]

    def test_identifier_charset(self):
        tokens = tokenize("Take_Snapshot class-A r2.d2")
        assert [t.value for t in tokens[:3]] == [
            "Take_Snapshot",
            "class-A",
            "r2.d2",
        ]


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("A\n  B")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(PatternParseError):
            tokenize("'abc")

    def test_string_across_newline(self):
        with pytest.raises(PatternParseError):
            tokenize("'abc\ndef'")

    def test_bare_dollar(self):
        with pytest.raises(PatternParseError):
            tokenize("$ ;")

    def test_unknown_character(self):
        with pytest.raises(PatternParseError) as excinfo:
            tokenize("A @ B")
        assert "(line 1, column 3)" in str(excinfo.value)
