"""Unit tests for the four case-study workload builders."""

import pytest

from repro.poet import RecordingClient
from repro.workloads import (
    atomicity_pattern,
    build_atomicity,
    build_message_race,
    build_ordering_bug,
    build_random_walk,
    deadlock_pattern,
    message_race_pattern,
    ordering_bug_pattern,
)


class TestPatternSources:
    def test_deadlock_pattern_scales_with_traces(self):
        source = deadlock_pattern(4)
        assert source.count(":=") == 5  # four classes plus the pattern
        assert "B0 || B1 || B2 || B3" in source
        with pytest.raises(ValueError):
            deadlock_pattern(1)

    def test_other_patterns_parse(self):
        from repro.patterns import parse_pattern

        for source in (
            message_race_pattern(),
            atomicity_pattern(),
            ordering_bug_pattern(),
            deadlock_pattern(5),
        ):
            parse_pattern(source)  # must not raise


class TestRandomWalk:
    def test_buggy_run_deadlocks(self):
        workload = build_random_walk(
            num_traces=4, seed=1, skip_probability=0.1, verify_delivery=True
        )
        recorder = RecordingClient()
        workload.server.connect(recorder)
        result = workload.run(max_events=20_000)
        assert result.deadlocked
        assert len(result.blocked) == 4
        blocks = [e for e in recorder.events if e.etype == "SendBlock"]
        assert blocks  # the instrumentation recorded blocked sends

    def test_clean_run_does_not_deadlock(self):
        workload = build_random_walk(
            num_traces=4, seed=1, skip_probability=0.0, buffer_capacity=8
        )
        result = workload.run(max_events=3_000)
        assert not result.deadlocked
        assert result.truncated

    def test_too_few_traces_rejected(self):
        with pytest.raises(ValueError):
            build_random_walk(num_traces=1)


class TestMessageRace:
    def test_all_messages_collected(self):
        workload = build_message_race(
            num_traces=4, seed=0, messages_per_sender=5, verify_delivery=True
        )
        recorder = RecordingClient()
        workload.server.connect(recorder)
        result = workload.run()
        assert not result.deadlocked
        handles = [e for e in recorder.events if e.etype == "Handle"]
        assert len(handles) == 15  # 3 senders x 5 messages

    def test_needs_two_senders(self):
        with pytest.raises(ValueError):
            build_message_race(num_traces=2)


class TestAtomicity:
    def test_bypasses_recorded_as_ground_truth(self):
        workload = build_atomicity(
            num_processes=3, seed=2, iterations=30, bypass_probability=0.2
        )
        result = workload.run()
        assert not result.deadlocked
        assert workload.bypasses  # with p=0.2 over 90 attempts
        assert all(0 <= pid < 3 for pid, _ in workload.bypasses)

    def test_semaphore_is_extra_trace(self):
        workload = build_atomicity(num_processes=3, seed=0)
        assert workload.num_traces == 4
        assert workload.kernel.trace_names()[-1] == "sem0"

    def test_clean_run_has_no_bypasses(self):
        workload = build_atomicity(
            num_processes=3, seed=2, iterations=10, bypass_probability=0.0
        )
        workload.run()
        assert workload.bypasses == []

    def test_needs_two_tasks(self):
        with pytest.raises(ValueError):
            build_atomicity(num_processes=1)


class TestOrderingBug:
    def test_buggy_requests_recorded(self):
        workload = build_ordering_bug(
            num_traces=4,
            seed=3,
            synchs_per_follower=5,
            bug_probability=0.5,
            verify_delivery=True,
        )
        result = workload.run()
        assert not result.deadlocked
        assert workload.buggy_requests
        assert all(r.startswith("r") for r in workload.buggy_requests)

    def test_all_requests_served(self):
        workload = build_ordering_bug(
            num_traces=3, seed=0, synchs_per_follower=4, bug_probability=0.0
        )
        recorder = RecordingClient()
        workload.server.connect(recorder)
        workload.run()
        forwards = [
            e for e in recorder.events if e.etype == "Forward_Snapshot"
        ]
        assert len(forwards) == 8  # 2 followers x 4 synchs
        applies = [e for e in recorder.events if e.etype == "Apply_Snapshot"]
        assert len(applies) == 8

    def test_needs_followers(self):
        with pytest.raises(ValueError):
            build_ordering_bug(num_traces=1)
