"""Unit tests for the traffic-light workload (the paper's §I example)."""

import pytest

from repro import Monitor
from repro.workloads import build_traffic_light, traffic_light_pattern


class TestBuild:
    def test_controller_plus_lights(self):
        workload = build_traffic_light(num_lights=3, seed=0)
        assert workload.num_traces == 4
        assert workload.controller == 0

    def test_needs_two_lights(self):
        with pytest.raises(ValueError):
            build_traffic_light(num_lights=1)

    def test_clean_run_records_no_faults(self):
        workload = build_traffic_light(
            num_lights=3, seed=0, fault_probability=0.0
        )
        workload.run()
        assert workload.faults == []


class TestDetection:
    def _monitored(self, seed, fault_probability):
        workload = build_traffic_light(
            num_lights=4,
            seed=seed,
            cycles=40,
            fault_probability=fault_probability,
            verify_delivery=True,
        )
        monitor = Monitor.from_source(
            traffic_light_pattern(), workload.kernel.trace_names()
        )
        workload.server.connect(monitor)
        result = workload.run()
        assert not result.deadlocked
        return workload, monitor

    def test_correct_sequencing_is_never_concurrent(self):
        workload, monitor = self._monitored(seed=3, fault_probability=0.0)
        assert not monitor.reports

    @pytest.mark.parametrize("seed", [0, 2, 5])
    def test_stuck_relay_detected(self, seed):
        workload, monitor = self._monitored(seed=seed, fault_probability=0.2)
        assert workload.faults
        assert monitor.reports
        for report in monitor.reports:
            g1, g2 = report.as_dict().values()
            assert g1.etype == g2.etype == "Green"
            assert g1.concurrent_with(g2)

    def test_reported_greens_include_a_fault(self):
        workload, monitor = self._monitored(seed=2, fault_probability=0.2)
        fault_texts = {f"fault@{cycle}" for _, cycle in workload.faults}
        reported_texts = {
            event.text
            for report in monitor.reports
            for event in report.as_dict().values()
        }
        assert fault_texts & reported_texts
