"""Monitor timing accounting.

Regression for the terminating-timings divergence: an event matching
*several* terminating leaves runs several searches, and the monitor
used to append a single ``terminating_timings`` entry for the whole
event, silently desynchronising ``len(terminating_timings)`` from
``matcher.searches_run``.  Timings are now recorded per search.
"""

from repro.core import MatcherConfig, Monitor
from repro.obs import MetricsRegistry
from repro.testing import Weaver

#: Both leaves match every E event, and with ``||`` both leaves are
#: terminating -> every E event triggers exactly two searches.
TWO_TERMINATING = (
    "A := ['', E, '']; B := ['', E, '']; pattern := A || B;"
)

ONE_TERMINATING = "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;"


def _concurrent_es(num_events=6):
    """E events spread over two traces with no messages — all pairs on
    different traces are concurrent, so matches exist."""
    w = Weaver(2)
    for i in range(num_events):
        w.local(i % 2, "E")
    return w


class TestTerminatingTimingsAccounting:
    def test_multi_terminating_leaf_pattern(self):
        weaver = _concurrent_es(6)
        names = ["P0", "P1"]
        monitor = Monitor.from_source(TWO_TERMINATING, names)
        for event in weaver.events:
            monitor.on_event(event)

        # every E matched both terminating leaves: two searches each
        assert monitor.matcher.searches_run == 2 * len(weaver.events)
        # the regression: one entry per search, not per event
        assert (
            len(monitor.terminating_timings) == monitor.matcher.searches_run
        )
        assert len(monitor.timings) == len(weaver.events)
        assert all(t >= 0.0 for t in monitor.terminating_timings)

    def test_single_terminating_leaf_pattern(self):
        w = Weaver(2)
        a = w.local(0, "A")
        s = w.send(0)
        w.recv(1, s)
        w.local(1, "B")
        w.local(1, "B")
        monitor = Monitor.from_source(ONE_TERMINATING, ["P0", "P1"])
        for event in w.events:
            monitor.on_event(event)
        assert monitor.matcher.searches_run == 2  # the two B events
        assert len(monitor.terminating_timings) == 2
        assert len(monitor.timings) == len(w.events)
        assert a is not None

    def test_search_latency_histogram_matches_search_count(self):
        weaver = _concurrent_es(4)
        registry = MetricsRegistry()
        monitor = Monitor.from_source(
            TWO_TERMINATING, ["P0", "P1"], registry=registry
        )
        for event in weaver.events:
            monitor.on_event(event)
        search_hist = registry.get("ocep_monitor_search_seconds")
        event_hist = registry.get("ocep_monitor_event_seconds")
        assert search_hist.count == monitor.matcher.searches_run
        assert event_hist.count == len(weaver.events)
        assert search_hist.sum <= event_hist.sum  # searches nest in events

    def test_record_timings_off_keeps_lists_empty(self):
        weaver = _concurrent_es(4)
        monitor = Monitor.from_source(
            TWO_TERMINATING, ["P0", "P1"], record_timings=False
        )
        for event in weaver.events:
            monitor.on_event(event)
        assert monitor.timings == []
        assert monitor.terminating_timings == []
        assert monitor.matcher.search_timings == []
        assert monitor.matcher.searches_run == 2 * len(weaver.events)

    def test_paranoid_config_still_accounts_correctly(self):
        weaver = _concurrent_es(6)
        monitor = Monitor.from_source(
            TWO_TERMINATING, ["P0", "P1"], config=MatcherConfig(paranoid=True)
        )
        for event in weaver.events:
            monitor.on_event(event)
        assert (
            len(monitor.terminating_timings) == monitor.matcher.searches_run
        )
