"""Unit tests for pattern compilation to pairwise constraints."""

import pytest

from repro.patterns import (
    Constraint,
    PatternError,
    PatternTree,
    compile_pattern,
    parse_pattern,
)


def compiled(source, names=("P0", "P1", "P2")):
    return compile_pattern(PatternTree(parse_pattern(source), names))


BASE = "A := ['', a, '']; B := ['', b, '']; C := ['', c, '']; D := ['', d, ''];"


class TestPairwiseDerivation:
    def test_simple_precedence(self):
        p = compiled(BASE + "pattern := A -> B;")
        assert p.constraint(0, 1) is Constraint.BEFORE
        assert p.constraint(1, 0) is Constraint.AFTER

    def test_concurrency(self):
        p = compiled(BASE + "pattern := A || B;")
        assert p.constraint(0, 1) is Constraint.CONCURRENT
        assert p.constraint(1, 0) is Constraint.CONCURRENT

    def test_partner_and_limited(self):
        p = compiled(BASE + "pattern := (A <> B) /\\ (C ~> D);")
        assert p.constraint(0, 1) is Constraint.PARTNER
        assert p.constraint(2, 3) is Constraint.LIMITED
        assert p.constraint(3, 2) is Constraint.LIMITED_REV

    def test_and_leaves_unrelated(self):
        p = compiled(BASE + "pattern := (A -> B) /\\ (C -> D);")
        assert p.constraint(0, 2) is Constraint.NONE
        assert p.constraint(1, 3) is Constraint.NONE

    def test_compound_precedence_weakens_to_not_after(self):
        p = compiled(BASE + "pattern := (A || B) -> C;")
        assert p.constraint(0, 2) is Constraint.NOT_AFTER
        assert p.constraint(1, 2) is Constraint.NOT_AFTER
        assert p.constraint(2, 0) is Constraint.NOT_BEFORE
        assert len(p.exist_checks) == 1
        check = p.exist_checks[0]
        assert set(check.left_leaves) == {0, 1}
        assert check.right_leaves == (2,)

    def test_compound_concurrency_is_pairwise(self):
        p = compiled(BASE + "pattern := (A -> B) || (C -> D);")
        for left in (0, 1):
            for right in (2, 3):
                assert p.constraint(left, right) is Constraint.CONCURRENT
        assert p.constraint(0, 1) is Constraint.BEFORE
        assert p.constraint(2, 3) is Constraint.BEFORE

    def test_chained_concurrency_is_all_pairs(self):
        p = compiled(BASE + "pattern := A || B || C;")
        assert p.constraint(0, 1) is Constraint.CONCURRENT
        assert p.constraint(0, 2) is Constraint.CONCURRENT
        assert p.constraint(1, 2) is Constraint.CONCURRENT


class TestConstraintConjunction:
    def test_variable_accumulates_compatible_constraints(self):
        p = compiled(
            "A := ['', a, '']; B := ['', b, '']; A $x;"
            "pattern := ($x -> B) /\\ ($x -> B);"
        )
        # both conjuncts give the same pair the same constraint
        assert p.constraint(0, 1) is Constraint.BEFORE

    def test_contradiction_detected(self):
        with pytest.raises(PatternError):
            compiled(
                "A := ['', a, '']; B := ['', b, '']; A $x; B $y;"
                "pattern := ($x -> $y) /\\ ($y -> $x);"
            )

    def test_before_and_concurrent_contradict(self):
        with pytest.raises(PatternError):
            compiled(
                "A := ['', a, '']; B := ['', b, '']; A $x; B $y;"
                "pattern := ($x -> $y) /\\ ($x || $y);"
            )

    def test_shared_leaf_on_both_sides_rejected(self):
        with pytest.raises(PatternError):
            compiled("A := ['', a, '']; A $x; pattern := $x -> $x;")

    def test_partner_needs_single_leaves(self):
        with pytest.raises(PatternError):
            compiled(BASE + "pattern := (A -> B) <> C;")

    def test_limited_needs_single_leaves(self):
        with pytest.raises(PatternError):
            compiled(BASE + "pattern := (A -> B) ~> C;")


class TestTerminatingLeaves:
    def test_precedence_only_sink_terminates(self):
        p = compiled(BASE + "pattern := A -> B;")
        assert p.terminating_leaves() == (1,)

    def test_concurrency_both_terminate(self):
        p = compiled(BASE + "pattern := A || B;")
        assert p.terminating_leaves() == (0, 1)

    def test_chain_is_compound_precedence(self):
        # A -> B -> C parses as (A -> B) -> C: the left side is the
        # compound {A, B}, so only the pair (A, B) is strict; C relates
        # to the compound by equation (2).  B can therefore be the last
        # event of a match.  Use explicit conjunctions for a pairwise
        # strict chain.
        p = compiled(BASE + "pattern := A -> B -> C;")
        assert p.constraint(0, 1) is Constraint.BEFORE
        assert p.constraint(0, 2) is Constraint.NOT_AFTER
        assert p.constraint(1, 2) is Constraint.NOT_AFTER
        assert p.terminating_leaves() == (1, 2)

    def test_conjunctive_chain_has_single_terminator(self):
        # a variable carries the middle event across the conjuncts
        p = compiled(BASE + "B $b; pattern := (A -> $b) /\\ ($b -> C);")
        labels = [leaf.label for leaf in p.leaves]
        assert labels == ["A#0", "$b", "C#2"]
        assert p.terminating_leaves() == (2,)

    def test_partner_does_not_block_termination(self):
        p = compiled(BASE + "pattern := A <> B;")
        assert p.terminating_leaves() == (0, 1)


class TestEvaluationOrder:
    def test_starts_at_trigger_and_covers_all(self):
        p = compiled(
            BASE + "B $b; C $c;"
            "pattern := (A -> $b) /\\ ($c -> $b) /\\ ($c -> D);"
        )
        order = p.evaluation_order(1)
        assert order[0] == 1
        assert sorted(order) == [0, 1, 2, 3]

    def test_connected_leaves_come_first(self):
        # from trigger $b, the directly constrained A and $c should come
        # before the only-indirectly-connected D
        p = compiled(
            BASE + "B $b; C $c;"
            "pattern := (A -> $b) /\\ ($c -> $b) /\\ ($c -> D);"
        )
        order = p.evaluation_order(1)
        assert set(order[1:3]) == {0, 2}
        assert order[3] == 3

    def test_order_is_cached(self):
        p = compiled(BASE + "pattern := A -> B;")
        assert p.evaluation_order(1) is p.evaluation_order(1)


class TestStaticSatisfiability:
    VARS = "A $x; B $y; C $z;"

    def test_precedence_cycle_rejected(self):
        with pytest.raises(PatternError):
            compiled(
                BASE + self.VARS
                + "pattern := ($x -> $y) /\\ ($y -> $z) /\\ ($z -> $x);"
            )

    def test_implied_precedence_vs_concurrency_rejected(self):
        with pytest.raises(PatternError):
            compiled(
                BASE + self.VARS
                + "pattern := ($x -> $y) /\\ ($y -> $z) /\\ ($x || $z);"
            )

    def test_consistent_chain_accepted(self):
        compiled(
            BASE + self.VARS
            + "pattern := ($x -> $y) /\\ ($y -> $z) /\\ ($x -> $z);"
        )

    def test_limited_counts_as_strict(self):
        with pytest.raises(PatternError):
            compiled(
                BASE + self.VARS
                + "pattern := ($x ~> $y) /\\ ($y -> $z) /\\ ($z ~> $x);"
            )

    def test_weak_cycle_is_satisfiable(self):
        # NOT_AFTER around a cycle allows all-concurrent assignments
        compiled(
            BASE + "pattern := ((A || B) -> C) /\\ (C || D);"
        )
