"""Regression and behaviour tests for back-jumping and the search budget.

The slice-conflict regression scenario is a distilled version of a bug
found by randomized testing during development: when a candidate
*slice* (not the interval) is empty, Figure-5 conflicts must be
recorded for every binding contributor — recording only interval
conflicts lets the back-jump hull prune a real match.
"""

from repro.core import MatcherConfig, OCEPMatcher, SweepMode
from repro.core.oracle import enumerate_matches
from repro.patterns import PatternTree, compile_pattern, parse_pattern
from repro.testing import Weaver


def build_matcher(source, num_traces, **config_kwargs):
    names = [f"P{i}" for i in range(num_traces)]
    compiled = compile_pattern(PatternTree(parse_pattern(source), names))
    return OCEPMatcher(compiled, num_traces, MatcherConfig(**config_kwargs))


def feed(matcher, events):
    reports = []
    for event in events:
        reports.extend(matcher.on_event(event))
    return reports


def canonical(report):
    return tuple(sorted((lid, str(e.event_id)) for lid, e in report.assignment))


class TestSliceConflictRegression:
    """Distilled from randomized seed 229: pattern (A -> B) /\\ (B || C)
    over a 2-trace computation where the newest A admits no B, and the
    back-jump from the B level must not prune the older A that does."""

    SRC = (
        "A := ['', A, '']; B := ['', B, '']; C := ['', C, ''];"
        "pattern := (A -> B) /\\ (B || C);"
    )

    def _weave(self):
        w = Weaver(2)
        s1 = w.send(0)
        r1 = w.recv(1, s1)
        s2 = w.send(1)
        s3 = w.send(0)
        s4 = w.send(0)
        c_event = w.local(0, "C")  # e0.4
        a_old = w.local(0, "A")  # e0.5: the A that admits a B
        w.local(1, "C")
        s5 = w.send(1)
        b_old = w.local(0, "B")  # e0.6
        w.recv(0, s5)
        s6 = w.send(1)
        a_new = w.recv(0, s6, etype="A")  # e0.8: newest A, admits no B
        w.recv(0, s2)
        trigger = w.local(1, "B")  # e1.6: the triggering B
        w.recv(1, s3)
        return w

    def test_backjump_keeps_the_match(self):
        w = self._weave()
        with_jump = build_matcher(
            self.SRC, 2, sweep=SweepMode.EXHAUSTIVE, prune_history=False
        )
        without_jump = build_matcher(
            self.SRC,
            2,
            sweep=SweepMode.EXHAUSTIVE,
            prune_history=False,
            backjump=False,
        )
        jump_reports = {canonical(r) for r in feed(with_jump, w.events)}
        plain_reports = {canonical(r) for r in feed(without_jump, w.events)}
        oracle = {
            tuple(sorted((lid, str(e.event_id)) for lid, e in m.items()))
            for m in enumerate_matches(with_jump.pattern, w.events)
        }
        assert oracle, "the scenario must contain a match"
        assert plain_reports == oracle
        assert jump_reports == oracle  # the regression: jump used to lose it


class TestSearchBudget:
    CONC = "A := ['', A, '']; B := ['', B, '']; pattern := A || B;"

    def _busy_weaver(self, events_per_trace=30):
        w = Weaver(2)
        for _ in range(events_per_trace):
            w.local(0, "A")
            w.local(1, "B")
        return w

    def test_tiny_budget_truncates_and_counts(self):
        w = self._busy_weaver()
        matcher = build_matcher(
            self.CONC,
            2,
            sweep=SweepMode.EXHAUSTIVE,
            prune_history=False,
            max_forward_steps=3,
        )
        feed(matcher, w.events)
        assert matcher.searches_truncated > 0

    def test_unlimited_budget_never_truncates(self):
        w = self._busy_weaver(10)
        matcher = build_matcher(
            self.CONC,
            2,
            sweep=SweepMode.EXHAUSTIVE,
            prune_history=False,
            max_forward_steps=None,
        )
        feed(matcher, w.events)
        assert matcher.searches_truncated == 0

    def test_matches_before_truncation_still_reported(self):
        w = self._busy_weaver()
        matcher = build_matcher(
            self.CONC,
            2,
            prune_history=False,
            max_forward_steps=50,
        )
        reports = feed(matcher, w.events)
        # newest-first finds a match quickly even under a small budget
        assert reports

    def test_default_budget_is_finite(self):
        assert MatcherConfig().max_forward_steps is not None


class TestSelectivityOrdering:
    def test_bound_attr_vars_pull_leaves_forward(self):
        """The ordering-bug pattern must evaluate the $r-keyed snapshot
        right after the trigger, not the unkeyed update (the difference
        between linear and quadratic search on that workload)."""
        from repro.workloads import ordering_bug_pattern

        compiled = compile_pattern(
            PatternTree(parse_pattern(ordering_bug_pattern()), ["P0", "P1"])
        )
        labels = [compiled.leaves[i].label for i in compiled.evaluation_order(3)]
        assert labels[0] == "Forward#3"
        assert labels[1] == "$Diff"  # shares $l and $r with the trigger
