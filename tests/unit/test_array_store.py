"""Unit tests for the struct-of-arrays event store."""

import pytest

from repro.clocks import EncodedClock
from repro.events import ArrayEventStore, EventId, EventStore, make_event_store
from repro.events.soa import EVENT_STORES
from repro.testing import random_computation


def _filled_store(seed=5, num_traces=4, steps=80, backend="encoded"):
    weaver = random_computation(
        seed=seed, num_traces=num_traces, steps=steps, clock_backend=backend
    )
    store = ArrayEventStore(num_traces)
    for event in weaver.events:
        store.add(event)
    return weaver, store


class TestConstruction:
    def test_layout_registry(self):
        assert EVENT_STORES == ("object", "array")
        assert isinstance(make_event_store("object", 2), EventStore)
        assert isinstance(make_event_store("array", 2), ArrayEventStore)
        with pytest.raises(ValueError, match="unknown event store"):
            make_event_store("columnar", 2)

    def test_trace_count_validation(self):
        with pytest.raises(ValueError):
            ArrayEventStore(0)
        with pytest.raises(ValueError):
            ArrayEventStore(2, trace_names=["only-one"])

    def test_default_trace_names(self):
        store = ArrayEventStore(2)
        assert store.trace(0).name == "trace-0"
        assert store.trace(1).name == "trace-1"


class TestAddValidation:
    def test_negative_trace_rejected(self):
        # List-indexing would silently wrap a negative trace to the
        # other end of the store; it must be a hard error instead.
        weaver, store = _filled_store()
        with pytest.raises(ValueError, match="out of range"):
            store.trace(-1)
        # EventId itself refuses construction with a negative trace,
        # so a wrapped lookup can never even be expressed.
        with pytest.raises(ValueError, match="trace must be >= 0"):
            store.get(EventId(trace=-1, index=1))

    def test_out_of_range_trace_rejected(self):
        _, store = _filled_store(num_traces=3)
        with pytest.raises(ValueError, match="out of range"):
            store.trace(3)
        with pytest.raises(ValueError, match="out of range"):
            store.get(EventId(trace=3, index=1))

    def test_add_validates_trace_range(self):
        weaver = random_computation(seed=0, num_traces=3, steps=10)
        store = ArrayEventStore(2)
        bad = next(e for e in weaver.events if e.trace == 2)
        with pytest.raises(ValueError, match="out of range"):
            store.add(bad)

    def test_add_validates_contiguity(self):
        weaver = random_computation(seed=0, num_traces=2, steps=10)
        store = ArrayEventStore(2)
        per_trace = [e for e in weaver.events if e.trace == 0]
        if len(per_trace) >= 2:
            store.add(per_trace[0])
            with pytest.raises(ValueError, match="expected event index"):
                store.add(per_trace[0])

    @staticmethod
    def _regressive_pair():
        """Two same-trace events whose second clock loses knowledge."""
        import dataclasses

        from repro.clocks import ClockFrame
        from repro.events import Event, EventKind

        frame = ClockFrame(3)
        good = Event(trace=1, index=1, etype="a", text="",
                     clock=frame.encode((0, 1, 5), 1), kind=EventKind.UNARY)
        bad = dataclasses.replace(
            good, index=2, etype="b", clock=frame.encode((0, 2, 3), 1)
        )
        return good, bad

    def test_add_rejects_non_dominating_clock(self):
        good, bad = self._regressive_pair()
        store = ArrayEventStore(3)
        store.add(good)
        with pytest.raises(ValueError, match="does not dominate"):
            store.add(bad)

    def test_add_batch_rejects_non_dominating_clock(self):
        good, bad = self._regressive_pair()
        store = ArrayEventStore(3)
        with pytest.raises(ValueError, match="does not dominate"):
            store.add_batch([good, bad])
        assert store.num_events == 1  # the valid prefix was kept


class TestRoundTrip:
    @pytest.mark.parametrize("backend", ["fidge", "encoded"])
    def test_materialized_events_match_originals(self, backend):
        weaver, store = _filled_store(backend=backend)
        assert store.num_events == len(weaver.events)
        for orig in weaver.events:
            got = store.get(orig.event_id)
            assert isinstance(got.clock, EncodedClock)
            assert got.clock.components == orig.clock.components
            assert (got.trace, got.index, got.etype, got.text, got.kind,
                    got.partner, got.lamport) == (
                orig.trace, orig.index, orig.etype, orig.text, orig.kind,
                orig.partner, orig.lamport)

    def test_encoded_frame_is_adopted_not_copied(self):
        weaver, store = _filled_store(backend="encoded")
        assert store.frame is weaver.clock_frame

    @pytest.mark.parametrize("backend", ["fidge", "encoded"])
    def test_add_batch_matches_scalar_adds(self, backend):
        weaver, scalar = _filled_store(backend=backend)
        batched = ArrayEventStore(scalar.num_traces)
        batched.add_batch(weaver.events)
        assert batched.num_events == scalar.num_events
        for orig in weaver.events:
            a, b = scalar.get(orig.event_id), batched.get(orig.event_id)
            assert a.clock.components == b.clock.components
            assert (a.trace, a.index, a.etype, a.text, a.kind,
                    a.partner, a.lamport) == (
                b.trace, b.index, b.etype, b.text, b.kind,
                b.partner, b.lamport)

    def test_partner_resolution(self):
        weaver, store = _filled_store()
        receives = [e for e in weaver.events if e.partner is not None]
        assert receives, "schedule should contain messages"
        for event in receives:
            partner = store.partner_of(store.get(event.event_id))
            assert partner.event_id == event.partner

    def test_iteration_groups_by_trace(self):
        weaver, store = _filled_store(num_traces=3)
        seen = list(store)
        assert len(seen) == len(store) == len(weaver.events)
        assert [e.trace for e in seen] == sorted(e.trace for e in seen)


class TestTraceView:
    def test_at_is_one_based(self):
        weaver, store = _filled_store()
        view = store.trace(0)
        if len(view):
            assert view.at(1).index == 1
            with pytest.raises(IndexError):
                view.at(0)
            with pytest.raises(IndexError):
                view.at(len(view) + 1)

    def test_last_matches_object_store(self):
        weaver, store = _filled_store()
        obj = EventStore(store.num_traces)
        for event in weaver.events:
            obj.add(event)
        for t in range(store.num_traces):
            a, b = store.trace(t).last(), obj.trace(t).last()
            if b is None:
                assert a is None
            else:
                assert a.event_id == b.event_id

    def test_least_successor_matches_object_store(self):
        weaver, store = _filled_store(steps=120)
        obj = EventStore(store.num_traces)
        for event in weaver.events:
            obj.add(event)
        for t in range(store.num_traces):
            for column in range(store.num_traces):
                limit = len(obj.trace(column)) + 2
                for value in range(1, limit):
                    assert (
                        store.trace(t).first_index_with_column_at_least(
                            column, value)
                        == obj.trace(t).first_index_with_column_at_least(
                            column, value)
                    ), (t, column, value)


class TestColumnQueries:
    def test_clock_column_matches_materialized_clocks(self):
        weaver, store = _filled_store(steps=100)
        for t in range(store.num_traces):
            for column in range(store.num_traces):
                col = list(store.clock_column(t, column))
                expect = [e.clock[column] for e in store.trace(t)]
                assert col == expect

    def test_clock_value_is_lazy(self):
        weaver, store = _filled_store()
        for event in weaver.events:
            for column in range(store.num_traces):
                assert (
                    store.clock_value(event.trace, event.index, column)
                    == event.clock[column]
                )

    def test_empty_column(self):
        store = ArrayEventStore(2)
        assert list(store.clock_column(0, 1)) == []
        assert list(store.least_successors(0, 1, [1, 2])) == [0, 0]
