"""Unit tests for the entanglement operator ``<->`` (equation (1))."""

import pytest

from repro.core import MatcherConfig, OCEPMatcher, SweepMode
from repro.core.oracle import enumerate_matches
from repro.patterns import (
    Operator,
    PatternError,
    PatternTree,
    TokenKind,
    compile_pattern,
    parse_pattern,
    tokenize,
)
from repro.testing import Weaver

SRC = (
    "A := ['', A, '']; B := ['', B, ''];"
    "pattern := (A || A) <-> (B || B);"
)


def crossing_weaver():
    """a0 -> b0 on one message chain, b1 -> a1 on another; the two
    chains are mutually concurrent — the sets cross."""
    w = Weaver(4)
    a0 = w.local(0, "A")
    s1 = w.send(0)
    b0 = w.recv(1, s1, etype="B")
    b1 = w.local(2, "B")
    s2 = w.send(2)
    a1 = w.recv(3, s2, etype="A")
    return w, (a0, a1), (b0, b1)


class TestLexingParsing:
    def test_three_char_token(self):
        tokens = tokenize("A <-> B")
        assert tokens[1].kind is TokenKind.ENTANGLED

    def test_unicode_alias(self):
        tokens = tokenize("A ↔ B")
        assert tokens[1].kind is TokenKind.ENTANGLED

    def test_not_confused_with_partner_and_precedes(self):
        kinds = [t.kind for t in tokenize("<> <-> ->")]
        assert kinds[:3] == [
            TokenKind.PARTNER,
            TokenKind.ENTANGLED,
            TokenKind.PRECEDES,
        ]

    def test_parses_to_operator(self):
        parsed = parse_pattern(
            "A := ['', a, '']; B := ['', b, ''];"
            "pattern := (A || A) <-> B;"
        )
        assert parsed.expr.op is Operator.ENTANGLED


class TestCompilation:
    def test_single_vs_single_rejected(self):
        with pytest.raises(PatternError):
            compile_pattern(
                PatternTree(
                    parse_pattern(
                        "A := ['', a, '']; B := ['', b, ''];"
                        "pattern := A <-> B;"
                    ),
                    ["P0"],
                )
            )

    def test_compound_sides_generate_check(self):
        compiled = compile_pattern(
            PatternTree(parse_pattern(SRC), ["P0", "P1", "P2", "P3"])
        )
        assert len(compiled.entangle_checks) == 1
        check = compiled.entangle_checks[0]
        assert set(check.left_leaves) == {0, 1}
        assert set(check.right_leaves) == {2, 3}


class TestMatching:
    def _matcher(self, names):
        compiled = compile_pattern(PatternTree(parse_pattern(SRC), names))
        return compiled, OCEPMatcher(
            compiled,
            len(names),
            MatcherConfig(sweep=SweepMode.EXHAUSTIVE, prune_history=False),
        )

    def test_crossing_sets_match(self):
        w, a_events, b_events = crossing_weaver()
        names = [f"P{i}" for i in range(4)]
        compiled, matcher = self._matcher(names)
        got = []
        for event in w.events:
            got.extend(matcher.on_event(event))
        oracle = enumerate_matches(compiled, w.events)
        assert len(oracle) == 4  # 2 A-orderings x 2 B-orderings
        assert {
            tuple(sorted(str(e.event_id) for e in r.as_dict().values()))
            for r in got
        } == {
            tuple(sorted(str(e.event_id) for e in m.values()))
            for m in oracle
        }

    def test_one_directional_sets_do_not_match(self):
        """a's strictly precede b's: weak precedence, not entanglement."""
        w = Weaver(4)
        a0 = w.local(0, "A")
        a1 = w.local(2, "A")
        s1 = w.send(0)
        b0 = w.recv(1, s1, etype="B")
        s2 = w.send(2)
        b1 = w.recv(3, s2, etype="B")
        names = [f"P{i}" for i in range(4)]
        compiled, matcher = self._matcher(names)
        got = []
        for event in w.events:
            got.extend(matcher.on_event(event))
        assert got == []
        assert enumerate_matches(compiled, w.events) == []

    def test_fully_concurrent_sets_do_not_match(self):
        w = Weaver(4)
        w.local(0, "A")
        w.local(1, "B")
        w.local(2, "A")
        w.local(3, "B")
        names = [f"P{i}" for i in range(4)]
        compiled, matcher = self._matcher(names)
        got = []
        for event in w.events:
            got.extend(matcher.on_event(event))
        assert got == []
