"""Unit tests for the POET substrate: server, linearization, dump/reload."""

import json

import pytest

from repro.poet import (
    CallbackClient,
    POETServer,
    RecordingClient,
    dump_events,
    is_linearization,
    linearize,
    load_events,
    replay,
)
from repro.poet.dumpfile import DumpFormatError
from repro.poet.server import DeliveryOrderError
from repro.testing import Weaver


def _sample_stream():
    w = Weaver(3)
    a = w.local(0, "A")
    s1, r1 = w.message(0, 1)
    b = w.local(1, "B")
    s2, r2 = w.message(1, 2)
    c = w.local(2, "C")
    return w, w.events


class TestServer:
    def test_collect_stores_and_forwards(self):
        _, events = _sample_stream()
        server = POETServer(3, verify=True)
        recorder = RecordingClient()
        server.connect(recorder)
        for e in events:
            server.collect(e)
        assert server.num_events == len(events)
        assert recorder.events == events

    def test_late_client_misses_prefix(self):
        _, events = _sample_stream()
        server = POETServer(3)
        server.collect(events[0])
        recorder = RecordingClient()
        server.connect(recorder)
        for e in events[1:]:
            server.collect(e)
        assert len(recorder) == len(events) - 1

    def test_disconnect_stops_delivery(self):
        _, events = _sample_stream()
        server = POETServer(3)
        recorder = RecordingClient()
        server.connect(recorder)
        server.collect(events[0])
        server.disconnect(recorder)
        server.collect(events[1])
        assert len(recorder) == 1

    def test_verify_rejects_out_of_order_delivery(self):
        _, events = _sample_stream()
        server = POETServer(3, verify=True)
        receive = next(e for e in events if e.partner is not None)
        with pytest.raises(DeliveryOrderError):
            server.collect(receive)  # its send was never delivered

    def test_callback_client(self):
        _, events = _sample_stream()
        seen = []
        server = POETServer(3)
        server.connect(CallbackClient(seen.append))
        server.collect(events[0])
        assert seen == [events[0]]

    def test_verify_rejects_same_trace_gap(self):
        """Skipping an event of a trace (index jumps 0 -> 2) is caught."""
        w = Weaver(2)
        w.local(0, "A")
        second = w.local(0, "B")
        server = POETServer(2, verify=True)
        with pytest.raises(DeliveryOrderError, match="per-trace order"):
            server.collect(second)


class TestFanOutConsistency:
    """A client raising in on_event must not corrupt server accounting."""

    class _Boom(RuntimeError):
        pass

    def _exploding_client(self, fail_on):
        """A client that raises on exactly its ``fail_on``-th delivery."""
        outer = self

        class Exploding:
            def __init__(self):
                self.seen = []
                self.offers = 0

            def on_event(self, event):
                self.offers += 1
                if self.offers == fail_on:
                    raise outer._Boom(f"client died on delivery {fail_on}")
                self.seen.append(event)

        return Exploding()

    def test_other_clients_still_receive_and_error_propagates(self):
        from repro.obs import MetricsRegistry

        _, events = _sample_stream()
        registry = MetricsRegistry()
        server = POETServer(3, verify=True, registry=registry)
        before = RecordingClient()
        boom = self._exploding_client(fail_on=2)
        after = RecordingClient()
        server.connect(before)
        server.connect(boom)
        server.connect(after)

        server.collect(events[0])
        with pytest.raises(self._Boom):
            server.collect(events[1])
        # Every healthy client saw both events despite the failure.
        assert before.events == events[:2]
        assert after.events == events[:2]
        # The event was stored and counted exactly once...
        assert server.num_events == 2
        # ...successful deliveries and the failure are both accounted.
        assert server.delivery_errors == 1
        snapshot = {m.name: m.value for m in registry.metrics()}
        assert snapshot["poet_events_collected_total"] == 2
        assert snapshot["poet_deliveries_total"] == 5  # 3 + 2 successes
        assert snapshot["poet_delivery_errors_total"] == 1

    def test_verified_order_state_survives_client_failure(self):
        """After a client error the server can keep collecting in
        order: _delivered was advanced for the delivered event."""
        _, events = _sample_stream()
        server = POETServer(3, verify=True)
        server.connect(self._exploding_client(fail_on=1))
        with pytest.raises(self._Boom):
            server.collect(events[0])
        for e in events[1:]:
            server.collect(e)  # must not raise DeliveryOrderError
        assert server.num_events == len(events)


class TestLinearize:
    def test_weaver_stream_is_linearization(self):
        _, events = _sample_stream()
        assert is_linearization(events, 3)

    def test_swapping_message_endpoints_is_detected(self):
        _, events = _sample_stream()
        send_pos = next(
            i for i, e in enumerate(events) if e.partner is not None
        )
        swapped = list(events)
        swapped[send_pos - 1], swapped[send_pos] = (
            swapped[send_pos],
            swapped[send_pos - 1],
        )
        assert not is_linearization(swapped, 3)

    def test_linearize_shuffled_events(self):
        _, events = _sample_stream()
        shuffled = list(reversed(events))
        ordered = linearize(shuffled)
        assert is_linearization(ordered, 3)
        assert sorted(ordered, key=id) == sorted(events, key=id)

    def test_wrong_width_rejected(self):
        _, events = _sample_stream()
        assert not is_linearization(events, 2)
        assert not is_linearization(events, 4)

    def test_same_trace_gap_rejected(self):
        """Omitting one event of a trace breaks the per-trace count."""
        w = Weaver(2)
        w.local(0, "A")
        w.local(0, "B")
        w.local(0, "C")
        gapped = [w.events[0], w.events[2]]  # B missing
        assert not is_linearization(gapped, 2)

    def test_cross_trace_premature_delivery_rejected(self):
        """A receive delivered before its send violates happens-before
        even though every per-trace sequence stays contiguous."""
        w = Weaver(2)
        s, r = w.message(0, 1)
        assert is_linearization([s, r], 2)
        assert not is_linearization([r, s], 2)

    def test_empty_stream_is_trivially_linear(self):
        assert is_linearization([], 3)


class TestDumpReload:
    def test_round_trip(self, tmp_path):
        _, events = _sample_stream()
        path = tmp_path / "trace.poet"
        written = dump_events(path, events, 3, ["P0", "P1", "P2"])
        assert written == len(events)
        loaded, num_traces, names = load_events(path)
        assert num_traces == 3
        assert names == ["P0", "P1", "P2"]
        assert len(loaded) == len(events)
        for original, restored in zip(events, loaded):
            assert original.event_id == restored.event_id
            assert original.etype == restored.etype
            assert original.clock == restored.clock
            assert original.kind == restored.kind
            assert original.partner == restored.partner
            assert original.lamport == restored.lamport

    def test_replay_builds_server(self, tmp_path):
        _, events = _sample_stream()
        path = tmp_path / "trace.poet"
        dump_events(path, events, 3, ["P0", "P1", "P2"])
        server = replay(path, verify=True)
        assert server.num_events == len(events)

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.poet"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError):
            load_events(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.poet"
        path.write_text("")
        with pytest.raises(ValueError):
            load_events(path)


class TestDumpFormatErrors:
    """Corrupt dumps raise DumpFormatError naming file, line, field."""

    def _dump(self, tmp_path):
        _, events = _sample_stream()
        path = tmp_path / "trace.poet"
        dump_events(path, events, 3, ["P0", "P1", "P2"])
        return path, path.read_text().splitlines()

    def test_broken_json_record_names_line(self, tmp_path):
        path, lines = self._dump(tmp_path)
        lines[2] = '{"t": 0, "i":'  # truncated JSON on line 3
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(DumpFormatError) as excinfo:
            load_events(path)
        assert excinfo.value.line == 3
        assert "unparseable record" in str(excinfo.value)

    def test_missing_field_names_field(self, tmp_path):
        path, lines = self._dump(tmp_path)
        record = json.loads(lines[1])
        del record["c"]
        lines[1] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(DumpFormatError) as excinfo:
            load_events(path)
        assert excinfo.value.line == 2
        assert excinfo.value.field == "c"

    def test_clock_width_mismatch_rejected(self, tmp_path):
        path, lines = self._dump(tmp_path)
        record = json.loads(lines[1])
        record["c"] = record["c"][:2]
        lines[1] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(DumpFormatError, match="clock width"):
            load_events(path)

    def test_mistyped_field_rejected(self, tmp_path):
        path, lines = self._dump(tmp_path)
        record = json.loads(lines[1])
        record["i"] = "not-an-int"
        lines[1] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(DumpFormatError) as excinfo:
            load_events(path)
        assert excinfo.value.line == 2

    def test_header_name_count_mismatch_rejected(self, tmp_path):
        path, lines = self._dump(tmp_path)
        header = json.loads(lines[0])
        header["trace_names"] = ["P0", "P1"]
        lines[0] = json.dumps(header)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(DumpFormatError) as excinfo:
            load_events(path)
        assert excinfo.value.line == 1

    def test_truncated_dump_fails_order_validation(self, tmp_path):
        path, lines = self._dump(tmp_path)
        # Drop an early record: later clocks now reference a hole.
        del lines[1]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(DumpFormatError, match="linearization"):
            load_events(path)

    def test_validate_order_false_allows_partial_dump(self, tmp_path):
        path, lines = self._dump(tmp_path)
        del lines[1]
        path.write_text("\n".join(lines) + "\n")
        events, num_traces, _ = load_events(path, validate_order=False)
        assert num_traces == 3
        assert not is_linearization(events, 3)

    def test_corrupted_dump_trips_verifying_server(self, tmp_path):
        """A causally broken stream fed to POETServer(verify=True)
        raises DeliveryOrderError (load with validation off to get the
        broken stream through)."""
        path, lines = self._dump(tmp_path)
        del lines[1]
        path.write_text("\n".join(lines) + "\n")
        events, num_traces, _ = load_events(path, validate_order=False)
        server = POETServer(num_traces, verify=True)
        with pytest.raises(DeliveryOrderError):
            for event in events:
                server.collect(event)
