"""Unit tests for the POET substrate: server, linearization, dump/reload."""

import pytest

from repro.poet import (
    CallbackClient,
    POETServer,
    RecordingClient,
    dump_events,
    is_linearization,
    linearize,
    load_events,
    replay,
)
from repro.poet.server import DeliveryOrderError
from repro.testing import Weaver


def _sample_stream():
    w = Weaver(3)
    a = w.local(0, "A")
    s1, r1 = w.message(0, 1)
    b = w.local(1, "B")
    s2, r2 = w.message(1, 2)
    c = w.local(2, "C")
    return w, w.events


class TestServer:
    def test_collect_stores_and_forwards(self):
        _, events = _sample_stream()
        server = POETServer(3, verify=True)
        recorder = RecordingClient()
        server.connect(recorder)
        for e in events:
            server.collect(e)
        assert server.num_events == len(events)
        assert recorder.events == events

    def test_late_client_misses_prefix(self):
        _, events = _sample_stream()
        server = POETServer(3)
        server.collect(events[0])
        recorder = RecordingClient()
        server.connect(recorder)
        for e in events[1:]:
            server.collect(e)
        assert len(recorder) == len(events) - 1

    def test_disconnect_stops_delivery(self):
        _, events = _sample_stream()
        server = POETServer(3)
        recorder = RecordingClient()
        server.connect(recorder)
        server.collect(events[0])
        server.disconnect(recorder)
        server.collect(events[1])
        assert len(recorder) == 1

    def test_verify_rejects_out_of_order_delivery(self):
        _, events = _sample_stream()
        server = POETServer(3, verify=True)
        receive = next(e for e in events if e.partner is not None)
        with pytest.raises(DeliveryOrderError):
            server.collect(receive)  # its send was never delivered

    def test_callback_client(self):
        _, events = _sample_stream()
        seen = []
        server = POETServer(3)
        server.connect(CallbackClient(seen.append))
        server.collect(events[0])
        assert seen == [events[0]]


class TestLinearize:
    def test_weaver_stream_is_linearization(self):
        _, events = _sample_stream()
        assert is_linearization(events, 3)

    def test_swapping_message_endpoints_is_detected(self):
        _, events = _sample_stream()
        send_pos = next(
            i for i, e in enumerate(events) if e.partner is not None
        )
        swapped = list(events)
        swapped[send_pos - 1], swapped[send_pos] = (
            swapped[send_pos],
            swapped[send_pos - 1],
        )
        assert not is_linearization(swapped, 3)

    def test_linearize_shuffled_events(self):
        _, events = _sample_stream()
        shuffled = list(reversed(events))
        ordered = linearize(shuffled)
        assert is_linearization(ordered, 3)
        assert sorted(ordered, key=id) == sorted(events, key=id)

    def test_wrong_width_rejected(self):
        _, events = _sample_stream()
        assert not is_linearization(events, 2)


class TestDumpReload:
    def test_round_trip(self, tmp_path):
        _, events = _sample_stream()
        path = tmp_path / "trace.poet"
        written = dump_events(path, events, 3, ["P0", "P1", "P2"])
        assert written == len(events)
        loaded, num_traces, names = load_events(path)
        assert num_traces == 3
        assert names == ["P0", "P1", "P2"]
        assert len(loaded) == len(events)
        for original, restored in zip(events, loaded):
            assert original.event_id == restored.event_id
            assert original.etype == restored.etype
            assert original.clock == restored.clock
            assert original.kind == restored.kind
            assert original.partner == restored.partner
            assert original.lamport == restored.lamport

    def test_replay_builds_server(self, tmp_path):
        _, events = _sample_stream()
        path = tmp_path / "trace.poet"
        dump_events(path, events, 3, ["P0", "P1", "P2"])
        server = replay(path, verify=True)
        assert server.num_events == len(events)

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.poet"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError):
            load_events(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.poet"
        path.write_text("")
        with pytest.raises(ValueError):
            load_events(path)
