"""Budget truncation: the ``max_forward_steps`` per-trigger bound.

An online monitor must bound per-event latency; a search that exhausts
its ``goForward`` budget is abandoned (``_BudgetExhausted``), counted
in ``searches_truncated``, and — crucially — whatever matches it found
*before* running out are still reported, and the next trigger starts
with a completely fresh budget.
"""

import pytest

from repro.core import MatcherConfig, OCEPMatcher
from repro.patterns import PatternTree, compile_pattern, parse_pattern
from repro.testing import Weaver

PATTERN = "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;"


def _compiled(num_traces):
    names = [f"P{i}" for i in range(num_traces)]
    return compile_pattern(PatternTree(parse_pattern(PATTERN), names))


def _stream(num_as=8, num_triggers=2):
    """A's on traces 0-2 (all happening before the B's on trace 3), so
    a triggered search sweeps three traces' worth of candidates."""
    w = Weaver(4)
    sends = []
    for trace in range(3):
        for _ in range(num_as):
            w.local(trace, "A")
        sends.append(w.send(trace))
    for send in sends:
        w.recv(3, send)
    for _ in range(num_triggers):
        w.local(3, "B")
    return w


def _run(events, budget, config_kwargs=None, trace_size=None):
    matcher = OCEPMatcher(
        _compiled(4),
        4,
        MatcherConfig(
            max_forward_steps=budget,
            search_trace_size=trace_size,
            **(config_kwargs or {}),
        ),
    )
    reports = []
    for event in events:
        reports.extend(matcher.on_event(event))
    return matcher, reports


def _truncating_budget(events, full_reports):
    """Smallest budget that still finds a match yet truncates the
    sweep — exists because the full search needs more steps than the
    first match does."""
    for budget in range(1, 400):
        matcher, reports = _run(events, budget)
        if matcher.searches_truncated and reports:
            return budget, matcher, reports
    pytest.fail("no budget both truncates and reports on this stream")


class TestBudgetTruncation:
    def test_unbudgeted_run_never_truncates(self):
        weaver = _stream(num_triggers=1)
        matcher, reports = _run(weaver.events, None)
        assert matcher.searches_truncated == 0
        assert len(reports) == 3  # one match per covered A-trace

    def test_partial_reports_still_returned(self):
        weaver = _stream(num_triggers=1)
        _, full_reports = _run(weaver.events, None)
        budget, matcher, reports = _truncating_budget(
            weaver.events, full_reports
        )
        assert matcher.searches_truncated == 1
        assert 0 < len(reports) < len(full_reports), (
            f"budget {budget} should cut the coverage sweep short "
            f"({len(reports)} vs {len(full_reports)} reports)"
        )

    def test_tiny_budget_truncates_without_reports(self):
        weaver = _stream(num_triggers=1)
        matcher, reports = _run(weaver.events, 1)
        assert matcher.searches_truncated == 1
        assert reports == []

    def test_subsequent_search_gets_fresh_budget(self):
        weaver = _stream(num_triggers=2)
        single = _stream(num_triggers=1)
        _, full_reports = _run(single.events, None)
        budget, _, _ = _truncating_budget(single.events, full_reports)

        matcher, reports = _run(weaver.events, budget)
        # Both triggers ran a search, both were truncated separately...
        assert matcher.searches_run == 2
        assert matcher.searches_truncated == 2
        # ...and the second search still found matches: had the first
        # search's exhausted budget leaked into it, it would have died
        # on its first goForward step with nothing to show.
        by_trigger = {}
        for report in reports:
            by_trigger.setdefault(report.trigger_event.event_id, []).append(
                report
            )
        assert len(by_trigger) == 2, (
            "second search reported nothing - budget not refreshed"
        )

    def test_truncation_counted_per_search(self):
        weaver = _stream(num_triggers=3)
        matcher, _ = _run(weaver.events, 1)
        assert matcher.searches_run == 3
        assert matcher.searches_truncated == 3

    def test_truncation_recorded_in_search_trace(self):
        weaver = _stream(num_triggers=1)
        matcher, _ = _run(weaver.events, 1, trace_size=128)
        tally = matcher.search_trace.tally()
        assert tally.get("truncated") == 1

    def test_large_budget_equals_unbudgeted(self):
        weaver = _stream(num_triggers=2)
        unbudgeted, full_reports = _run(weaver.events, None)
        budgeted, reports = _run(weaver.events, 100_000)
        assert budgeted.searches_truncated == 0

        def canonical(rs):
            return [
                tuple(sorted((lid, e.event_id) for lid, e in r.assignment))
                for r in rs
            ]

        assert canonical(reports) == canonical(full_reports)
