"""Unit tests for the offline (post-mortem) analyzer."""

from repro.baselines import OfflineAnalyzer
from repro.core import MatcherConfig, Monitor
from repro.poet import dump_events
from repro.testing import Weaver

AB = "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;"


def sample_stream():
    w = Weaver(3)
    w.local(0, "A")
    w.local(0, "A")
    s, r = w.message(0, 2)
    w.local(1, "A")
    s2, r2 = w.message(1, 2)
    w.local(2, "B")
    return w


class TestOfflineAnalyzer:
    def test_enumerates_all_matches(self):
        w = sample_stream()
        analyzer = OfflineAnalyzer.from_source(AB, ["P0", "P1", "P2"])
        result = analyzer.analyze(w.events)
        assert result.num_matches == 3  # two A's on P0 + one on P1
        assert result.covered == {(0, 0), (0, 1), (1, 2)}
        assert result.analysis_seconds >= 0

    def test_online_subset_covers_offline_slots(self):
        """OCEP's online subset covers exactly what the post-mortem
        pass can achieve on this stream (unpruned)."""
        w = sample_stream()
        analyzer = OfflineAnalyzer.from_source(AB, ["P0", "P1", "P2"])
        offline = analyzer.analyze(w.events)
        monitor = Monitor.from_source(
            AB, ["P0", "P1", "P2"], config=MatcherConfig(prune_history=False)
        )
        for event in w.events:
            monitor.on_event(event)
        assert monitor.subset.covered_slots == offline.covered
        # but stores fewer matches than the full enumeration
        assert len(monitor.subset) <= offline.num_matches

    def test_analyze_dump_round_trip(self, tmp_path):
        w = sample_stream()
        path = tmp_path / "run.poet"
        dump_events(path, w.events, 3, ["P0", "P1", "P2"])
        analyzer = OfflineAnalyzer.from_source(AB, ["P0", "P1", "P2"])
        from_dump = analyzer.analyze_dump(path)
        direct = analyzer.analyze(w.events)
        assert from_dump.num_matches == direct.num_matches
        assert from_dump.covered == direct.covered
