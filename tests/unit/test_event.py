"""Unit tests for the primitive-event model."""

import pytest

from repro.clocks import VectorClock
from repro.events import Event, EventId, EventKind
from repro.testing import Weaver


class TestEventId:
    def test_one_based_index_enforced(self):
        with pytest.raises(ValueError):
            EventId(trace=0, index=0)

    def test_negative_trace_rejected(self):
        with pytest.raises(ValueError):
            EventId(trace=-1, index=1)

    def test_total_order_is_lexicographic(self):
        assert EventId(0, 2) < EventId(1, 1)
        assert EventId(1, 1) < EventId(1, 2)

    def test_repr(self):
        assert repr(EventId(2, 7)) == "e2.7"


class TestEventInvariants:
    def test_clock_own_component_must_equal_index(self):
        with pytest.raises(ValueError):
            Event(
                trace=0,
                index=2,
                etype="E",
                text="",
                clock=VectorClock([1, 0]),
            )

    def test_trace_must_fit_clock_width(self):
        with pytest.raises(ValueError):
            Event(trace=2, index=1, etype="E", text="", clock=VectorClock([1, 0]))

    def test_unary_event_cannot_have_partner(self):
        with pytest.raises(ValueError):
            Event(
                trace=0,
                index=1,
                etype="E",
                text="",
                clock=VectorClock([1, 0]),
                kind=EventKind.UNARY,
                partner=EventId(1, 1),
            )

    def test_identity_is_trace_and_index(self):
        w1, w2 = Weaver(2), Weaver(2)
        a = w1.local(0, "A")
        b = w2.local(0, "B")  # different type, same position
        assert a == b
        assert hash(a) == hash(b)


class TestCausalityMethods:
    def test_happens_before_through_message(self):
        w = Weaver(2)
        a = w.local(0)
        send, recv = w.message(0, 1)
        b = w.local(1)
        assert a.happens_before(b)
        assert not b.happens_before(a)

    def test_concurrent_with(self):
        w = Weaver(2)
        a = w.local(0)
        b = w.local(1)
        assert a.concurrent_with(b)
        assert not a.concurrent_with(a)


class TestPartner:
    def test_send_receive_pair_matches_both_ways(self):
        w = Weaver(2)
        send, recv = w.message(0, 1)
        assert recv.is_partner_of(send)
        assert send.is_partner_of(recv)

    def test_unrelated_send_receive_do_not_match(self):
        w = Weaver(3)
        send1, recv1 = w.message(0, 1)
        send2, recv2 = w.message(2, 1)
        assert not recv1.is_partner_of(send2)
        assert not send1.is_partner_of(recv2)

    def test_two_sends_never_partner(self):
        w = Weaver(3)
        send1, _ = w.message(0, 1)
        send2, _ = w.message(2, 1)
        assert not send1.is_partner_of(send2)

    def test_kind_is_communication(self):
        assert EventKind.SEND.is_communication
        assert EventKind.RECEIVE.is_communication
        assert not EventKind.UNARY.is_communication
        assert not EventKind.LOCAL.is_communication
