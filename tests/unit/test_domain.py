"""Unit tests for domain restriction (Figure 4)."""

from repro.core import CausalIndex
from repro.core.domain import Interval, restrict
from repro.patterns.compile import Constraint
from repro.testing import Weaver


def build_scenario():
    """Trace 1 has five events; trace 0's event e sits causally between
    trace 1's positions 2 (GP) and 4 (LS)."""
    w = Weaver(2)
    w.local(1)  # pos 1
    s = w.send(1)  # pos 2 -- becomes GP(e, 1)
    e = w.recv(0, s)  # the anchor on trace 0
    w.local(1)  # pos 3: concurrent with e
    s_back = w.send(0)  # e's trace continues
    ls = w.recv(1, s_back)  # pos 4 -- LS(e, 1)
    w.local(1)  # pos 5: after e
    index = CausalIndex(2)
    for event in w.events:
        index.observe(event)
    return w, e, index


class TestInterval:
    def test_empty_detection(self):
        assert Interval(lo=5, hi=4).empty
        assert not Interval(lo=5, hi=5).empty
        assert not Interval(lo=5, hi=None).empty

    def test_intersect_narrows(self):
        interval = Interval()
        interval.intersect(3, 10)
        interval.intersect(5, None)
        interval.intersect(1, 8)
        assert (interval.lo, interval.hi) == (5, 8)

    def test_contains(self):
        interval = Interval(lo=2, hi=4)
        assert not interval.contains(1)
        assert interval.contains(2)
        assert interval.contains(4)
        assert not interval.contains(5)
        assert Interval(lo=2, hi=None).contains(10**9)


class TestFigureFourRows:
    def test_before_row(self):
        """e -> e_i restricts to [LS(e, l), inf)."""
        _, e, index = build_scenario()
        interval = Interval()
        assert restrict(interval, Constraint.BEFORE, e, 1, index)
        assert (interval.lo, interval.hi) == (4, None)

    def test_after_row(self):
        """e_i -> e restricts to (-inf, GP(e, l)]."""
        _, e, index = build_scenario()
        interval = Interval()
        assert restrict(interval, Constraint.AFTER, e, 1, index)
        assert (interval.lo, interval.hi) == (1, 2)

    def test_concurrent_row(self):
        """e || e_i restricts to the open interval (GP, LS)."""
        _, e, index = build_scenario()
        interval = Interval()
        assert restrict(interval, Constraint.CONCURRENT, e, 1, index)
        assert (interval.lo, interval.hi) == (3, 3)

    def test_not_after_and_not_before(self):
        _, e, index = build_scenario()
        interval = Interval()
        assert restrict(interval, Constraint.NOT_AFTER, e, 1, index)
        assert (interval.lo, interval.hi) == (3, None)
        interval = Interval()
        assert restrict(interval, Constraint.NOT_BEFORE, e, 1, index)
        assert (interval.lo, interval.hi) == (1, 3)

    def test_before_with_no_successor_is_conflict(self):
        w = Weaver(2)
        e = w.local(0)
        w.local(1)
        index = CausalIndex(2)
        for event in w.events:
            index.observe(event)
        assert not restrict(Interval(), Constraint.BEFORE, e, 1, index)

    def test_intervals_are_exact(self):
        """Every position inside the interval satisfies the relation and
        every position outside violates it."""
        w, e, index = build_scenario()
        trace1_events = [ev for ev in w.events if ev.trace == 1]
        cases = {
            Constraint.BEFORE: lambda x: e.happens_before(x),
            Constraint.AFTER: lambda x: x.happens_before(e),
            Constraint.CONCURRENT: lambda x: x.concurrent_with(e),
            Constraint.NOT_AFTER: lambda x: not x.happens_before(e),
            Constraint.NOT_BEFORE: lambda x: not e.happens_before(x),
        }
        for constraint, predicate in cases.items():
            interval = Interval()
            feasible = restrict(interval, constraint, e, 1, index)
            for event in trace1_events:
                inside = feasible and interval.contains(event.index)
                assert inside == predicate(event), (constraint, event)


class TestPartnerRestriction:
    def test_receive_pins_exact_position(self):
        w = Weaver(2)
        s = w.send(0)
        r = w.recv(1, s)
        index = CausalIndex(2)
        for event in w.events:
            index.observe(event)
        interval = Interval()
        assert restrict(interval, Constraint.PARTNER, r, 0, index)
        assert (interval.lo, interval.hi) == (s.index, s.index)

    def test_receive_on_wrong_trace_is_conflict(self):
        w = Weaver(3)
        s = w.send(0)
        r = w.recv(1, s)
        index = CausalIndex(3)
        for event in w.events:
            index.observe(event)
        assert not restrict(Interval(), Constraint.PARTNER, r, 2, index)

    def test_send_bounds_receive_below_by_ls(self):
        w = Weaver(2)
        s = w.send(0)
        r = w.recv(1, s)
        w.local(1)
        index = CausalIndex(2)
        for event in w.events:
            index.observe(event)
        interval = Interval()
        assert restrict(interval, Constraint.PARTNER, s, 1, index)
        assert interval.lo == r.index

    def test_unary_event_has_no_partner(self):
        w = Weaver(2)
        e = w.local(0)
        index = CausalIndex(2)
        index.observe(e)
        assert not restrict(Interval(), Constraint.PARTNER, e, 1, index)
