"""Unit tests for greatest-predecessor / least-successor queries."""

import pytest

from repro.core import CausalIndex
from repro.testing import Weaver


def brute_gp(events, event, trace):
    """Reference GP: latest event on ``trace`` happening before ``event``."""
    best = 0
    for other in events:
        if other.trace == trace and other.happens_before(event):
            best = max(best, other.index)
    return best


def brute_ls(events, event, trace):
    """Reference LS: earliest event on ``trace`` happening after ``event``."""
    best = None
    for other in events:
        if other.trace == trace and event.happens_before(other):
            best = other.index if best is None else min(best, other.index)
    return best


def indexed(weaver):
    index = CausalIndex(weaver.num_traces)
    for event in weaver.events:
        index.observe(event)
    return index


class TestBasicQueries:
    def test_own_trace_gp_and_ls(self):
        w = Weaver(1)
        first = w.local(0)
        second = w.local(0)
        third = w.local(0)
        index = indexed(w)
        assert index.gp(second, 0) == 1
        assert index.ls(second, 0) == 3
        assert index.gp(first, 0) == 0
        assert index.ls(third, 0) is None

    def test_remote_gp_through_message(self):
        w = Weaver(2)
        a = w.local(0)
        send, recv = w.message(0, 1)
        b = w.local(1)
        index = indexed(w)
        # GP of b on trace 0 is the send (the latest event before b)
        assert index.gp(b, 0) == send.index
        # GP of a on trace 1: nothing on trace 1 precedes a
        assert index.gp(a, 1) == 0

    def test_remote_ls_through_message(self):
        w = Weaver(2)
        a = w.local(0)
        send, recv = w.message(0, 1)
        b = w.local(1)
        index = indexed(w)
        # LS of a on trace 1 is the receive
        assert index.ls(a, 1) == recv.index
        # LS of b on trace 0: nothing on trace 0 follows b yet
        assert index.ls(b, 0) is None

    def test_ls_sharpens_as_events_arrive(self):
        w = Weaver(2)
        a = w.local(0)
        index = CausalIndex(2)
        index.observe(a)
        assert index.ls(a, 1) is None
        send, recv = w.message(0, 1)
        index.observe(send)
        index.observe(recv)
        assert index.ls(a, 1) == recv.index

    def test_observe_enforces_order(self):
        w = Weaver(1)
        w.local(0)
        second = w.local(0)
        index = CausalIndex(1)
        with pytest.raises(ValueError):
            index.observe(second)


class TestAgainstBruteForce:
    def test_random_computations(self):
        import random

        for seed in range(10):
            rng = random.Random(seed)
            w = Weaver(4)
            pending = []
            for _ in range(60):
                action = rng.random()
                trace = rng.randrange(4)
                if action < 0.4:
                    w.local(trace)
                elif action < 0.7 or not pending:
                    pending.append(w.send(trace))
                else:
                    send = pending.pop(rng.randrange(len(pending)))
                    dst = rng.choice([t for t in range(4) if t != send.trace])
                    w.recv(dst, send)
            index = indexed(w)
            for event in w.events:
                for trace in range(4):
                    assert index.gp(event, trace) == brute_gp(
                        w.events, event, trace
                    ), (seed, event)
                    assert index.ls(event, trace) == brute_ls(
                        w.events, event, trace
                    ), (seed, event)

    def test_index_size_tracks_communication_only(self):
        w = Weaver(2)
        for _ in range(50):
            w.local(0)
        index = indexed(w)
        assert index.index_size() == 0
        s, r = w.message(0, 1)
        index2 = CausalIndex(2)
        for e in w.events:
            index2.observe(e)
        assert index2.index_size() == 1  # one column increase at the receive
