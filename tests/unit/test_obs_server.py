"""Tests for the embedded scrape server (``repro.obs.server``) and the
thread-safety hardening it leans on.

The acceptance invariant lives here: a scrape taken *mid-run* over
HTTP returns parseable Prometheus text carrying per-stage series for
all seven pipeline stages, and ``/healthz`` reflects the overload
detector's state.  The concurrency suites hammer the span ring and the
detection-latency tracker from server-style reader threads while a
writer mutates them.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.engine import Pipeline
from repro.obs.export import to_prometheus
from repro.obs.latency import DetectionLatencyTracker
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, ObsServer
from repro.obs.spans import SpanTracer
from repro.obs.stages import STAGES
from repro.resilience.overload import OverloadState
from repro.testing import Weaver

from tests.unit.test_export_prometheus import parse_exposition

AB = "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;"
TRACES = ["P0", "P1", "P2"]


def _ab_stream(repeat=1):
    w = Weaver(3)
    for _ in range(repeat):
        w.local(0, "A")
        w.message(0, 2)
        w.local(2, "B")
        w.local(1, "A")
        w.message(1, 2)
        w.local(2, "B")
    return w.events


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, dict(response.headers), response.read().decode()


class TestEndpoints:
    def test_metrics_roundtrip_and_content_type(self):
        registry = MetricsRegistry()
        registry.counter("demo_total", "a demo counter").inc(3)
        with ObsServer(registry) as server:
            status, headers, body = _get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        samples, types, _ = parse_exposition(body)
        values = {name: value for name, _, value in samples}
        assert values["demo_total"] == 3
        assert types["ocep_obs_requests_total"] == "counter"

    def test_snapshot_carries_alias_entries(self):
        registry = MetricsRegistry()
        registry.counter("new_name_total", "renamed", alias="old_name")
        with ObsServer(registry) as server:
            _, _, body = _get(server.url + "/snapshot")
        metrics = {m["name"]: m for m in json.loads(body)["metrics"]}
        assert "new_name_total" in metrics
        assert metrics["old_name"]["alias_of"] == "new_name_total"

    def test_unknown_route_is_404(self):
        with ObsServer(MetricsRegistry()) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/nope")
            assert excinfo.value.code == 404

    def test_spans_limit_validation(self):
        with ObsServer(MetricsRegistry(), tracer=SpanTracer()) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/spans?limit=banana")
            assert excinfo.value.code == 400
            _, _, body = _get(server.url + "/spans?limit=2")
            assert json.loads(body)["limit"] == 2

    def test_requests_counter_counts_scrapes(self):
        registry = MetricsRegistry()
        with ObsServer(registry) as server:
            for _ in range(3):
                _get(server.url + "/metrics")
        assert registry.get("ocep_obs_requests_total").value >= 3

    def test_default_health_and_readiness(self):
        with ObsServer(MetricsRegistry()) as server:
            status, _, body = _get(server.url + "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"
            status, _, _ = _get(server.url + "/readyz")
            assert status == 200

    def test_readyz_503_before_ready(self):
        health = {"ready": False}
        server = ObsServer(MetricsRegistry(), health=lambda: dict(health))
        with server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/readyz")
            assert excinfo.value.code == 503
            health["ready"] = True
            status, _, _ = _get(server.url + "/readyz")
            assert status == 200

    def test_stop_is_idempotent_and_restartable_state(self):
        server = ObsServer(MetricsRegistry())
        server.start()
        port = server.port
        assert server.running
        server.stop()
        server.stop()
        assert not server.running
        # The last bound port stays reportable after stop (result
        # banners and cluster RESULT frames read it post-run).
        assert server.port == port
        assert port > 0


class TestMidRunScrape:
    """The acceptance criterion: scrape a *running* pipeline."""

    def _run_with_midrun_scrape(self, pipeline):
        scraped = {}

        def on_match(report):
            if "metrics" not in scraped and pipeline.obs_server is not None:
                url = pipeline.obs_server.url
                scraped["metrics"] = _get(url + "/metrics")[2]
                scraped["health"] = json.loads(_get(url + "/healthz")[2])

        pipeline.watch("ab", AB, on_match=on_match)
        result = pipeline.run()
        assert scraped, "no match fired, scrape never happened"
        return result, scraped

    def test_midrun_metrics_have_all_seven_stages(self):
        pipeline = Pipeline.replay(
            _ab_stream(repeat=40), TRACES
        ).with_server(port=0)
        result, scraped = self._run_with_midrun_scrape(pipeline)
        try:
            samples, types, helps = parse_exposition(scraped["metrics"])
            stages_seen = {
                labels["stage"]
                for name, labels, _ in samples
                if name == "ocep_stage_events_total"
            }
            assert stages_seen == set(STAGES)
            assert types["ocep_stage_latency_seconds"] == "histogram"
            assert helps["ocep_stage_events_total"]
        finally:
            result.obs_server.stop()

    def test_midrun_health_reports_running(self):
        pipeline = Pipeline.replay(
            _ab_stream(repeat=40), TRACES
        ).with_server(port=0)
        result, scraped = self._run_with_midrun_scrape(pipeline)
        try:
            health = scraped["health"]
            assert health["status"] == "ok"
            assert health["ready"] is True
            assert health["running"] is True
            assert health["events"] > 0
            assert set(health["stages"]) == set(STAGES)
        finally:
            result.obs_server.stop()

    def test_post_run_health_and_server_survives_run(self):
        pipeline = Pipeline.replay(_ab_stream(), TRACES).with_server(port=0)
        pipeline.watch("ab", AB)
        result = pipeline.run()
        try:
            assert result.obs_server.running
            health = json.loads(_get(result.obs_server.url + "/healthz")[2])
            assert health["running"] is False
            assert health["finished"] is True
            assert health["events"] == result.num_events
            # End-of-run refresh already published the probes.
            assert health["stages"]["monitors"]["events"] == result.num_events
        finally:
            result.obs_server.stop()

    def test_healthz_reflects_overload_state(self):
        pipeline = Pipeline.replay(_ab_stream(), TRACES).with_server(port=0)
        pipeline.with_overload_control()
        pipeline.watch("ab", AB)
        result = pipeline.run()
        try:
            url = result.obs_server.url
            health = json.loads(_get(url + "/healthz")[2])
            assert health["overload_state"] == "NORMAL"
            assert health["status"] == "ok"
            # Degradation is reported in the body, never as a non-200.
            pipeline.overload_detector.state = OverloadState.SHEDDING
            status, _, body = _get(url + "/healthz")
            health = json.loads(body)
            assert status == 200
            assert health["overload_state"] == "SHEDDING"
            assert health["status"] == "degraded"
        finally:
            result.obs_server.stop()

    def test_with_server_mints_registry_and_orders_watch(self):
        pipeline = Pipeline.replay(_ab_stream(), TRACES)
        assert pipeline.registry is None
        pipeline.with_server(port=0)
        assert pipeline.registry is not None and pipeline.registry.enabled
        pipeline.watch("ab", AB)
        with pytest.raises(RuntimeError):
            pipeline.with_server(port=0)
        late = Pipeline.replay(_ab_stream(), TRACES)
        late.watch("ab", AB)
        with pytest.raises(RuntimeError):
            late.with_server(port=0)


class TestEphemeralPort:
    """``port=0`` must always surface the *actual* bound port — the
    cluster workers and result banners report it, sometimes after the
    server already stopped."""

    def test_port_zero_reports_bound_port(self):
        registry = MetricsRegistry()
        with ObsServer(registry, port=0) as server:
            assert server.port != 0
            assert f":{server.port}" in server.url
            status, _, _ = _get(server.url + "/healthz")
            assert status == 200

    def test_port_and_url_survive_stop(self):
        registry = MetricsRegistry()
        server = ObsServer(registry, port=0)
        server.start()
        bound = server.port
        server.stop()
        assert server.port == bound
        assert server.url.endswith(f":{bound}")

    def test_never_started_server_has_no_port(self):
        server = ObsServer(MetricsRegistry(), port=0)
        with pytest.raises(RuntimeError, match="never started"):
            _ = server.port

    def test_wildcard_bind_renders_fetchable_url(self):
        server = ObsServer(MetricsRegistry(), host="0.0.0.0", port=0)
        server.start()
        try:
            assert server.url.startswith("http://127.0.0.1:")
            status, _, _ = _get(server.url + "/readyz")
            assert status == 200
        finally:
            server.stop()


class TestSpanRingUnderServer:
    """Regression: ``/spans`` reads must not race the pipeline writer."""

    def test_concurrent_tail_reads_while_writing(self):
        tracer = SpanTracer()
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                try:
                    tail = tracer.events_tail(32)
                    assert len(tail) <= 32
                    json.dumps(tail, default=repr)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for i in range(4000):
            tracer.instant(f"tick{i}", track="test")
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
        assert len(tracer.events_tail(16)) == 16

    def test_spans_endpoint_serves_live_tracer(self):
        tracer = SpanTracer()
        registry = MetricsRegistry()
        pipeline = Pipeline.replay(
            _ab_stream(repeat=10), TRACES, registry=registry, tracer=tracer,
        ).with_server(port=0)
        seen = {}

        def on_match(report):
            if "spans" not in seen and pipeline.obs_server is not None:
                _, _, body = _get(pipeline.obs_server.url + "/spans?limit=64")
                seen["spans"] = json.loads(body)

        pipeline.watch("ab", AB, on_match=on_match)
        result = pipeline.run()
        try:
            assert seen["spans"]["total_recorded"] > 0
            assert 0 < len(seen["spans"]["events"]) <= 64
        finally:
            result.obs_server.stop()


class _FakeEvent:
    def __init__(self, trace, index):
        self.trace = trace
        self.index = index


class _FakeReport:
    def __init__(self, events):
        self.assignment = [(leaf, event) for leaf, event in enumerate(events)]


class TestDetectionLatencyUnderConcurrentScrapes:
    def test_listener_hooks_receive_every_latency(self):
        clock = {"now": 0.0}
        tracker = DetectionLatencyTracker(clock=lambda: clock["now"],
                                          registry=MetricsRegistry())
        observed = []
        tracker.add_listener(observed.append)
        event = _FakeEvent(0, 1)
        tracker.observe_event(event)
        clock["now"] = 2.5
        tracker.observe_report(_FakeReport([event]))
        assert observed == [2.5]
        assert tracker.latencies_observed == 1

    def test_pending_gauge_tracks_retention_and_eviction(self):
        registry = MetricsRegistry()
        tracker = DetectionLatencyTracker(clock=lambda: 0.0,
                                          registry=registry, max_pending=4)
        gauge = registry.get("ocep_detection_pending_stamps")
        for index in range(10):
            tracker.observe_event(_FakeEvent(0, index))
        assert gauge.value == 4
        assert tracker.events_stamped == 4
        assert tracker.stamps_evicted == 6

    def test_eviction_while_server_snapshots_midrun(self):
        registry = MetricsRegistry()
        clock = {"now": 0.0}
        tracker = DetectionLatencyTracker(clock=lambda: clock["now"],
                                          registry=registry, max_pending=64)
        stop = threading.Event()
        errors = []

        def scraper():
            # What a /metrics + /snapshot handler does, as fast as it
            # can, while the pipeline thread stamps and evicts.
            while not stop.is_set():
                try:
                    to_prometheus(registry)
                    registry.snapshot()
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=scraper) for _ in range(3)]
        for thread in threads:
            thread.start()
        for index in range(5000):
            event = _FakeEvent(index % 7, index)
            tracker.observe_event(event)
            if index % 50 == 0:
                clock["now"] += 1.0
                tracker.observe_report(_FakeReport([event]))
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
        assert tracker.stamps_evicted > 0
        assert registry.get("ocep_detection_pending_stamps").value == 64
        assert tracker.reports_observed == 100
