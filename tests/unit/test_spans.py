"""Unit tests for the causal span tracer, detection-latency tracker,
and structured logger (the PR-3 observability layer)."""

import io
import json
import logging

import pytest

from repro.core.config import MatcherConfig
from repro.core.monitor import Monitor
from repro.obs import log as obs_log
from repro.obs.latency import (
    DETECTION_LATENCY_METRIC,
    DetectionLatencyTracker,
    track_detection_latency,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import (
    MONITOR_PID,
    NULL_TRACER,
    SIM_PID,
    NullTracer,
    SpanTracer,
    to_chrome_json,
    validate_chrome_trace,
    validate_trace_events,
)
from repro.poet.instrument import instrument
from repro.workloads import build_message_race, message_race_pattern


def run_traced_race(traces=4, max_events=1500, seed=0):
    """One message-race case with full tracing; returns useful handles."""
    workload = build_message_race(
        num_traces=traces, seed=seed, messages_per_sender=10
    )
    tracer = SpanTracer()
    registry = MetricsRegistry()
    workload.kernel.set_tracer(tracer)
    workload.server.use_registry(registry)
    workload.server.use_tracer(tracer)
    latency = track_detection_latency(workload.kernel, registry)
    monitor = Monitor.from_source(
        message_race_pattern(),
        workload.kernel.trace_names(),
        config=MatcherConfig(search_trace_size=256),
        registry=registry,
        tracer=tracer,
        on_match=latency.observe_report,
    )
    workload.server.connect(monitor)
    workload.run(max_events=max_events)
    return tracer, registry, monitor, latency


class TestSpanTracer:
    def test_span_context_manager_pairs_begin_end(self):
        tracer = SpanTracer()
        with tracer.span("outer", track="t"):
            with tracer.span("inner", track="t"):
                pass
        events = tracer.events()
        phases = [e["ph"] for e in events if e["ph"] in ("B", "E")]
        assert phases == ["B", "B", "E", "E"]
        validate_trace_events(events)

    def test_current_span_id_tracks_innermost(self):
        tracer = SpanTracer()
        assert tracer.current_span_id is None
        with tracer.span("a"):
            first = tracer.current_span_id
            with tracer.span("b"):
                assert tracer.current_span_id != first
            assert tracer.current_span_id == first
        assert tracer.current_span_id is None

    def test_end_without_begin_raises(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            tracer.end()

    def test_sim_events_bump_colliding_timestamps(self):
        tracer = SpanTracer()
        tracer.sim_track(0, "p0")
        ts1 = tracer.sim_event(0, "A", 1.0)
        ts2 = tracer.sim_event(0, "B", 1.0)  # same simulated instant
        assert ts2 > ts1
        counts = validate_trace_events(tracer.events())
        assert counts["sim_events"] == 2

    def test_sim_event_keeps_exact_time_in_args(self):
        tracer = SpanTracer()
        tracer.sim_event(0, "A", 2.5)
        tracer.sim_event(0, "B", 2.5)
        sims = [e["args"]["sim_time"] for e in tracer.events() if e["ph"] == "X"]
        assert sims == [2.5, 2.5]

    def test_flow_start_finish_validates(self):
        tracer = SpanTracer()
        ts = tracer.sim_event(0, "Send", 1.0)
        tracer.flow_start("m1", 0, 1.0, ts=ts)
        ts2 = tracer.sim_event(1, "Receive", 2.0)
        tracer.flow_finish("m1", 1, 2.0, ts=ts2)
        counts = validate_trace_events(tracer.events())
        assert counts["flows"] == 1

    def test_flow_finish_before_start_rejected(self):
        tracer = SpanTracer()
        tracer.flow_start("m1", 0, 5.0)
        tracer.flow_finish("m1", 1, 1.0)
        with pytest.raises(ValueError, match="finishes at sim_time"):
            validate_trace_events(tracer.events())

    def test_unclosed_span_rejected(self):
        tracer = SpanTracer()
        tracer.begin("leak", track="t")
        with pytest.raises(ValueError, match="unclosed"):
            validate_trace_events(tracer.events())

    def test_wall_span_stamps_sim_time_when_clock_bound(self):
        tracer = SpanTracer(sim_clock=lambda: 42.0)
        with tracer.span("s", track="t"):
            pass
        begin = next(e for e in tracer.events() if e["ph"] == "B")
        assert begin["args"]["sim_time"] == 42.0

    def test_chrome_trace_document_shape(self):
        tracer = SpanTracer()
        with tracer.span("s"):
            pass
        document = json.loads(to_chrome_json(tracer))
        assert "traceEvents" in document
        counts = validate_chrome_trace(document)
        assert counts["spans"] == 1

    def test_tracks_get_metadata_once(self):
        tracer = SpanTracer()
        tracer.sim_track(0, "p0")
        tracer.sim_track(0, "p0")
        with tracer.span("a", track="x"):
            pass
        with tracer.span("b", track="x"):
            pass
        metadata = [e for e in tracer.events() if e["ph"] == "M"]
        # process_name for each pid + one thread_name per track
        pids = {(e["pid"], e["tid"], e["name"]) for e in metadata}
        assert len(pids) == len(metadata)

    def test_instant_on_sim_track(self):
        tracer = SpanTracer()
        tracer.instant("fault", sim_time=3.0, trace=1)
        event = tracer.events()[-1]
        assert event["pid"] == SIM_PID and event["tid"] == 1

    def test_instant_on_wall_track(self):
        tracer = SpanTracer()
        tracer.instant("mark", track="chaos")
        event = tracer.events()[-1]
        assert event["pid"] == MONITOR_PID


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        tracer.sim_track(0, "p0")
        tracer.sim_event(0, "A", 1.0)
        tracer.flow_start("k", 0, 1.0)
        tracer.flow_finish("k", 1, 2.0)
        with tracer.span("s"):
            tracer.instant("i")
        assert tracer.events() == []
        assert len(tracer) == 0
        assert not tracer.enabled
        assert tracer.current_span_id is None

    def test_shared_instance_is_disabled(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.chrome_trace()["traceEvents"] == []


class TestPipelineTracing:
    def test_traced_run_validates_and_has_flows(self):
        tracer, _, _, _ = run_traced_race()
        counts = validate_trace_events(tracer.events())
        assert counts["flows"] >= 1
        assert counts["sim_events"] >= 1
        assert counts["spans"] >= 1

    def test_search_spans_match_search_trace_ordinals(self):
        tracer, _, monitor, _ = run_traced_race()
        span_searches = {
            e["args"]["search"]
            for e in tracer.events()
            if e["ph"] == "B" and e["name"] == "matcher.search"
        }
        assert len(span_searches) == monitor.matcher.searches_run
        ring_searches = {r.search for r in monitor.search_trace.records()}
        assert ring_searches <= span_searches | {0}

    def test_goforward_spans_nest_inside_search(self):
        tracer, _, _, _ = run_traced_race()
        events = tracer.events()
        matcher_tid = next(
            e["tid"] for e in events
            if e["ph"] == "M" and e.get("args", {}).get("name") == "matcher"
        )
        depth = 0
        saw_nested = False
        for e in events:
            if e.get("tid") != matcher_tid or e.get("pid") != MONITOR_PID:
                continue
            if e["ph"] == "B":
                if depth > 0 and e["name"].startswith("matcher.go"):
                    saw_nested = True
                depth += 1
            elif e["ph"] == "E":
                depth -= 1
        assert saw_nested

    def test_instrument_helper_installs_tracer(self):
        from repro.simulation.kernel import Kernel

        kernel = Kernel(num_processes=2, seed=0)
        tracer = SpanTracer()
        instrument(kernel, tracer=tracer)

        def body(p):
            yield p.emit("E")

        kernel.spawn(0, body)
        kernel.spawn(1, body)
        kernel.run(max_events=10)
        counts = validate_trace_events(tracer.events())
        assert counts["sim_events"] == 2


class TestDetectionLatency:
    def test_tracker_observes_per_assignment_event(self):
        _, registry, monitor, latency = run_traced_race()
        assert latency.reports_observed == len(monitor.reports)
        per_report = [len(r.assignment) for r in monitor.reports]
        assert latency.latencies_observed == sum(per_report)
        snapshot = {
            (m.name, m.labels): m for m in registry.metrics()
        }
        total = snapshot[(DETECTION_LATENCY_METRIC, ())]
        assert total.count == latency.latencies_observed

    def test_latencies_are_nonnegative_and_bounded_by_run(self):
        clock_value = [0.0]
        tracker = DetectionLatencyTracker(clock=lambda: clock_value[0])

        class _Event:
            trace, index = 0, 1

        class _Report:
            assignment = ((0, _Event()),)

        clock_value[0] = 1.0
        tracker.observe_event(_Event())
        clock_value[0] = 5.0
        tracker.observe_report(_Report())
        assert tracker.latencies_observed == 1

    def test_unstamped_event_contributes_zero(self):
        registry = MetricsRegistry()
        tracker = DetectionLatencyTracker(clock=lambda: 9.0, registry=registry)

        class _Event:
            trace, index = 2, 7

        class _Report:
            assignment = ((1, _Event()),)

        tracker.observe_report(_Report())
        total = next(
            m for m in registry.metrics()
            if m.name == DETECTION_LATENCY_METRIC and not m.labels
        )
        assert total.count == 1
        assert total.sum == 0.0

    def test_per_leaf_series_created(self):
        _, registry, _, latency = run_traced_race()
        leaf_series = [
            m for m in registry.metrics()
            if m.name == DETECTION_LATENCY_METRIC and m.labels
        ]
        if latency.latencies_observed:
            assert leaf_series
            assert all(
                dict(m.labels).get("leaf") is not None for m in leaf_series
            )


class TestPendingStampRetention:
    """Regression: occurrence stamps were retained forever; the
    tracker now evicts oldest-first past ``max_pending``."""

    @staticmethod
    def _event(trace, index):
        return type("_Event", (), {"trace": trace, "index": index})()

    def test_retention_bounded_and_gauge_exported(self):
        registry = MetricsRegistry()
        tracker = DetectionLatencyTracker(
            clock=lambda: 1.0, registry=registry, max_pending=4
        )
        for index in range(10):
            tracker.observe_event(self._event(0, index + 1))
        assert tracker.events_stamped == 4
        assert tracker.stamps_evicted == 6
        gauge = next(
            m for m in registry.metrics()
            if m.name == "ocep_detection_pending_stamps"
        )
        assert gauge.value == 4

    def test_evicted_stamp_contributes_zero(self):
        clock_value = [1.0]
        tracker = DetectionLatencyTracker(
            clock=lambda: clock_value[0], max_pending=1
        )
        first = self._event(0, 1)
        tracker.observe_event(first)
        tracker.observe_event(self._event(0, 2))  # evicts first's stamp
        observed = []
        tracker.add_listener(observed.append)
        clock_value[0] = 9.0
        report = type("_Report", (), {"assignment": ((0, first),)})()
        tracker.observe_report(report)
        assert observed == [0.0]

    def test_unbounded_mode_still_available(self):
        tracker = DetectionLatencyTracker(clock=lambda: 0.0, max_pending=None)
        for index in range(100_000 // 500):
            tracker.observe_event(self._event(0, index + 1))
        assert tracker.stamps_evicted == 0
        assert tracker.events_stamped == 200

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError, match="max_pending"):
            DetectionLatencyTracker(clock=lambda: 0.0, max_pending=0)

    def test_listeners_receive_every_latency(self):
        clock_value = [0.0]
        tracker = DetectionLatencyTracker(clock=lambda: clock_value[0])
        a, b = self._event(0, 1), self._event(1, 1)
        tracker.observe_event(a)
        clock_value[0] = 2.0
        tracker.observe_event(b)
        observed = []
        tracker.add_listener(observed.append)
        clock_value[0] = 5.0
        report = type(
            "_Report", (), {"assignment": ((0, a), (1, b))}
        )()
        tracker.observe_report(report)
        assert observed == [5.0, 3.0]


class TestStructuredLog:
    def test_json_lines_format(self):
        stream = io.StringIO()
        handler = obs_log.configure(stream=stream, level=logging.INFO)
        try:
            obs_log.get_logger("test.unit").info(
                "hello", extra={"detail": 42}
            )
        finally:
            obs_log.unconfigure(handler)
        record = json.loads(stream.getvalue().strip())
        assert record["msg"] == "hello"
        assert record["logger"] == "ocep.test.unit"
        assert record["level"] == "info"
        assert record["detail"] == 42

    def test_span_correlation(self):
        stream = io.StringIO()
        tracer = SpanTracer()
        handler = obs_log.configure(stream=stream, tracer=tracer)
        try:
            with tracer.span("work"):
                obs_log.get_logger("test.span").warning("inside")
            obs_log.get_logger("test.span").warning("outside")
        finally:
            obs_log.unconfigure(handler)
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert "span" in lines[0]
        assert "span" not in lines[1]

    def test_unconfigured_logging_is_silent(self, capsys):
        obs_log.get_logger("test.silent").warning("should vanish")
        captured = capsys.readouterr()
        assert "should vanish" not in captured.err
        assert "should vanish" not in captured.out

    def test_delivery_failure_logged(self):
        stream = io.StringIO()
        handler = obs_log.configure(stream=stream, level=logging.WARNING)

        class _Boom:
            def on_event(self, event):
                raise RuntimeError("boom")

        workload = build_message_race(
            num_traces=3, seed=0, messages_per_sender=2
        )
        workload.server.connect(_Boom())
        try:
            with pytest.raises(RuntimeError):
                workload.run(max_events=200)
        finally:
            obs_log.unconfigure(handler)
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert any(
            line["msg"] == "client delivery failed" and line["client"] == "_Boom"
            for line in lines
        )
