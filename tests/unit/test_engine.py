"""Unit tests for the staged pipeline engine.

Covers the case registry, the pipeline's lifecycle guard rails, the
sharded dispatcher's checkpoint document, batch/per-event delivery
identity, and the MonitorStats freshness contract (size gauges
refreshed on every delivery path and on restore; ``matches_reported``
converging after recovery).
"""

import json

import pytest

from repro.core.config import MatcherConfig
from repro.core.monitor import Monitor
from repro.engine import (
    CASE_STUDY_NAMES,
    CASES,
    CHECKPOINT_FORMAT,
    Pipeline,
    ShardedDispatcher,
    build_case,
    case_patterns,
)
from repro.obs.metrics import MetricsRegistry
from repro.testing import Weaver

AB = "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;"
BA = "B := ['', B, '']; A := ['', A, '']; pattern := B -> A;"


def _ab_stream():
    """A small three-trace stream with several A -> B matches."""
    w = Weaver(3)
    w.local(0, "A")
    w.local(1, "A")
    w.message(0, 2)
    w.local(2, "B")
    w.message(1, 2)
    w.local(2, "B")
    w.local(0, "A")
    w.message(0, 1)
    w.local(1, "B")
    return w.events


TRACES = ["P0", "P1", "P2"]


class TestCaseRegistry:
    def test_case_study_names_are_registered(self):
        for name in CASE_STUDY_NAMES:
            assert name in CASES

    def test_build_case_returns_workload_and_pattern(self):
        workload, pattern = build_case("race", traces=3, seed=1)
        assert hasattr(workload, "kernel")
        assert hasattr(workload, "server")
        assert hasattr(workload, "run")
        assert "pattern :=" in pattern

    def test_case_patterns_covers_the_four_studies(self):
        patterns = case_patterns(4)
        assert set(patterns) == set(CASE_STUDY_NAMES)

    def test_unknown_case_raises(self):
        with pytest.raises(KeyError, match="unknown case"):
            Pipeline.for_case("not-a-case")


class TestPipelineLifecycle:
    def test_runs_exactly_once(self):
        pipeline = Pipeline.replay(_ab_stream(), TRACES)
        pipeline.watch("ab", AB)
        pipeline.run()
        with pytest.raises(RuntimeError, match="runs once"):
            pipeline.run()

    def test_watch_after_run_raises(self):
        pipeline = Pipeline.replay(_ab_stream(), TRACES)
        pipeline.watch("ab", AB)
        pipeline.run()
        with pytest.raises(RuntimeError, match="missed the whole stream"):
            pipeline.watch("late", AB)

    def test_on_match_after_watch_raises(self):
        pipeline = Pipeline.replay(_ab_stream(), TRACES)
        pipeline.watch("ab", AB)
        with pytest.raises(RuntimeError, match="before the first watch"):
            pipeline.on_match(lambda name, report: None)

    def test_restore_without_shards_raises(self):
        pipeline = Pipeline.replay(_ab_stream(), TRACES)
        with pytest.raises(RuntimeError, match="watched first"):
            pipeline.restore({"format": CHECKPOINT_FORMAT, "shards": {}})

    def test_invalid_batch_size_raises(self):
        pipeline = Pipeline.replay(_ab_stream(), TRACES)
        pipeline.watch("ab", AB)
        with pytest.raises(ValueError, match="batch_size"):
            pipeline.run(batch_size=0)

    def test_duplicate_fault_and_holdback_stages_raise(self):
        from repro.resilience.faults import FaultPlan

        pipeline = Pipeline.replay(_ab_stream(), TRACES)
        pipeline.with_faults(FaultPlan(kind="none"))
        with pytest.raises(RuntimeError, match="fault stage"):
            pipeline.with_faults(FaultPlan(kind="none"))
        pipeline.with_holdback()
        with pytest.raises(RuntimeError, match="hold-back stage"):
            pipeline.with_holdback()


class TestBatchDeliveryIdentity:
    def _replay(self, batch_size):
        pipeline = Pipeline.replay(_ab_stream(), TRACES)
        monitor = pipeline.watch("ab", AB)
        pipeline.run(batch_size=batch_size)
        return pipeline, monitor

    def test_batched_equals_per_event(self):
        _, per_event = self._replay(batch_size=1)
        _, batched = self._replay(batch_size=4)
        assert per_event.reports, "the stream must contain matches"
        assert batched.reports == per_event.reports
        assert batched.subset.signature() == per_event.subset.signature()
        assert batched.stats() == per_event.stats()

    def test_batched_path_is_actually_taken(self):
        pipeline, _ = self._replay(batch_size=4)
        assert pipeline.dispatcher.batches_seen > 0
        per_event_pipeline, _ = self._replay(batch_size=1)
        assert per_event_pipeline.dispatcher.batches_seen == 0

    def test_monitor_on_batch_equals_on_event_loop(self):
        events = _ab_stream()
        one = Monitor.from_source(AB, TRACES)
        for event in events:
            one.on_event(event)
        batched = Monitor.from_source(AB, TRACES)
        batched.on_batch(events[:4])
        batched.on_batch(events[4:])
        assert batched.reports == one.reports
        assert batched.stats() == one.stats()
        assert batched.timings and len(batched.timings) == len(one.timings)


class TestDispatcherCheckpoint:
    def _run_dispatcher(self, events):
        dispatcher = ShardedDispatcher(TRACES)
        dispatcher.watch("ab", AB)
        dispatcher.watch("ba", BA)
        dispatcher.on_batch(events)
        return dispatcher

    def test_checkpoint_document_shape(self):
        dispatcher = self._run_dispatcher(_ab_stream())
        state = dispatcher.checkpoint()
        assert state["format"] == CHECKPOINT_FORMAT
        assert set(state["shards"]) == {"ab", "ba"}
        json.dumps(state)  # must be JSON-ready

    def test_restore_round_trip(self):
        events = _ab_stream()
        first = self._run_dispatcher(events[:5])
        state = json.loads(json.dumps(first.checkpoint()))

        recovered = ShardedDispatcher(TRACES)
        recovered.watch("ab", AB)
        recovered.watch("ba", BA)
        recovered.restore(state)
        recovered.on_batch(events)  # full stream; prefix is skipped

        uninterrupted = self._run_dispatcher(events)
        assert recovered.signatures() == uninterrupted.signatures()
        assert recovered.stats() == uninterrupted.stats()

    def test_restore_rejects_wrong_format(self):
        dispatcher = ShardedDispatcher(TRACES)
        dispatcher.watch("ab", AB)
        with pytest.raises(ValueError, match="not a .*checkpoint"):
            dispatcher.restore({"format": "something-else", "shards": {}})

    def test_restore_rejects_unwatched_shards(self):
        first = self._run_dispatcher(_ab_stream())
        state = first.checkpoint()
        partial = ShardedDispatcher(TRACES)
        partial.watch("ab", AB)
        with pytest.raises(ValueError, match="not watched here"):
            partial.restore(state)

    def test_pipeline_restore_single_monitor_checkpoint(self):
        events = _ab_stream()
        prefix = Monitor.from_source(AB, TRACES)
        for event in events[:5]:
            prefix.on_event(event)
        state = json.loads(json.dumps(prefix.checkpoint()))

        pipeline = Pipeline.replay(events, TRACES)
        monitor = pipeline.watch("ab", AB)
        pipeline.restore(state)
        pipeline.run()

        oracle = Monitor.from_source(AB, TRACES)
        for event in events:
            oracle.on_event(event)
        assert monitor.subset.signature() == oracle.subset.signature()
        assert monitor.stats() == oracle.stats()

    def test_pipeline_restore_single_checkpoint_needs_one_shard(self):
        prefix = Monitor.from_source(AB, TRACES)
        state = prefix.checkpoint()
        pipeline = Pipeline.replay(_ab_stream(), TRACES)
        pipeline.watch("ab", AB)
        pipeline.watch("ba", BA)
        with pytest.raises(ValueError, match="exactly one shard"):
            pipeline.restore(state)


class TestMonitorStatsFreshness:
    """Regression: subset/history gauges must be fresh on every path."""

    def _gauges(self, registry):
        subset = registry.gauge(
            "ocep_subset_matches",
            "matches stored in the representative subset",
        )
        history = registry.gauge(
            "ocep_history_events",
            "events stored across all leaf histories",
        )
        return subset, history

    def test_gauges_fresh_after_batch_delivery(self):
        registry = MetricsRegistry()
        monitor = Monitor.from_source(AB, TRACES, registry=registry)
        monitor.on_batch(_ab_stream())
        subset, history = self._gauges(registry)
        stats = monitor.stats()
        assert stats.subset_size > 0
        assert subset.value == stats.subset_size
        assert history.value == stats.history_size

    def test_gauges_fresh_after_per_event_delivery(self):
        registry = MetricsRegistry()
        monitor = Monitor.from_source(AB, TRACES, registry=registry)
        for event in _ab_stream():
            monitor.on_event(event)
        subset, history = self._gauges(registry)
        stats = monitor.stats()
        assert subset.value == stats.subset_size
        assert history.value == stats.history_size

    def test_gauges_fresh_immediately_after_restore(self):
        events = _ab_stream()
        source = Monitor.from_source(AB, TRACES)
        for event in events:
            source.on_event(event)
        state = json.loads(json.dumps(source.checkpoint()))
        assert source.stats().subset_size > 0

        registry = MetricsRegistry()
        recovered = Monitor.from_source(AB, TRACES, registry=registry)
        recovered.restore(state)
        subset, history = self._gauges(registry)
        stats = recovered.stats()
        assert stats.subset_size == source.stats().subset_size
        assert subset.value == stats.subset_size
        assert history.value == stats.history_size

    def test_matches_reported_converges_after_restore(self):
        events = _ab_stream()
        uninterrupted = Monitor.from_source(AB, TRACES)
        for event in events:
            uninterrupted.on_event(event)
        assert uninterrupted.stats().matches_reported == len(
            uninterrupted.reports
        )

        prefix = Monitor.from_source(AB, TRACES)
        for event in events[:5]:
            prefix.on_event(event)
        recovered = Monitor.from_source(AB, TRACES)
        recovered.restore(json.loads(json.dumps(prefix.checkpoint())))
        for event in events:  # full stream; restored prefix is skipped
            recovered.on_event(event)
        assert (
            recovered.stats().matches_reported
            == uninterrupted.stats().matches_reported
        )
        assert recovered.stats() == uninterrupted.stats()

    def test_skip_delivered_applies_to_batches(self):
        events = _ab_stream()
        prefix = Monitor.from_source(AB, TRACES)
        for event in events[:5]:
            prefix.on_event(event)
        recovered = Monitor.from_source(AB, TRACES)
        recovered.restore(json.loads(json.dumps(prefix.checkpoint())))
        recovered.on_batch(events)

        uninterrupted = Monitor.from_source(AB, TRACES)
        for event in events:
            uninterrupted.on_event(event)
        assert recovered.stats() == uninterrupted.stats()
        assert (
            recovered.subset.signature() == uninterrupted.subset.signature()
        )


class TestShardLabels:
    def test_shard_metrics_labelled_by_pattern(self):
        registry = MetricsRegistry()
        pipeline = Pipeline.replay(_ab_stream(), TRACES, registry=registry)
        pipeline.watch("ab", AB)
        pipeline.run()
        counter = registry.counter(
            "ocep_monitor_events_total",
            "events delivered to the monitor",
            labels={"pattern": "ab"},
        )
        assert counter.value == len(_ab_stream())


def test_matcher_config_passthrough():
    events = _ab_stream()
    pipeline = Pipeline.replay(events, TRACES)
    monitor = pipeline.watch(
        "ab", AB, config=MatcherConfig(prune_history=False)
    )
    pipeline.run()
    assert monitor.matcher.config.prune_history is False
