"""Unit tests for the seeded fault injector and transmit faults."""

import pytest

from repro.events.event import EventKind
from repro.poet import is_linearization
from repro.poet.holdback import HoldbackBuffer
from repro.resilience import FaultInjector, FaultPlan, TransmitFaults
from repro.testing import random_computation


def _events(seed=0, steps=60, num_traces=3):
    return random_computation(
        seed, num_traces=num_traces, steps=steps
    ).events


def _inject(plan, events, seed=0):
    out = []
    injector = FaultInjector(plan, out.append, seed=seed)
    for e in events:
        injector.feed(e)
    injector.flush()
    return injector, out


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultPlan(kind="gremlins")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            FaultPlan(probability=1.5)

    def test_bad_max_delay_rejected(self):
        with pytest.raises(ValueError, match="max_delay"):
            FaultPlan(max_delay=0)

    def test_crash_point_deterministic_and_in_window(self):
        plan = FaultPlan.crash(crash_window=(0.25, 0.75))
        for seed in range(20):
            point = plan.crash_point(200, seed)
            assert point == plan.crash_point(200, seed)
            assert 50 <= point < 150


class TestDeterminism:
    @pytest.mark.parametrize(
        "plan",
        [FaultPlan.reorder(), FaultPlan.delay(), FaultPlan.duplicate(),
         FaultPlan.drop(probability=0.2)],
        ids=lambda p: p.kind,
    )
    def test_same_seed_same_perturbation(self, plan):
        events = _events()
        _, first = _inject(plan, events, seed=7)
        _, second = _inject(plan, events, seed=7)
        assert [e.event_id for e in first] == [e.event_id for e in second]

    def test_different_seeds_differ(self):
        events = _events()
        _, first = _inject(FaultPlan.reorder(probability=0.3), events, seed=0)
        _, second = _inject(FaultPlan.reorder(probability=0.3), events, seed=1)
        assert [e.event_id for e in first] != [e.event_id for e in second]


class TestCausalSlack:
    """Reorder/delay must defer an event only past causal successors."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize(
        "plan", [FaultPlan.reorder(0.3), FaultPlan.delay(0.2)],
        ids=lambda p: p.kind,
    )
    def test_holdback_restores_exact_original_order(self, plan, seed):
        events = _events(seed=seed)
        injector, perturbed = _inject(plan, events, seed=seed)
        assert injector.forwarded_total == len(events)
        repaired = []
        buf = HoldbackBuffer(3, repaired.append)
        for e in perturbed:
            buf.offer(e)
        assert buf.flush() == []
        assert repaired == events  # bit-identical restoration

    def test_reorder_actually_perturbs(self):
        events = _events()
        injector, perturbed = _inject(
            FaultPlan.reorder(probability=0.5), events
        )
        assert injector.delayed_total > 0
        assert perturbed != events


class TestDuplicateAndDrop:
    def test_duplicates_are_extra_deliveries(self):
        events = _events()
        injector, perturbed = _inject(
            FaultPlan.duplicate(probability=0.3), events
        )
        assert injector.duplicated_total > 0
        assert len(perturbed) == len(events) + injector.duplicated_total
        # The non-duplicate subsequence is the original stream.
        seen = set()
        originals = []
        for e in perturbed:
            if e.event_id not in seen:
                seen.add(e.event_id)
                originals.append(e)
        assert originals == events

    def test_drop_only_removes_send_events(self):
        events = _events(steps=120)
        plan = FaultPlan(kind="drop", probability=0.3, max_faults=None)
        injector, perturbed = _inject(plan, events)
        assert injector.dropped_total > 0
        delivered = {e.event_id for e in perturbed}
        for e in events:
            if e.event_id in delivered:
                continue
            assert e.kind is EventKind.SEND
        assert set(injector.dropped_ids) == {
            e.event_id for e in events if e.event_id not in delivered
        }

    def test_drop_respects_max_faults(self):
        events = _events(steps=120)
        injector, _ = _inject(FaultPlan.drop(probability=1.0), events)
        assert injector.dropped_total == 1  # max_faults=1 by default

    def test_none_plan_is_identity(self):
        events = _events()
        injector, perturbed = _inject(FaultPlan(kind="none"), events)
        assert perturbed == events
        assert injector.stats()["delayed"] == 0

    def test_stats_shape(self):
        events = _events()
        injector, _ = _inject(FaultPlan.duplicate(probability=0.3), events)
        stats = injector.stats()
        assert stats["kind"] == "duplicate"
        assert stats["forwarded"] == len(events) + stats["duplicated"]


class TestTransmitFaults:
    def test_extra_delay_bounded_and_deterministic(self):
        first = TransmitFaults(seed=3, probability=0.5, max_extra=2.0)
        second = TransmitFaults(seed=3, probability=0.5, max_extra=2.0)
        draws_a = [first(None) for _ in range(200)]
        draws_b = [second(None) for _ in range(200)]
        assert draws_a == draws_b
        assert all(0.0 <= d <= 2.0 for d in draws_a)
        assert first.faulted_total > 0
        assert any(d == 0.0 for d in draws_a)

    def test_validation(self):
        with pytest.raises(ValueError, match="probability"):
            TransmitFaults(probability=2.0)
        with pytest.raises(ValueError, match="max_extra"):
            TransmitFaults(max_extra=-1.0)


class TestKernelIntegration:
    def test_transmit_faults_still_yield_linearization(self):
        from repro.workloads import build_message_race

        workload = build_message_race(
            num_traces=3, seed=1, messages_per_sender=10
        )
        from repro.poet.client import RecordingClient

        recorder = RecordingClient()
        workload.server.connect(recorder)
        workload.kernel.set_transmit_fault(
            TransmitFaults(seed=5, probability=0.5, max_extra=4.0)
        )
        workload.run(max_events=5000)
        assert recorder.events
        assert is_linearization(recorder.events, 3)

    def test_negative_extra_delay_rejected(self):
        from repro.simulation.kernel import SimulationError
        from repro.workloads import build_message_race

        workload = build_message_race(
            num_traces=3, seed=1, messages_per_sender=2
        )
        workload.kernel.set_transmit_fault(lambda message: -1.0)
        with pytest.raises(SimulationError):
            workload.run(max_events=5000)


class TestInjectorObservability:
    def test_injection_counters_labelled_by_kind(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        events = _events(steps=120)
        out = []
        injector = FaultInjector(
            FaultPlan.duplicate(probability=0.5),
            out.append,
            seed=3,
            registry=registry,
        )
        for e in events:
            injector.feed(e)
        injector.flush()
        assert injector.duplicated_total > 0
        injected = registry.get(
            "fault_injected_total", labels={"kind": "duplicate"}
        )
        forwarded = registry.get(
            "fault_events_forwarded_total", labels={"kind": "duplicate"}
        )
        assert injected.value == injector.duplicated_total
        assert forwarded.value == injector.forwarded_total == len(out)

    def test_drop_and_delay_counters(self):
        from repro.obs.metrics import MetricsRegistry

        for plan, attr in (
            (FaultPlan.drop(probability=1.0, max_faults=2), "dropped_total"),
            (FaultPlan.delay(probability=0.5), "delayed_total"),
        ):
            registry = MetricsRegistry()
            injector, _ = _inject(plan, _events(steps=100), seed=1)
            # Re-run with the registry attached.
            out = []
            traced = FaultInjector(plan, out.append, seed=1, registry=registry)
            for e in _events(steps=100):
                traced.feed(e)
            traced.flush()
            counter = registry.get(
                "fault_injected_total", labels={"kind": plan.kind}
            )
            assert counter.value == getattr(traced, attr)
            assert counter.value == getattr(injector, attr) > 0

    def test_fault_instants_recorded_on_tracer(self):
        from repro.obs.spans import SpanTracer, validate_trace_events

        tracer = SpanTracer()
        out = []
        injector = FaultInjector(
            FaultPlan.reorder(probability=0.5), out.append, seed=2,
            tracer=tracer,
        )
        for e in _events(steps=100):
            injector.feed(e)
        injector.flush()
        assert injector.delayed_total > 0
        instants = [
            e for e in tracer.events()
            if e.get("ph") == "i" and e.get("name") == "fault.reorder"
        ]
        assert len(instants) == injector.delayed_total
        validate_trace_events(tracer.events())

    def test_no_registry_costs_nothing(self):
        injector, out = _inject(
            FaultPlan.reorder(probability=0.5), _events(steps=80), seed=2
        )
        # The default no-op registry/tracer leave accounting intact.
        assert injector.forwarded_total == len(out)
