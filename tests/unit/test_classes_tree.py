"""Unit tests for runtime event classes and the pattern tree."""

from repro.patterns import EventClass, PatternTree, parse_pattern
from repro.patterns.ast import AttrVar, ClassDef, Exact, Wildcard
from repro.testing import Weaver


def make_class(process, etype, text, names=("P0", "P1")):
    return EventClass.from_def(
        ClassDef(name="C", process=process, etype=etype, text=text),
        trace_names=names,
    )


class TestEventClassMatching:
    def test_wildcards_match_anything(self):
        cls = make_class(Wildcard(), Wildcard(), Wildcard())
        w = Weaver(2)
        assert cls.matches(w.local(0, "Anything", "text")) == {}

    def test_exact_type_match(self):
        cls = make_class(Wildcard(), Exact("Send"), Wildcard())
        w = Weaver(2)
        assert cls.matches(w.send(0)) == {}
        assert cls.matches(w.local(0, "Other")) is None

    def test_exact_process_accepts_name_or_number(self):
        w = Weaver(2)
        event = w.local(1, "E")
        by_name = make_class(Exact("P1"), Wildcard(), Wildcard())
        by_number = make_class(Exact("1"), Wildcard(), Wildcard())
        wrong = make_class(Exact("P0"), Wildcard(), Wildcard())
        assert by_name.matches(event) == {}
        assert by_number.matches(event) == {}
        assert wrong.matches(event) is None

    def test_attribute_variable_binds_then_constrains(self):
        cls = make_class(AttrVar("p"), Wildcard(), Wildcard())
        w = Weaver(2)
        on_p0 = w.local(0)
        on_p1 = w.local(1)
        env = cls.matches(on_p0)
        assert env == {"p": "P0"}
        assert cls.matches(on_p1, env) is None
        assert cls.matches(w.local(0), env) == {"p": "P0"}

    def test_binding_environment_not_mutated(self):
        cls = make_class(Wildcard(), Wildcard(), AttrVar("t"))
        w = Weaver(1)
        env = {}
        out = cls.matches(w.local(0, "E", "hello"), env)
        assert out == {"t": "hello"}
        assert env == {}

    def test_variable_shared_across_attributes(self):
        # same variable in text of one class and process of another
        source = """
        Synch := [$1, Synch, $2];
        Snap  := [$2, Snap, ''];
        pattern := Synch -> Snap;
        """
        parsed = parse_pattern(source)
        tree = PatternTree(parsed, ["P0", "P1"])
        synch_cls = tree.leaf(0).event_class
        snap_cls = tree.leaf(1).event_class
        w = Weaver(2)
        synch = w.local(0, "Synch", "P1")
        snap_right = w.local(1, "Snap")
        snap_wrong = w.local(0, "Snap")
        env = synch_cls.matches(synch)
        assert env == {"1": "P0", "2": "P1"}
        assert snap_cls.matches(snap_right, env) is not None
        assert snap_cls.matches(snap_wrong, env) is None


class TestPatternTree:
    def test_plain_class_occurrences_are_distinct_leaves(self):
        parsed = parse_pattern(
            "A := ['', a, '']; pattern := A -> A;"
        )
        tree = PatternTree(parsed, ["P0"])
        assert len(tree.leaves) == 2
        assert tree.leaves[0].var_name is None

    def test_variable_occurrences_share_one_leaf(self):
        parsed = parse_pattern(
            "A := ['', a, '']; B := ['', b, '']; A $x;"
            "pattern := ($x -> B) /\\ (B || $x);"
        )
        tree = PatternTree(parsed, ["P0"])
        labels = [leaf.label for leaf in tree.leaves]
        # $x is one shared leaf; the two B occurrences stay distinct
        assert labels == ["$x", "B#1", "B#2"]

    def test_leaf_ids_under_subtrees(self):
        parsed = parse_pattern(
            "A := ['', a, '']; B := ['', b, '']; C := ['', c, ''];"
            "pattern := (A -> B) || C;"
        )
        tree = PatternTree(parsed, ["P0"])
        root = tree.root
        left_ids = tree.leaf_ids_under(root.children[0])
        right_ids = tree.leaf_ids_under(root.children[1])
        assert left_ids == [0, 1]
        assert right_ids == [2]
