"""Unit tests for the v2 pattern syntax and parser diagnostics.

Covers the new operators — Kleene closure ``+``, disjunction ``\\/``,
negation ``!``/``ABSENT``, time windows ``WITHIN`` — and the
position-accurate error reporting (line/column plus a caret excerpt of
the offending source line).
"""

import pytest

from repro.patterns import (
    PatternParseError,
    parse_pattern,
)
from repro.patterns.ast import (
    BinaryExpr,
    ClassRef,
    KleeneExpr,
    NotExpr,
    Operator,
    OrExpr,
    VarRef,
    WithinExpr,
)

HEADER = "A := ['', A, '']; B := ['', B, '']; C := ['', C, ''];"


def parse_expr(expr_src: str):
    return parse_pattern(f"{HEADER} pattern := {expr_src};").expr


class TestKleene:
    def test_class_closure(self):
        assert parse_expr("A -> B+") == BinaryExpr(
            op=Operator.PRECEDES,
            left=ClassRef("A"),
            right=KleeneExpr(operand=ClassRef("B")),
        )

    def test_disjunction_closure(self):
        assert parse_expr("(A \\/ B)+ -> C") == BinaryExpr(
            op=Operator.PRECEDES,
            left=KleeneExpr(
                operand=OrExpr(parts=(ClassRef("A"), ClassRef("B")))
            ),
            right=ClassRef("C"),
        )

    def test_variable_closure(self):
        parsed = parse_pattern(
            f"{HEADER} B $m; pattern := (A ~> $m+) /\\ ($m+ -> C);"
        )
        left = parsed.expr.parts[0]
        assert left.right == KleeneExpr(operand=VarRef("m"))

    def test_duplicate_plus_rejected(self):
        with pytest.raises(PatternParseError, match="duplicate Kleene"):
            parse_expr("A -> B++")

    def test_plus_on_parenthesized_chain_rejected(self):
        with pytest.raises(PatternParseError, match="Kleene closure"):
            parse_expr("(A -> B)+")


class TestDisjunction:
    def test_binds_tighter_than_causal_ops(self):
        assert parse_expr("A \\/ B -> C") == BinaryExpr(
            op=Operator.PRECEDES,
            left=OrExpr(parts=(ClassRef("A"), ClassRef("B"))),
            right=ClassRef("C"),
        )

    def test_three_alternatives_flatten(self):
        expr = parse_expr("A \\/ B \\/ C")
        assert expr == OrExpr(
            parts=(ClassRef("A"), ClassRef("B"), ClassRef("C"))
        )

    def test_unicode_vee_accepted(self):
        assert parse_expr("A ∨ B") == parse_expr("A \\/ B")

    def test_non_class_alternative_rejected(self):
        with pytest.raises(PatternParseError, match="alternatives"):
            parse_pattern(
                f"{HEADER} A $x; pattern := A \\/ $x -> C;"
            )


class TestNegation:
    def test_bang_and_absent_are_synonyms(self):
        assert parse_expr("A -> !B -> C") == parse_expr(
            "A -> ABSENT B -> C"
        )

    def test_shape(self):
        expr = parse_expr("A -> !B -> C")
        assert expr == BinaryExpr(
            op=Operator.PRECEDES,
            left=BinaryExpr(
                op=Operator.PRECEDES,
                left=ClassRef("A"),
                right=NotExpr(operand=ClassRef("B")),
            ),
            right=ClassRef("C"),
        )

    def test_needs_preceding_anchor(self):
        with pytest.raises(PatternParseError, match="preceding '->'"):
            parse_expr("!B -> C")

    def test_needs_following_anchor(self):
        with pytest.raises(PatternParseError, match="following '->'"):
            parse_expr("A -> !B")

    def test_not_under_other_operators(self):
        with pytest.raises(PatternParseError):
            parse_expr("A || !B")

    def test_adjacent_negations_rejected(self):
        with pytest.raises(PatternParseError):
            parse_expr("A -> !B -> !C -> A")

    def test_window_on_negation_rejected(self):
        with pytest.raises(PatternParseError):
            parse_expr("A -> (!B WITHIN 3) -> C")


class TestWithin:
    def test_default_domain_is_sim(self):
        expr = parse_expr("A -> B WITHIN 9")
        assert expr == WithinExpr(
            operand=BinaryExpr(
                op=Operator.PRECEDES,
                left=ClassRef("A"),
                right=ClassRef("B"),
            ),
            bound=9,
            domain="sim",
        )

    def test_wall_domain(self):
        expr = parse_expr("A -> B WITHIN 3 wall")
        assert expr.domain == "wall"

    def test_binds_one_relation_in_a_conjunction(self):
        expr = parse_expr("A -> B WITHIN 3 /\\ B -> C")
        assert isinstance(expr.parts[0], WithinExpr)
        assert isinstance(expr.parts[1], BinaryExpr)

    def test_parenthesized_conjunction_windowed_whole(self):
        expr = parse_expr("(A -> B /\\ B -> C) WITHIN 5")
        assert isinstance(expr, WithinExpr)

    def test_unknown_domain_rejected(self):
        with pytest.raises(PatternParseError, match="window domain"):
            parse_expr("A -> B WITHIN 3 lunar")

    def test_missing_bound_rejected(self):
        with pytest.raises(PatternParseError):
            parse_expr("A -> B WITHIN")

    def test_reserved_word_not_a_class_name(self):
        with pytest.raises(PatternParseError, match="reserved"):
            parse_pattern(
                "WITHIN := ['', A, '']; pattern := WITHIN;"
            )


class TestDiagnostics:
    """Errors carry the offending line/column and a caret excerpt."""

    def test_position_of_unknown_class(self):
        with pytest.raises(PatternParseError) as excinfo:
            parse_pattern("A := ['', A, ''];\npattern := A -> Nope;")
        err = excinfo.value
        assert err.line == 2
        assert err.column == 17
        assert "Nope" in str(err)

    def test_caret_excerpt_points_at_token(self):
        with pytest.raises(PatternParseError) as excinfo:
            parse_pattern("A := ['', A, ''];\npattern := A -> !B;")
        message = str(excinfo.value)
        assert "line 2" in message
        # the excerpt quotes the source line and a caret marks the spot
        assert "pattern := A -> !B;" in message
        assert "^" in message

    def test_negation_placement_position(self):
        source = "A := ['', A, '']; B := ['', B, ''];\npattern := A || !B -> A;"
        with pytest.raises(PatternParseError) as excinfo:
            parse_pattern(source)
        assert excinfo.value.line == 2

    def test_malformed_class_def_position(self):
        with pytest.raises(PatternParseError) as excinfo:
            parse_pattern("A := ['', ''];\npattern := A;")
        assert excinfo.value.line == 1

    def test_unterminated_pattern_position(self):
        with pytest.raises(PatternParseError) as excinfo:
            parse_pattern("A := ['', A, ''];\npattern := A ->")
        assert excinfo.value.line == 2
