"""Unit tests for the ``ocep`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_case_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["case", "not-a-case"])

    def test_defaults(self):
        args = build_parser().parse_args(["case", "race"])
        assert args.traces == 10
        assert args.seed == 0
        assert args.max_events == 50_000


class TestSimulateAndMatch:
    def test_round_trip(self, tmp_path, capsys):
        dump = tmp_path / "run.poet"
        rc = main(
            [
                "simulate",
                "atomicity",
                str(dump),
                "--traces",
                "4",
                "--seed",
                "2",
                "--max-events",
                "3000",
            ]
        )
        assert rc == 0
        assert dump.exists()
        out = capsys.readouterr().out
        assert "wrote" in out

        pattern = tmp_path / "pattern.ocep"
        pattern.write_text(
            "X := ['', Access, ''];\nY := ['', Access, ''];\n"
            "pattern := X || Y;\n"
        )
        rc = main(["match", str(pattern), str(dump)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "events" in out and "subset" in out


class TestCaseCommand:
    def test_ordering_case_reports(self, capsys):
        rc = main(
            ["case", "ordering", "--traces", "5", "--seed", "3",
             "--max-events", "5000"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "case=ordering" in out

    def test_quiet_suppresses_matches(self, capsys):
        rc = main(
            ["case", "ordering", "--traces", "5", "--seed", "3",
             "--quiet", "--max-events", "5000"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "match:" not in out


class TestBenchCommand:
    def test_quartile_table_printed(self, capsys):
        rc = main(
            ["bench", "race", "--traces", "5", "--repetitions", "2",
             "--max-events", "2000"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Top Whisker" in out
        assert "race" in out


class TestDiagramCommand:
    def _dump(self, tmp_path):
        dump = tmp_path / "d.poet"
        main(
            ["simulate", "race", str(dump), "--traces", "4", "--seed", "1",
             "--max-events", "2000"]
        )
        return dump

    def test_ascii_diagram(self, tmp_path, capsys):
        dump = self._dump(tmp_path)
        capsys.readouterr()
        rc = main(["diagram", str(dump), "--limit", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "P0" in out and "P1" in out

    def test_dot_output(self, tmp_path, capsys):
        dump = self._dump(tmp_path)
        capsys.readouterr()
        rc = main(["diagram", str(dump), "--dot", "--limit", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")


class TestStatsCommand:
    ARGS = ["stats", "race", "--traces", "3", "--seed", "1",
            "--max-events", "500"]

    def test_table_output(self, capsys):
        rc = main(self.ARGS + ["--show-trace", "3"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "ocep_matcher_searches_run_total" in captured.out
        assert "ocep_monitor_event_seconds" in captured.out
        assert "poet_events_collected_total" in captured.out
        assert "search trace" in captured.err

    def test_json_round_trips_counters(self, capsys):
        import json

        rc = main(self.ARGS + ["--format", "json"])
        assert rc == 0
        document = json.loads(capsys.readouterr().out)
        metrics = {m["name"]: m for m in document["metrics"]}
        searches = metrics["ocep_matcher_searches_run_total"]["value"]
        assert searches > 0
        # per-search latency histogram stays in lockstep with searches
        assert metrics["ocep_monitor_search_seconds"]["count"] == searches
        assert (
            metrics["poet_events_collected_total"]["value"]
            == metrics["ocep_monitor_events_total"]["value"]
            > 0
        )

    def test_prometheus_output_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "metrics.prom"
        rc = main(self.ARGS + ["--format", "prometheus",
                               "--output", str(out_file)])
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        text = out_file.read_text()
        assert "# TYPE ocep_matcher_searches_run_total counter" in text
        assert "ocep_monitor_event_seconds_bucket" in text


class TestChaosCommand:
    def test_seed_spec_parsing(self):
        from repro.cli import _parse_seeds

        assert _parse_seeds("0..3") == [0, 1, 2, 3]
        assert _parse_seeds("1,4,7") == [1, 4, 7]
        assert _parse_seeds("5") == [5]
        with pytest.raises(Exception):
            _parse_seeds("9..0")

    def test_matrix_passes_on_race_case(self, capsys):
        rc = main(
            ["chaos", "race", "--traces", "3", "--seed", "1",
             "--seeds", "0..1", "--max-events", "1000"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cells passed" in out
        assert "FAIL" not in out
        for kind in ("reorder", "delay", "duplicate", "drop", "crash"):
            assert kind in out

    def test_plan_filter_and_json_report(self, tmp_path, capsys):
        import json

        report_file = tmp_path / "chaos.json"
        rc = main(
            ["chaos", "race", "--traces", "3", "--seed", "1",
             "--seeds", "0", "--plans", "reorder", "crash",
             "--max-events", "1000", "--json", str(report_file)]
        )
        assert rc == 0
        document = json.loads(report_file.read_text())
        assert document["ok"] is True
        assert {run["kind"] for run in document["runs"]} == {
            "reorder", "crash"
        }

    def test_unknown_plan_rejected(self, capsys):
        rc = main(
            ["chaos", "race", "--traces", "3", "--seeds", "0",
             "--plans", "gremlins", "--max-events", "500"]
        )
        assert rc == 2
        assert "unknown fault kind" in capsys.readouterr().err


class TestOfflineCommand:
    def test_enumerates_dump(self, tmp_path, capsys):
        dump = tmp_path / "d.poet"
        main(
            ["simulate", "race", str(dump), "--traces", "4", "--seed", "1",
             "--max-events", "2000"]
        )
        pattern = tmp_path / "p.ocep"
        pattern.write_text(
            "S := ['', Send, ''];\nR := ['', Receive, ''];\n"
            "pattern := S <> R;\n"
        )
        capsys.readouterr()
        rc = main(["offline", str(pattern), str(dump), "--limit", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "total matches" in out
        assert "match:" in out


class TestTraceCommand:
    def test_writes_valid_chrome_trace(self, tmp_path, capsys):
        import json

        from repro.obs.spans import validate_chrome_trace

        out_file = tmp_path / "trace.json"
        rc = main(
            ["trace", "race", "--traces", "4", "--seed", "0",
             "--max-events", "2000", "-o", str(out_file)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "detection latency" in out
        assert "wrote" in out
        document = json.loads(out_file.read_text())
        counts = validate_chrome_trace(document)
        assert counts["flows"] >= 1
        assert counts["sim_events"] >= 1
        names = {
            e.get("name") for e in document["traceEvents"]
            if e.get("ph") == "B"
        }
        assert "matcher.search" in names
        assert "poet.deliver" in names
        # Nested child spans inside a search.
        assert names & {"matcher.goForward", "matcher.goBackward"}

    def test_case_trace_out_flag(self, tmp_path, capsys):
        import json

        from repro.obs.spans import validate_chrome_trace

        out_file = tmp_path / "case.json"
        rc = main(
            ["case", "race", "--traces", "3", "--seed", "1", "--quiet",
             "--max-events", "800", "--trace-out", str(out_file)]
        )
        assert rc == 0
        counts = validate_chrome_trace(json.loads(out_file.read_text()))
        assert counts["events"] > 0

    def test_chaos_trace_out_flag(self, tmp_path, capsys):
        import json

        from repro.obs.spans import validate_chrome_trace

        out_file = tmp_path / "chaos-trace.json"
        rc = main(
            ["chaos", "race", "--traces", "3", "--seed", "1",
             "--seeds", "0", "--plans", "reorder", "duplicate",
             "--max-events", "800", "--trace-out", str(out_file)]
        )
        assert rc == 0
        document = json.loads(out_file.read_text())
        validate_chrome_trace(document)
        names = {e.get("name") for e in document["traceEvents"]}
        assert "chaos.cell" in names


class TestStatsTraceInJson:
    ARGS = ["stats", "race", "--traces", "3", "--seed", "1",
            "--max-events", "500"]

    def test_search_trace_embedded_in_json_document(self, capsys):
        import json

        rc = main(self.ARGS + ["--format", "json", "--show-trace", "5"])
        assert rc == 0
        captured = capsys.readouterr()
        # Structured output stays structured: nothing on stderr, the
        # trace tail lives inside the document.
        assert captured.err == ""
        document = json.loads(captured.out)
        trace = document["search_trace"]
        assert trace["recorded_total"] > 0
        assert 0 < len(trace["records"]) <= 5
        record = trace["records"][0]
        assert {"kind", "search", "level", "leaf_id"} <= set(record)

    def test_json_without_show_trace_has_no_trace_key(self, capsys):
        import json

        rc = main(self.ARGS + ["--format", "json"])
        assert rc == 0
        document = json.loads(capsys.readouterr().out)
        assert "search_trace" not in document

    def test_detection_latency_histogram_in_stats(self, capsys):
        import json

        rc = main(self.ARGS + ["--format", "json"])
        assert rc == 0
        document = json.loads(capsys.readouterr().out)
        metrics = {m["name"]: m for m in document["metrics"]}
        latency = metrics["ocep_detection_latency_sim_time_units"]
        assert latency["kind"] == "histogram"
        assert latency["count"] > 0
        reports = metrics["ocep_detection_reports_total"]["value"]
        assert reports > 0
        # The pre-rename name stays scrape-compatible in the JSON
        # snapshot as an alias entry.
        legacy = metrics["ocep_detection_latency_sim_time"]
        assert legacy["alias_of"] == "ocep_detection_latency_sim_time_units"
        assert legacy["count"] == latency["count"]

    def test_detection_latency_in_table_output(self, capsys):
        rc = main(self.ARGS)
        assert rc == 0
        out = capsys.readouterr().out
        assert "ocep_detection_latency_sim_time_units" in out
        # Sim-time histograms are not rendered in microseconds.
        line = next(
            line for line in out.splitlines()
            if line.startswith("ocep_detection_latency_sim_time_units ")
        )
        assert "us" not in line


class TestClusterCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["cluster", "race"])
        assert args.workers == 2
        assert args.seeds == [0, 1, 2, 3, 4]
        assert args.batch_size == 128
        assert args.max_events == 4000
        assert args.kill is False

    def test_equivalence_cell_passes(self, tmp_path, capsys):
        import json

        report_file = tmp_path / "cluster.json"
        rc = main(
            ["cluster", "race", "--traces", "4", "--seeds", "0",
             "--max-events", "400", "--workers", "2",
             "--json", str(report_file)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cluster equivalence: 1/1 cells passed" in out
        document = json.loads(report_file.read_text())
        assert document["ok"] is True
        assert document["workers"] == 2
        assert document["cells"][0]["restarts"] == 0

    def test_kill_cell_recovers(self, capsys):
        rc = main(
            ["cluster", "ordering", "--traces", "4", "--seeds", "0",
             "--max-events", "400", "--workers", "2", "--kill"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cluster kill/recovery: 1/1 cells passed" in out
        assert "restarts=1" in out
