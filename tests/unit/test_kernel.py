"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.events import EventKind
from repro.poet import RecordingClient, instrument, is_linearization
from repro.simulation import ANY_SOURCE, Kernel
from repro.simulation.errors import DeadlockError, SimulationError


def _run(kernel, **kwargs):
    recorder = RecordingClient()
    server = instrument(kernel, verify=True)
    server.connect(recorder)
    result = kernel.run(**kwargs)
    return result, recorder.events


class TestBasics:
    def test_single_process_emits_in_order(self):
        kernel = Kernel(num_processes=1, seed=0)

        def body(p):
            for i in range(3):
                yield p.emit("E", text=str(i))

        kernel.spawn(0, body)
        result, events = _run(kernel)
        assert [e.text for e in events] == ["0", "1", "2"]
        assert [e.index for e in events] == [1, 2, 3]
        assert not result.deadlocked

    def test_spawn_rejects_duplicate_and_out_of_range(self):
        kernel = Kernel(num_processes=1, seed=0)

        def body(p):
            yield p.emit("E")

        kernel.spawn(0, body)
        with pytest.raises(SimulationError):
            kernel.spawn(0, body)
        with pytest.raises(ValueError):
            kernel.spawn(5, body)

    def test_deterministic_given_seed(self):
        def build():
            kernel = Kernel(num_processes=3, seed=42, buffer_capacity=2)

            def body(p):
                for _ in range(5):
                    dst = (p.pid + 1) % 3
                    yield p.send(dst, text=f"to{dst}")
                    yield p.receive()

            for pid in range(3):
                kernel.spawn(pid, body)
            return _run(kernel)

        _, events_a = build()
        _, events_b = build()
        assert [(e.trace, e.index, e.etype) for e in events_a] == [
            (e.trace, e.index, e.etype) for e in events_b
        ]

    def test_max_events_truncates(self):
        kernel = Kernel(num_processes=1, seed=0)

        def body(p):
            while True:
                yield p.emit("E")

        kernel.spawn(0, body)
        result, events = _run(kernel, max_events=10)
        assert result.truncated
        assert result.num_events == 10


class TestMessaging:
    def test_payload_and_partner_round_trip(self):
        kernel = Kernel(num_processes=2, seed=1)
        received = []

        def sender(p):
            yield p.send(1, payload={"x": 1})

        def receiver(p):
            msg = yield p.receive()
            received.append(msg.payload)

        kernel.spawn(0, sender)
        kernel.spawn(1, receiver)
        _, events = _run(kernel)
        assert received == [{"x": 1}]
        send = next(e for e in events if e.kind is EventKind.SEND)
        recv = next(e for e in events if e.kind is EventKind.RECEIVE)
        assert recv.partner == send.event_id
        assert send.happens_before(recv)

    def test_send_to_self_rejected(self):
        kernel = Kernel(num_processes=1, seed=0)

        def body(p):
            yield p.send(0)

        kernel.spawn(0, body)
        with pytest.raises(SimulationError):
            kernel.run()

    def test_source_filtered_receive(self):
        kernel = Kernel(num_processes=3, seed=2)
        order = []

        def s0(p):
            yield p.send(2, payload="from0")

        def s1(p):
            yield p.send(2, payload="from1")

        def r(p):
            msg = yield p.receive(source=1)
            order.append(msg.payload)
            msg = yield p.receive(source=0)
            order.append(msg.payload)

        kernel.spawn(0, s0)
        kernel.spawn(1, s1)
        kernel.spawn(2, r)
        result, _ = _run(kernel)
        assert not result.deadlocked
        assert order == ["from1", "from0"]

    def test_fifo_per_channel(self):
        kernel = Kernel(num_processes=2, seed=3, buffer_capacity=3)

        def sender(p):
            for i in range(20):
                yield p.send(1, payload=i)

        def receiver(p):
            last = -1
            for _ in range(20):
                msg = yield p.receive(ANY_SOURCE)
                assert msg.payload == last + 1
                last = msg.payload

        kernel.spawn(0, sender)
        kernel.spawn(1, receiver)
        result, _ = _run(kernel)
        assert not result.deadlocked


class TestBlockingAndDeadlock:
    def test_rendezvous_ring_deadlocks(self):
        kernel = Kernel(num_processes=3, seed=0, buffer_capacity=0)

        def body(p):
            dst = (p.pid + 1) % 3
            yield p.send(dst, text=f"to{dst}")
            yield p.receive()

        for pid in range(3):
            kernel.spawn(pid, body)
        result, events = _run(kernel)
        assert result.deadlocked
        assert set(result.blocked) == {0, 1, 2}
        blocks = [e for e in events if e.etype == "SendBlock"]
        assert len(blocks) == 3
        for i, a in enumerate(blocks):
            for b in blocks[i + 1 :]:
                assert a.concurrent_with(b)

    def test_deadlock_raises_when_configured(self):
        kernel = Kernel(num_processes=2, seed=0, buffer_capacity=0)

        def body(p):
            dst = 1 - p.pid
            yield p.send(dst)
            yield p.receive()

        kernel.spawn(0, body)
        kernel.spawn(1, body)
        with pytest.raises(DeadlockError):
            kernel.run(stop_on_deadlock=False)

    def test_rendezvous_transfers_when_receive_posted(self):
        kernel = Kernel(num_processes=2, seed=0, buffer_capacity=0)
        got = []

        def sender(p):
            yield p.send(1, payload="v")

        def receiver(p):
            msg = yield p.receive(0)
            got.append(msg.payload)

        kernel.spawn(0, sender)
        kernel.spawn(1, receiver)
        result, _ = _run(kernel)
        assert not result.deadlocked
        assert got == ["v"]

    def test_blocked_send_emits_sendblock_event(self):
        kernel = Kernel(num_processes=2, seed=0, buffer_capacity=0)

        def sender(p):
            yield p.send(1, text="to1")
            yield p.emit("AfterSend")

        def receiver(p):
            yield p.sleep(50.0)
            yield p.receive(0)

        kernel.spawn(0, sender)
        kernel.spawn(1, receiver)
        result, events = _run(kernel)
        assert not result.deadlocked
        kinds = [e.etype for e in events if e.trace == 0]
        assert kinds == ["Send", "SendBlock", "AfterSend"]


class TestSemaphores:
    def test_mutual_exclusion_orders_sections(self):
        kernel = Kernel(num_processes=3, num_semaphores=1, seed=4)

        def body(p):
            for _ in range(3):
                yield p.acquire(0)
                yield p.emit("CS")
                yield p.release(0)

        for pid in range(3):
            kernel.spawn(pid, body)
        result, events = _run(kernel)
        assert not result.deadlocked
        sections = [e for e in events if e.etype == "CS"]
        assert len(sections) == 9
        for i, a in enumerate(sections):
            for b in sections[i + 1 :]:
                assert not a.concurrent_with(b)

    def test_bypassed_acquire_breaks_ordering(self):
        kernel = Kernel(num_processes=2, num_semaphores=1, seed=5)

        def locked(p):
            yield p.acquire(0)
            yield p.emit("CS")
            yield p.sleep(10.0)
            yield p.release(0)

        def buggy(p):
            yield p.sleep(1.0)
            yield p.acquire(0, bypass=True)
            yield p.emit("CS")

        kernel.spawn(0, locked)
        kernel.spawn(1, buggy)
        result, events = _run(kernel)
        sections = [e for e in events if e.etype == "CS"]
        assert len(sections) == 2
        assert sections[0].concurrent_with(sections[1])

    def test_semaphore_traces_are_separate(self):
        kernel = Kernel(num_processes=2, num_semaphores=2, seed=0)
        assert kernel.num_traces == 4
        assert kernel.trace_names() == ["P0", "P1", "sem0", "sem1"]
        assert kernel.semaphore_trace(1) == 3
        with pytest.raises(ValueError):
            kernel.semaphore_trace(2)

    def test_counting_semaphore_admits_that_many(self):
        kernel = Kernel(
            num_processes=3, num_semaphores=1, seed=6, semaphore_counts=[2]
        )
        def body(p):
            yield p.acquire(0)
            yield p.emit("CS")
            yield p.sleep(20.0)
            yield p.release(0)

        for pid in range(3):
            kernel.spawn(pid, body)
        result, events = _run(kernel)
        sections = [e for e in events if e.etype == "CS"]
        concurrent_pairs = sum(
            1
            for i, a in enumerate(sections)
            for b in sections[i + 1 :]
            if a.concurrent_with(b)
        )
        # with count 2, at least one pair overlaps; never all three
        assert concurrent_pairs >= 1


class TestDelivery:
    def test_stream_is_linearization(self):
        kernel = Kernel(num_processes=4, seed=7, buffer_capacity=2, num_semaphores=1)

        def body(p):
            for _ in range(4):
                dst = (p.pid + 1) % 4
                yield p.send(dst, text=f"to{dst}")
                yield p.receive()
                yield p.acquire(0)
                yield p.release(0)

        for pid in range(4):
            kernel.spawn(pid, body)
        _, events = _run(kernel)
        assert is_linearization(events, kernel.num_traces)
