"""Unit tests for the compile layer of the v2 pattern operators.

Covers the derived window matrices, negation specs, Kleene-position
restrictions, and the ``has_v2_features`` flag that gates the
cost-based planner (legacy patterns must never change behavior).
"""

import pytest

from repro.patterns import (
    PatternError,
    PatternTree,
    compile_pattern,
    parse_pattern,
)
from repro.patterns.compile import Constraint
from repro.engine.cases import CASES

NAMES = ["P0", "P1", "P2"]

HOTPATH = """
P := ['', Pickup, ''];
M := ['', Move, 'hot'];
D := ['', Drop, ''];
M $m;
pattern := ((P ~> $m+) /\\ ($m+ -> D)) WITHIN 16;
"""


def compiled(source):
    return compile_pattern(PatternTree(parse_pattern(source), NAMES))


class TestRestrictions:
    def test_constraint_between_two_kleene_positions_rejected(self):
        source = """
A := ['', A, ''];
B := ['', B, ''];
pattern := A+ -> B+;
"""
        with pytest.raises(PatternError, match="two Kleene positions"):
            compiled(source)

    def test_partner_on_kleene_rejected(self):
        source = """
A := ['', A, ''];
B := ['', B, ''];
pattern := A+ <> B;
"""
        with pytest.raises(PatternError, match="partner"):
            compiled(source)

    def test_negation_anchored_on_kleene_rejected(self):
        source = """
A := ['', A, ''];
B := ['', B, ''];
C := ['', C, ''];
pattern := A+ -> !B -> C;
"""
        with pytest.raises(PatternError, match="anchor"):
            compiled(source)

    def test_mixed_plain_and_kleene_variable_rejected(self):
        source = """
A := ['', A, ''];
B := ['', B, ''];
B $m;
pattern := (A -> $m) /\\ ($m+ -> A);
"""
        with pytest.raises(PatternError, match="plain and Kleene"):
            compiled(source)


class TestWindowMatrices:
    def test_window_covers_all_leaf_pairs_and_diagonal(self):
        pattern = compiled(HOTPATH)
        n = pattern.num_leaves
        assert n == 3
        for i in range(n):
            for j in range(n):
                assert pattern.window_bound(i, j, "sim") == 16
                assert pattern.window_bound(i, j, "wall") is None

    def test_diagonal_bounds_kleene_members_to_each_other(self):
        # window_bound(g, g) constrains every pair of *group members*
        # at the Kleene leaf g, not just the anchor
        pattern = compiled(HOTPATH)
        kleene = next(
            i for i, leaf in enumerate(pattern.leaves) if leaf.kleene
        )
        assert pattern.window_bound(kleene, kleene, "sim") == 16

    def test_unwindowed_relation_in_conjunction_is_unbounded(self):
        source = """
A := ['', A, ''];
B := ['', B, ''];
C := ['', C, ''];
pattern := (A -> B WITHIN 5) /\\ (B -> C);
"""
        pattern = compiled(source)
        # A and B appear as distinct leaves per reference; the windowed
        # relation covers leaves 0 and 1 only
        assert pattern.window_bound(0, 1, "sim") == 5
        spec = pattern.windows[0]
        assert spec.bound == 5 and spec.domain == "sim"
        assert set(spec.leaf_ids) == {0, 1}

    def test_nested_windows_keep_the_tightest_bound(self):
        source = """
A := ['', A, ''];
B := ['', B, ''];
pattern := (A -> B WITHIN 12) WITHIN 4;
"""
        pattern = compiled(source)
        assert pattern.window_bound(0, 1, "sim") == 4
        assert len(pattern.windows) == 2

    def test_wall_and_sim_domains_are_independent(self):
        source = """
A := ['', A, ''];
B := ['', B, ''];
pattern := (A -> B WITHIN 7 wall) WITHIN 20;
"""
        pattern = compiled(source)
        assert pattern.window_bound(0, 1, "wall") == 7
        assert pattern.window_bound(0, 1, "sim") == 20
        assert pattern.has_wall_windows


class TestNegationSpecs:
    def test_anchors_flank_the_removed_position(self):
        source = """
R := [$1, Request, ''];
V := [$1, Validate, ''];
C := [$1, Commit, ''];
pattern := R -> !V -> C;
"""
        pattern = compiled(source)
        assert pattern.num_leaves == 2
        (spec,) = pattern.negations
        assert spec.left_leaf == 0
        assert spec.right_leaf == 1
        assert spec.event_class.exact_etype() == "Validate"
        # the surviving anchors keep their ordinary precedence edge
        assert pattern.constraint(0, 1) is Constraint.BEFORE

    def test_chain_with_two_negations(self):
        source = """
A := ['', A, ''];
B := ['', B, ''];
C := ['', C, ''];
D := ['', D, ''];
E := ['', E, ''];
pattern := A -> !B -> C -> !D -> E;
"""
        pattern = compiled(source)
        assert pattern.num_leaves == 3
        specs = sorted(
            pattern.negations, key=lambda s: (s.left_leaf, s.right_leaf)
        )
        assert [(s.left_leaf, s.right_leaf) for s in specs] == [
            (0, 1),
            (1, 2),
        ]


class TestHasV2Features:
    def test_legacy_case_patterns_are_not_v2(self):
        for name in ("deadlock", "race", "atomicity", "ordering"):
            source = CASES[name].pattern(len(NAMES))
            assert not compiled(source).has_v2_features, name

    @pytest.mark.parametrize(
        "expr",
        [
            "A -> B+",
            "A \\/ B -> C",
            "A -> !C -> B",
            "A -> B WITHIN 4",
        ],
        ids=["kleene", "disjunction", "negation", "window"],
    )
    def test_each_operator_flips_the_flag(self, expr):
        source = (
            "A := ['', A, '']; B := ['', B, '']; C := ['', C, '']; "
            f"pattern := {expr};"
        )
        assert compiled(source).has_v2_features


class TestTerminatingLeaves:
    def test_hotpath_conjunction_triggers_only_on_drop(self):
        # P ~> $m+ makes m LIMITED-restricted; $m+ -> D makes m BEFORE
        # D — so only the Drop leaf lacks a (BEFORE, LIMITED)
        # obligation and can terminate a match
        pattern = compiled(HOTPATH)
        assert pattern.terminating_leaves() == (2,)

    def test_kleene_leaf_can_terminate_when_last(self):
        source = "A := ['', A, '']; B := ['', B, '']; pattern := A -> B+;"
        pattern = compiled(source)
        assert pattern.terminating_leaves() == (1,)
