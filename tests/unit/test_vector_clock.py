"""Unit tests for Fidge/Mattern vector clocks."""

import pytest

from repro.clocks import VectorClock


class TestConstruction:
    def test_zero_clock_has_all_zero_components(self):
        clock = VectorClock.zero(4)
        assert clock.components == (0, 0, 0, 0)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            VectorClock.zero(0)

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError):
            VectorClock([1, -1])

    def test_components_coerced_to_int(self):
        clock = VectorClock([1.0, 2.0])
        assert clock.components == (1, 2)


class TestTickAndMerge:
    def test_tick_advances_only_own_component(self):
        clock = VectorClock([1, 2, 3]).tick(1)
        assert clock.components == (1, 3, 3)

    def test_tick_returns_new_instance(self):
        original = VectorClock([0, 0])
        ticked = original.tick(0)
        assert original.components == (0, 0)
        assert ticked.components == (1, 0)

    def test_merge_is_componentwise_max(self):
        merged = VectorClock([1, 5, 0]).merge(VectorClock([3, 2, 0]))
        assert merged.components == (3, 5, 0)

    def test_tick_rejects_negative_trace(self):
        # tick(-1) used to wrap under python list indexing and silently
        # advance the LAST trace's component — a corrupted causality
        # record, not an error.
        clock = VectorClock([1, 2, 3])
        with pytest.raises(ValueError, match="must be in"):
            clock.tick(-1)
        assert clock.components == (1, 2, 3)

    def test_tick_rejects_out_of_range_trace(self):
        with pytest.raises(ValueError, match="must be in"):
            VectorClock([1, 2, 3]).tick(3)

    def test_tick_result_has_full_value_semantics(self):
        # tick/merge construct through the trusted fast path; the
        # results must still validate, hash, and compare like clocks
        # built through __init__.
        ticked = VectorClock([1, 2]).tick(0)
        rebuilt = VectorClock([2, 2])
        assert ticked == rebuilt
        assert hash(ticked) == hash(rebuilt)
        assert ticked.tick(1).components == (2, 3)

    def test_merge_result_has_full_value_semantics(self):
        merged = VectorClock([1, 5]).merge(VectorClock([3, 2]))
        rebuilt = VectorClock([3, 5])
        assert merged == rebuilt
        assert hash(merged) == hash(rebuilt)
        assert {merged: "a"}[rebuilt] == "a"

    def test_merge_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            VectorClock([1]).merge(VectorClock([1, 2]))


class TestPartialOrder:
    def test_dominated_clock_is_less(self):
        assert VectorClock([1, 2]) < VectorClock([2, 2])

    def test_equal_clocks_not_strictly_less(self):
        assert not VectorClock([1, 2]) < VectorClock([1, 2])
        assert VectorClock([1, 2]) <= VectorClock([1, 2])

    def test_incomparable_clocks_are_concurrent(self):
        a, b = VectorClock([2, 0]), VectorClock([0, 2])
        assert a.concurrent_with(b)
        assert b.concurrent_with(a)
        assert not a < b and not b < a

    def test_concurrent_with_is_false_for_ordered_pair(self):
        assert not VectorClock([1, 1]).concurrent_with(VectorClock([2, 1]))

    def test_ge_gt_mirror_le_lt(self):
        lo, hi = VectorClock([1, 1]), VectorClock([1, 2])
        assert hi > lo and hi >= lo
        assert not lo > hi

    def test_comparison_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            VectorClock([1]) <= VectorClock([1, 2])


class TestValueSemantics:
    def test_equality_and_hash(self):
        assert VectorClock([1, 2]) == VectorClock([1, 2])
        assert hash(VectorClock([1, 2])) == hash(VectorClock([1, 2]))
        assert VectorClock([1, 2]) != VectorClock([2, 1])

    def test_usable_as_dict_key(self):
        table = {VectorClock([1, 0]): "a"}
        assert table[VectorClock([1, 0])] == "a"

    def test_indexing_and_iteration(self):
        clock = VectorClock([4, 5, 6])
        assert clock[1] == 5
        assert list(clock) == [4, 5, 6]
        assert len(clock) == 3

    def test_repr_lists_components(self):
        assert repr(VectorClock([1, 2])) == "VectorClock(1, 2)"
