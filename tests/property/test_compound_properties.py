"""Property-based tests for compound-event relations (Section III-B)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import (
    CompoundEvent,
    compound_concurrent,
    compound_precedes,
    crosses,
    disjoint,
    entangled,
    overlaps,
    strong_precedes,
    weak_precedes,
)
from repro.testing import Weaver


@st.composite
def two_compounds(draw):
    """A random computation plus two random disjoint-or-overlapping
    compound events carved out of it."""
    num_traces = draw(st.integers(min_value=2, max_value=4))
    steps = draw(st.integers(min_value=4, max_value=25))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(seed)
    weaver = Weaver(num_traces)
    pending = []
    for _ in range(steps):
        roll = rng.random()
        trace = rng.randrange(num_traces)
        if roll < 0.4:
            weaver.local(trace)
        elif roll < 0.7:
            pending.append(weaver.send(trace))
        elif pending:
            send = pending.pop(rng.randrange(len(pending)))
            choices = [t for t in range(num_traces) if t != send.trace]
            weaver.recv(rng.choice(choices), send)
    if not weaver.events:
        weaver.local(0)
    events = weaver.events
    size_a = draw(st.integers(min_value=1, max_value=min(3, len(events))))
    size_b = draw(st.integers(min_value=1, max_value=min(3, len(events))))
    a = frozenset(rng.sample(events, size_a))
    b = frozenset(rng.sample(events, size_b))
    return a, b


class TestExclusiveClassification:
    @given(two_compounds())
    @settings(max_examples=150, deadline=None)
    def test_exactly_one_of_four_relations(self, data):
        """With entanglement included, any two compound events stand in
        exactly one of A -> B, B -> A, A || B, A <-> B (Section III-B)."""
        a, b = data
        relations = [
            compound_precedes(a, b),
            compound_precedes(b, a),
            compound_concurrent(a, b),
            entangled(a, b),
        ]
        assert sum(relations) == 1, (a, b, relations)

    @given(two_compounds())
    @settings(max_examples=100, deadline=None)
    def test_classify_agrees_with_predicates(self, data):
        a, b = data
        ca, cb = CompoundEvent(a), CompoundEvent(b)
        label = ca.classify(cb)
        expected = {
            "->": compound_precedes(a, b),
            "<-": compound_precedes(b, a),
            "||": compound_concurrent(a, b),
            "<->": entangled(a, b),
        }
        assert expected[label]


class TestDefinitionEquivalences:
    @given(two_compounds())
    @settings(max_examples=100, deadline=None)
    def test_entanglement_is_cross_or_overlap(self, data):
        a, b = data
        assert entangled(a, b) == (crosses(a, b) or overlaps(a, b))

    @given(two_compounds())
    @settings(max_examples=100, deadline=None)
    def test_strong_implies_weak_precedence(self, data):
        a, b = data
        if strong_precedes(a, b):
            assert weak_precedes(a, b)

    @given(two_compounds())
    @settings(max_examples=100, deadline=None)
    def test_crossing_is_symmetric_and_disjoint(self, data):
        a, b = data
        assert crosses(a, b) == crosses(b, a)
        if crosses(a, b):
            assert disjoint(a, b)

    @given(two_compounds())
    @settings(max_examples=100, deadline=None)
    def test_precedence_antisymmetric(self, data):
        a, b = data
        assert not (compound_precedes(a, b) and compound_precedes(b, a))

    @given(two_compounds())
    @settings(max_examples=100, deadline=None)
    def test_concurrency_symmetric(self, data):
        a, b = data
        assert compound_concurrent(a, b) == compound_concurrent(b, a)
