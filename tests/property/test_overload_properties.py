"""Property tests for the overload detector's flap-free guarantees.

Three contracts, over arbitrary observation sequences:

* transitions are never closer than ``min_dwell`` observations apart
  (the anti-flap dwell);
* from any state, a sustained run of observations below the low-water
  mark always returns the detector to ``NORMAL`` (shedding is never
  sticky);
* the detector is a pure function of its observation sequence — two
  detectors fed the same values are bit-identical in state, EMA, and
  transition count (this is what makes shedding replayable).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience.overload import OverloadDetector, OverloadState

#: Latency samples spanning calm (< disengage) to far past critical.
SAMPLES = st.floats(min_value=0.0, max_value=100.0,
                    allow_nan=False, allow_infinity=False)


def _detector(min_dwell=4, alpha=0.5):
    return OverloadDetector(
        engage_latency=8.0,
        disengage_fraction=0.5,
        critical_factor=4.0,
        alpha=alpha,
        min_dwell=min_dwell,
    )


class _TransitionLog(OverloadDetector):
    """Detector recording the observation index of every transition."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.transition_points = []

    def _transition(self, new_state):
        super()._transition(new_state)
        self.transition_points.append(self.observations)


@given(values=st.lists(SAMPLES, min_size=1, max_size=300),
       min_dwell=st.integers(min_value=1, max_value=20))
@settings(max_examples=200)
def test_transitions_never_closer_than_dwell(values, min_dwell):
    detector = _TransitionLog(
        engage_latency=8.0, disengage_fraction=0.5, critical_factor=4.0,
        alpha=0.5, min_dwell=min_dwell,
    )
    for value in values:
        detector.observe_latency(value)
    points = detector.transition_points
    for earlier, later in zip(points, points[1:]):
        assert later - earlier > min_dwell, (
            f"transitions {min_dwell=} apart: {points}"
        )


@given(values=st.lists(SAMPLES, min_size=1, max_size=200),
       min_dwell=st.integers(min_value=1, max_value=16),
       alpha=st.floats(min_value=0.05, max_value=1.0))
@settings(max_examples=200)
def test_always_disengages_below_low_water(values, min_dwell, alpha):
    """However overloaded, a long-enough calm spell (observations at
    zero, far below the low-water mark) always lands in NORMAL."""
    detector = _detector(min_dwell=min_dwell, alpha=alpha)
    for value in values:
        detector.observe_latency(value)
    # EMA decays geometrically toward 0 < disengage_latency; after the
    # decay, at most two dwell periods (CRITICAL -> SHEDDING -> NORMAL)
    # gate the walk back.  1000 zeros dominates both comfortably.
    for _ in range(1000):
        detector.observe_latency(0.0)
    assert detector.state is OverloadState.NORMAL
    assert detector.latency_ema <= detector.disengage_latency


@given(values=st.lists(st.tuples(st.booleans(), SAMPLES),
                       min_size=1, max_size=300))
@settings(max_examples=200)
def test_deterministic_for_fixed_sequence(values):
    """Interleaved latency/backlog observations drive two detectors
    identically."""
    first = OverloadDetector(engage_latency=8.0, engage_backlog=16.0,
                             alpha=0.25, min_dwell=4)
    second = OverloadDetector(engage_latency=8.0, engage_backlog=16.0,
                              alpha=0.25, min_dwell=4)
    for is_backlog, value in values:
        for detector in (first, second):
            if is_backlog:
                detector.observe_backlog(value)
            else:
                detector.observe_latency(value)
    assert first.state is second.state
    assert first.latency_ema == second.latency_ema
    assert first.latency_variance == second.latency_variance
    assert first.backlog_ema == second.backlog_ema
    assert first.transitions_total == second.transitions_total
    assert first.snapshot() == second.snapshot()


@given(values=st.lists(SAMPLES, min_size=1, max_size=300))
@settings(max_examples=100)
def test_state_changes_are_single_steps(values):
    """The gauge never jumps NORMAL <-> CRITICAL directly."""
    detector = _detector()
    previous = detector.state
    for value in values:
        detector.observe_latency(value)
        assert abs(int(detector.state) - int(previous)) <= 1
        previous = detector.state
