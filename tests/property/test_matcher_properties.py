"""Property-based tests for the OCEP matcher against the oracle."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MatcherConfig, OCEPMatcher, SweepMode
from repro.core.oracle import covered_slots, enumerate_matches
from repro.patterns import PatternTree, compile_pattern, parse_pattern
from repro.testing import Weaver

PATTERN_SOURCES = [
    "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;",
    "A := ['', A, '']; B := ['', B, '']; pattern := A || B;",
    "A := ['', A, '']; B := ['', B, '']; pattern := A ~> B;",
    "S := ['', Send, '']; R := ['', Receive, '']; pattern := S <> R;",
    "A := ['', A, '']; B := ['', B, '']; C := ['', C, ''];"
    "pattern := (A -> B) /\\ (B || C);",
    "A := [$1, A, '']; B := [$1, B, '']; pattern := A -> B;",
    "A := ['', A, '']; B := ['', B, '']; C := ['', C, '']; A $x;"
    "pattern := ($x -> B) /\\ ($x -> C);",
]


@st.composite
def scenario(draw):
    num_traces = draw(st.integers(min_value=2, max_value=4))
    steps = draw(st.integers(min_value=5, max_value=35))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    pattern_source = draw(st.sampled_from(PATTERN_SOURCES))
    rng = random.Random(seed)
    weaver = Weaver(num_traces)
    pending = []
    for _ in range(steps):
        roll = rng.random()
        trace = rng.randrange(num_traces)
        if roll < 0.45:
            weaver.local(trace, rng.choice("ABC"))
        elif roll < 0.75:
            pending.append(weaver.send(trace))
        elif pending:
            send = pending.pop(rng.randrange(len(pending)))
            choices = [t for t in range(num_traces) if t != send.trace]
            weaver.recv(rng.choice(choices), send)
    names = [f"P{i}" for i in range(num_traces)]
    compiled = compile_pattern(PatternTree(parse_pattern(pattern_source), names))
    return weaver, compiled, names


def canonical(items):
    return tuple(sorted((lid, e.event_id) for lid, e in items))


class TestExhaustiveEqualsOracle:
    @given(scenario())
    @settings(max_examples=60, deadline=None)
    def test_match_sets_identical(self, data):
        weaver, compiled, names = data
        matcher = OCEPMatcher(
            compiled,
            weaver.num_traces,
            MatcherConfig(
                sweep=SweepMode.EXHAUSTIVE, prune_history=False, paranoid=True
            ),
        )
        got = set()
        for event in weaver.events:
            for report in matcher.on_event(event):
                got.add(canonical(report.assignment))
        want = {
            canonical(m.items())
            for m in enumerate_matches(compiled, weaver.events)
        }
        assert got == want


class TestCoverageSoundness:
    @given(scenario())
    @settings(max_examples=60, deadline=None)
    def test_no_false_positives_and_detection(self, data):
        weaver, compiled, names = data
        matcher = OCEPMatcher(
            compiled, weaver.num_traces, MatcherConfig(prune_history=False)
        )
        reports = []
        for event in weaver.events:
            reports.extend(matcher.on_event(event))
        oracle = enumerate_matches(compiled, weaver.events)
        oracle_set = {canonical(m.items()) for m in oracle}
        for report in reports:
            assert canonical(report.assignment) in oracle_set
        if oracle_set:
            assert reports
        assert matcher.subset.covered_slots <= covered_slots(oracle)
        assert matcher.subset.check_bound()


class TestOnlineIncrementality:
    @given(scenario())
    @settings(max_examples=40, deadline=None)
    def test_trigger_event_is_in_every_report(self, data):
        """Online reports always contain the event that triggered them —
        matches are discovered as soon as they complete."""
        weaver, compiled, names = data
        matcher = OCEPMatcher(
            compiled, weaver.num_traces, MatcherConfig(prune_history=False)
        )
        for event in weaver.events:
            for report in matcher.on_event(event):
                assigned = dict(report.assignment)
                assert report.trigger_event == event
                assert event in assigned.values()

    @given(scenario())
    @settings(max_examples=40, deadline=None)
    def test_histories_only_hold_class_matches(self, data):
        weaver, compiled, names = data
        matcher = OCEPMatcher(
            compiled, weaver.num_traces, MatcherConfig(prune_history=False)
        )
        for event in weaver.events:
            matcher.on_event(event)
        for leaf in compiled.leaves:
            history = matcher.history.leaf(leaf.leaf_id)
            for trace in range(weaver.num_traces):
                for event in history.on_trace(trace):
                    assert leaf.event_class.could_match(event)
