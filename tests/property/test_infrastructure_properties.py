"""Property-based tests for the substrate: GP/LS, subset bound,
dump/reload, simulation delivery."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CausalIndex, RepresentativeSubset
from repro.poet import dump_events, is_linearization, load_events
from repro.simulation import Kernel
from repro.poet import RecordingClient, instrument
from repro.testing import Weaver


@st.composite
def computations(draw, max_traces=4, max_steps=35):
    num_traces = draw(st.integers(min_value=1, max_value=max_traces))
    steps = draw(st.integers(min_value=1, max_value=max_steps))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(seed)
    weaver = Weaver(num_traces)
    pending = []
    for _ in range(steps):
        roll = rng.random()
        trace = rng.randrange(num_traces)
        if roll < 0.4 or num_traces == 1:
            weaver.local(trace)
        elif roll < 0.7:
            pending.append(weaver.send(trace))
        elif pending:
            send = pending.pop(rng.randrange(len(pending)))
            choices = [t for t in range(num_traces) if t != send.trace]
            weaver.recv(rng.choice(choices), send)
    return weaver


class TestGPLSProperties:
    @given(computations())
    @settings(max_examples=50, deadline=None)
    def test_gp_ls_match_definitions(self, weaver):
        index = CausalIndex(weaver.num_traces)
        for event in weaver.events:
            index.observe(event)
        events = weaver.events
        for event in events:
            for trace in range(weaver.num_traces):
                on_trace = [e for e in events if e.trace == trace]
                before = [e for e in on_trace if e.happens_before(event)]
                after = [e for e in on_trace if event.happens_before(e)]
                gp = index.gp(event, trace)
                ls = index.ls(event, trace)
                assert gp == (max(e.index for e in before) if before else 0)
                assert ls == (min(e.index for e in after) if after else None)

    @given(computations())
    @settings(max_examples=50, deadline=None)
    def test_gp_ls_bracket_concurrency(self, weaver):
        """Events strictly between GP and LS on a trace are exactly the
        ones concurrent with the query event (Section IV-C)."""
        index = CausalIndex(weaver.num_traces)
        for event in weaver.events:
            index.observe(event)
        for event in weaver.events:
            for trace in range(weaver.num_traces):
                if trace == event.trace:
                    continue
                gp = index.gp(event, trace)
                ls = index.ls(event, trace)
                hi = ls if ls is not None else index.trace_length(trace) + 1
                for other in weaver.events:
                    if other.trace != trace:
                        continue
                    inside = gp < other.index < hi
                    assert inside == other.concurrent_with(event)


class TestSubsetBound:
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.lists(st.integers(min_value=0, max_value=2**30), max_size=60),
    )
    def test_kn_bound_invariant(self, num_leaves, num_traces, seeds):
        weaver = Weaver(num_traces)
        subset = RepresentativeSubset(num_leaves, num_traces)
        for seed in seeds:
            rng = random.Random(seed)
            match = {
                leaf: weaver.local(rng.randrange(num_traces))
                for leaf in range(num_leaves)
            }
            new = subset.update(match)
            # stored <=> new slots covered
            assert bool(new) == (
                subset.matches[-1].as_dict() == match if subset.matches else False
            ) or not new
            assert subset.check_bound()
        # every stored match covered something new at insert time
        seen = set()
        for stored in subset.matches:
            assert set(stored.new_slots) - seen == set(stored.new_slots)
            seen.update(stored.new_slots)


class TestDumpRoundTrip:
    @given(computations())
    @settings(max_examples=30, deadline=None)
    def test_events_survive_round_trip(self, weaver):
        import tempfile
        import os

        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "dump.poet")
            names = [f"P{i}" for i in range(weaver.num_traces)]
            dump_events(path, weaver.events, weaver.num_traces, names)
            events, num_traces, loaded_names = load_events(path)
            assert num_traces == weaver.num_traces
            assert loaded_names == names
            assert events == weaver.events  # identity = (trace, index)
            for original, restored in zip(weaver.events, events):
                assert original.clock == restored.clock
                assert original.etype == restored.etype
                assert original.kind == restored.kind
                assert original.partner == restored.partner


class TestSimulationDelivery:
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_kernel_streams_are_linearizations(self, num_processes, seed):
        kernel = Kernel(
            num_processes=num_processes, seed=seed, buffer_capacity=2
        )
        server = instrument(kernel)
        recorder = RecordingClient()
        server.connect(recorder)

        def body(p):
            rng = p.rng
            for _ in range(6):
                if rng.random() < 0.5:
                    dst = rng.randrange(num_processes)
                    if dst != p.pid:
                        yield p.send(dst, text=f"to{dst}")
                else:
                    yield p.emit("E")

        for pid in range(num_processes):
            kernel.spawn(pid, body)
        kernel.run(max_events=300)
        assert is_linearization(recorder.events, kernel.num_traces)
