"""Property-based tests for the simulation kernel.

Invariants the whole evaluation rests on: mutual exclusion through
semaphores, message conservation, per-channel FIFO, causal delivery.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.events import EventKind
from repro.poet import RecordingClient, instrument, is_linearization
from repro.simulation import Kernel


def run_random_kernel(num_processes, seed, with_semaphore):
    kernel = Kernel(
        num_processes=num_processes,
        num_semaphores=1 if with_semaphore else 0,
        seed=seed,
        buffer_capacity=3,
    )
    server = instrument(kernel, verify=True)
    recorder = RecordingClient()
    server.connect(recorder)

    def body(p):
        rng = p.rng
        for _ in range(8):
            roll = rng.random()
            if roll < 0.3:
                yield p.emit("E")
            elif roll < 0.6:
                dst = rng.randrange(num_processes)
                if dst != p.pid:
                    yield p.send(dst, payload=(p.pid, rng.random()))
            elif with_semaphore and roll < 0.8:
                yield p.acquire(0)
                yield p.emit("CS")
                yield p.release(0)
            else:
                yield p.sleep(rng.random())

    for pid in range(num_processes):
        kernel.spawn(pid, body)
    result = kernel.run(max_events=500)
    return kernel, recorder.events, result


class TestKernelInvariants:
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_delivery_is_linearization(self, num_processes, seed):
        kernel, events, _ = run_random_kernel(num_processes, seed, True)
        assert is_linearization(events, kernel.num_traces)

    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_every_receive_has_an_earlier_send(self, num_processes, seed):
        _, events, _ = run_random_kernel(num_processes, seed, False)
        seen = set()
        for event in events:
            seen.add(event.event_id)
            if event.kind is EventKind.RECEIVE:
                assert event.partner is not None
                assert event.partner in seen

    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_each_send_received_at_most_once(self, num_processes, seed):
        _, events, _ = run_random_kernel(num_processes, seed, False)
        partners = [
            e.partner for e in events if e.kind is EventKind.RECEIVE
        ]
        assert len(partners) == len(set(partners))

    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_semaphore_mutual_exclusion(self, num_processes, seed):
        """Critical-section events guarded by the semaphore are never
        pairwise concurrent — the causal-ordering guarantee the
        atomicity case study rests on."""
        _, events, _ = run_random_kernel(num_processes, seed, True)
        sections = [e for e in events if e.etype == "CS"]
        for i, a in enumerate(sections):
            for b in sections[i + 1 :]:
                assert not a.concurrent_with(b)

    @given(
        st.integers(min_value=3, max_value=5),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_per_channel_fifo(self, num_processes, seed):
        """Receives from one sender arrive in that sender's send
        order (MPI non-overtaking)."""
        _, events, _ = run_random_kernel(num_processes, seed, False)
        last_index = {}
        for event in events:
            if event.kind is EventKind.RECEIVE and event.partner is not None:
                channel = (event.partner.trace, event.trace)
                previous = last_index.get(channel, 0)
                assert event.partner.index > previous
                last_index[channel] = event.partner.index
