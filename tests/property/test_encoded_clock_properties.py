"""Property tests: encoded timestamps are indistinguishable from full
Fidge/Mattern clocks.

Two copies of every random computation are woven — one stamped with
full vector clocks, one with encoded clocks — and all three causality
predicates (``happens_before`` / ``concurrent`` / ``compare``) must
return the same verdict on every event pair, regardless of backend
mixing.  This is the oracle that licenses the O(1) fast paths inside
:class:`~repro.clocks.encoded.EncodedClock`.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks import EncodedClock, compare, concurrent, happens_before
from repro.clocks.encoded import encode_events
from repro.testing import Weaver


@st.composite
def paired_computations(draw, max_traces=5, max_steps=40):
    """The same random schedule woven under both clock backends."""
    num_traces = draw(st.integers(min_value=1, max_value=max_traces))
    steps = draw(st.integers(min_value=1, max_value=max_steps))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    weavers = []
    for backend in ("fidge", "encoded"):
        rng = random.Random(seed)
        weaver = Weaver(num_traces, clock_backend=backend)
        pending = []
        for _ in range(steps):
            roll = rng.random()
            trace = rng.randrange(num_traces)
            if roll < 0.4 or num_traces == 1:
                weaver.local(trace, rng.choice("ABC"))
            elif roll < 0.7:
                pending.append(weaver.send(trace))
            elif pending:
                send = pending.pop(rng.randrange(len(pending)))
                choices = [t for t in range(num_traces) if t != send.trace]
                weaver.recv(rng.choice(choices), send)
            else:
                weaver.local(trace)
        weavers.append(weaver)
    return weavers


class TestPredicateEquivalence:
    @given(paired_computations())
    @settings(max_examples=50, deadline=None)
    def test_all_three_predicates_agree(self, weavers):
        full, enc = weavers
        assert len(full.events) == len(enc.events)
        pairs = [
            (a, b, x, y)
            for a, x in zip(full.events, enc.events)
            for b, y in zip(full.events, enc.events)
        ]
        for a, b, x, y in pairs:
            assert isinstance(x.clock, EncodedClock)
            expect = compare(a.clock, a.trace, b.clock, b.trace)
            # encoded vs encoded (the production fast paths)
            assert compare(x.clock, x.trace, y.clock, y.trace) is expect
            # mixed backends (transcode boundaries)
            assert compare(x.clock, x.trace, b.clock, b.trace) is expect
            assert compare(a.clock, a.trace, y.clock, y.trace) is expect
            assert happens_before(x.clock, x.trace, y.clock, y.trace) == \
                happens_before(a.clock, a.trace, b.clock, b.trace)
            assert concurrent(x.clock, x.trace, y.clock, y.trace) == \
                concurrent(a.clock, a.trace, b.clock, b.trace)

    @given(paired_computations(max_steps=30))
    @settings(max_examples=50, deadline=None)
    def test_components_hash_and_equality_agree(self, weavers):
        full, enc = weavers
        for a, x in zip(full.events, enc.events):
            assert x.clock.components == a.clock.components
            assert x.clock == a.clock
            assert a.clock == x.clock
            assert hash(x.clock) == hash(a.clock)

    @given(paired_computations(max_steps=30))
    @settings(max_examples=50, deadline=None)
    def test_transcoded_stream_matches_native_encoding(self, weavers):
        full, enc = weavers
        transcoded, _frame = encode_events(full.events, full.num_traces)
        for native, coded in zip(enc.events, transcoded):
            assert coded.clock.components == native.clock.components
