"""Property-based tests for span-tracer invariants.

Over randomized computations (random process bodies, seeds, trace
counts) the tracer must always produce a structurally valid Chrome
trace: well-nested spans per track, every happens-before flow arrow
pointing forward in simulated time, and event counts that agree with
the pipeline's own accounting (the metrics registry and the matcher's
plain-int counters).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MatcherConfig
from repro.core.monitor import Monitor
from repro.events import EventKind
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SIM_PID, SpanTracer, validate_trace_events
from repro.poet import instrument
from repro.simulation import Kernel
from repro.workloads import message_race_pattern


def run_traced_kernel(num_processes, seed, with_semaphore):
    kernel = Kernel(
        num_processes=num_processes,
        num_semaphores=1 if with_semaphore else 0,
        seed=seed,
        buffer_capacity=3,
    )
    tracer = SpanTracer()
    registry = MetricsRegistry()
    server = instrument(kernel, verify=True, registry=registry, tracer=tracer)
    monitor = Monitor.from_source(
        message_race_pattern(),
        kernel.trace_names(),
        config=MatcherConfig(search_trace_size=128),
        registry=registry,
        tracer=tracer,
    )
    server.connect(monitor)

    def body(p):
        rng = p.rng
        for _ in range(8):
            roll = rng.random()
            if roll < 0.3:
                yield p.emit("E")
            elif roll < 0.6:
                dst = rng.randrange(num_processes)
                if dst != p.pid:
                    yield p.send(dst, payload=(p.pid, rng.random()))
            elif with_semaphore and roll < 0.8:
                yield p.acquire(0)
                yield p.emit("CS")
                yield p.release(0)
            else:
                yield p.sleep(rng.random())

    for pid in range(num_processes):
        kernel.spawn(pid, body)
    kernel.run(max_events=400)
    return kernel, server, monitor, tracer, registry


class TestSpanInvariants:
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=10_000),
        st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_trace_is_structurally_valid(self, num_processes, seed, semaphore):
        _, _, _, tracer, _ = run_traced_kernel(num_processes, seed, semaphore)
        # validate_trace_events raises on ill-nested spans, overlapping
        # sim slices, unmatched flows, or unclosed spans.
        counts = validate_trace_events(tracer.events())
        assert counts["events"] == len(tracer.events())

    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_flow_send_precedes_receive_in_sim_time(self, num_processes, seed):
        _, _, _, tracer, _ = run_traced_kernel(num_processes, seed, True)
        starts = {}
        for event in tracer.events():
            if event.get("ph") == "s":
                starts[event["id"]] = event["args"]["sim_time"]
            elif event.get("ph") == "f":
                sent = starts[event["id"]]  # must already exist
                assert sent <= event["args"]["sim_time"]

    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_sim_slices_agree_with_kernel_accounting(self, num_processes, seed):
        kernel, server, _, tracer, _ = run_traced_kernel(
            num_processes, seed, True
        )
        slices = [e for e in tracer.events() if e.get("ph") == "X"]
        assert len(slices) == server.num_events
        # One slice per instrumented event, on that event's own track.
        per_trace = {}
        for s in slices:
            assert s["pid"] == SIM_PID
            per_trace[s["tid"]] = per_trace.get(s["tid"], 0) + 1
        for trace, count in per_trace.items():
            assert count == len(server.store.trace(trace))

    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_flows_match_message_sends(self, num_processes, seed):
        _, server, _, tracer, _ = run_traced_kernel(num_processes, seed, False)
        sends = sum(
            1
            for trace in range(server.store.num_traces)
            for event in server.store.trace(trace)
            if event.kind is EventKind.SEND
        )
        receives = sum(
            1
            for trace in range(server.store.num_traces)
            for event in server.store.trace(trace)
            if event.kind is EventKind.RECEIVE
        )
        # Every send opens a flow; every receive (whose send was
        # instrumented) closes one.
        assert tracer.flows_started == sends
        assert tracer.flows_finished == receives
        assert tracer.flows_finished <= tracer.flows_started

    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_span_counts_agree_with_registry_counters(
        self, num_processes, seed
    ):
        _, server, monitor, tracer, registry = run_traced_kernel(
            num_processes, seed, True
        )
        events = tracer.events()
        deliver_spans = sum(
            1 for e in events
            if e.get("ph") == "B" and e.get("name") == "poet.deliver"
        )
        search_spans = sum(
            1 for e in events
            if e.get("ph") == "B" and e.get("name") == "matcher.search"
        )
        collected = registry.get("poet_events_collected_total")
        assert deliver_spans == collected.value == server.num_events
        assert search_spans == monitor.matcher.searches_run
        match_instants = sum(
            1 for e in events
            if e.get("ph") == "i" and e.get("name") == "matcher.match"
        )
        assert match_instants == monitor.matcher.matches_found
        begins = sum(1 for e in events if e.get("ph") == "B")
        ends = sum(1 for e in events if e.get("ph") == "E")
        assert begins == ends == tracer.spans_opened
