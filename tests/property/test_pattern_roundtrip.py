"""Property-based round-trip tests for the pattern language.

``parse(render(parse(src)))`` must equal ``parse(src)`` — the unparser
produces canonical source preserving semantics.  Patterns are generated
as random ASTs, rendered, and parsed; the resulting definitions must be
identical, and compilation must yield the same constraint matrices.
"""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.patterns import (
    PatternError,
    PatternTree,
    compile_pattern,
    parse_pattern,
    render_pattern,
)
from repro.patterns.ast import (
    AndExpr,
    AttrVar,
    BinaryExpr,
    ClassDef,
    ClassRef,
    Exact,
    KleeneExpr,
    NotExpr,
    Operator,
    OrExpr,
    PatternDef,
    VarDecl,
    VarRef,
    Wildcard,
    WithinExpr,
)

CLASS_NAMES = ["Alpha", "Beta", "Gamma"]
VAR_NAMES = ["x", "y"]

attr = st.one_of(
    st.just(Wildcard()),
    st.sampled_from([Exact("Send"), Exact("Take_Snapshot"), Exact("a b")]),
    st.sampled_from([AttrVar("1"), AttrVar("2")]),
)

leaf = st.one_of(
    st.sampled_from([ClassRef(n) for n in CLASS_NAMES]),
    st.sampled_from([VarRef(n) for n in VAR_NAMES]),
)

operators = st.sampled_from(
    [Operator.PRECEDES, Operator.CONCURRENT, Operator.LIMITED]
)


@st.composite
def or_exprs(draw):
    # alternatives must be plain, distinct class references
    count = draw(st.integers(2, 3))
    names = draw(st.permutations(CLASS_NAMES))
    return OrExpr(parts=tuple(ClassRef(n) for n in names[:count]))


kleenes = st.builds(
    lambda operand: KleeneExpr(operand=operand),
    st.one_of(leaf, or_exprs()),
)

atoms = st.one_of(leaf, or_exprs(), kleenes)


def exprs(depth):
    if depth == 0:
        return atoms
    sub = exprs(depth - 1)
    return st.one_of(
        atoms,
        st.builds(
            lambda op, l, r: BinaryExpr(op=op, left=l, right=r),
            operators,
            sub,
            sub,
        ),
        st.builds(
            lambda parts: AndExpr(parts=tuple(parts)),
            st.lists(sub, min_size=2, max_size=3),
        ),
        st.builds(
            lambda op, b, d: WithinExpr(operand=op, bound=b, domain=d),
            sub,
            st.integers(0, 50),
            st.sampled_from(["sim", "wall"]),
        ),
    )


@st.composite
def negation_chains(draw):
    # negation is only legal between two '->' anchors, so it gets its
    # own generator: a left-associative PRECEDES chain whose segments
    # alternate anchor / negated class
    anchors = draw(st.lists(leaf, min_size=2, max_size=3))
    chain = anchors[0]
    for anchor in anchors[1:]:
        negated = NotExpr(
            operand=ClassRef(draw(st.sampled_from(CLASS_NAMES)))
        )
        chain = BinaryExpr(op=Operator.PRECEDES, left=chain, right=negated)
        chain = BinaryExpr(op=Operator.PRECEDES, left=chain, right=anchor)
    return chain


@st.composite
def pattern_defs(draw):
    classes = {
        name: ClassDef(
            name=name,
            process=draw(attr),
            etype=draw(attr),
            text=draw(attr),
        )
        for name in CLASS_NAMES
    }
    variables = {
        var: VarDecl(class_name=draw(st.sampled_from(CLASS_NAMES)), var_name=var)
        for var in VAR_NAMES
    }
    expr = draw(st.one_of(exprs(2), negation_chains()))
    return PatternDef(classes=classes, variables=variables, expr=expr)


class TestRoundTrip:
    @given(pattern_defs())
    @settings(max_examples=120, deadline=None)
    def test_parse_render_parse_is_identity(self, definition):
        source = render_pattern(definition)
        reparsed = parse_pattern(source)
        assert reparsed.classes == definition.classes
        assert reparsed.variables == definition.variables
        assert reparsed.expr == definition.expr
        # and the fixpoint holds
        assert render_pattern(reparsed) == source

    @given(pattern_defs())
    @settings(max_examples=80, deadline=None)
    def test_compilation_agrees_after_round_trip(self, definition):
        source = render_pattern(definition)
        names = ["P0", "P1"]

        def matrix(defn):
            compiled = compile_pattern(PatternTree(defn, names))
            return {
                (i, j): compiled.constraint(i, j)
                for i in range(compiled.num_leaves)
                for j in range(compiled.num_leaves)
                if i != j
            }

        try:
            original = matrix(definition)
        except PatternError:
            # contradictory random pattern: the reparsed one must
            # contradict identically
            reparsed = parse_pattern(source)
            try:
                matrix(reparsed)
                raise AssertionError("round trip lost a contradiction")
            except PatternError:
                return
        assert matrix(parse_pattern(source)) == original
