"""Property tests for the representative subset's paper invariants.

Section IV-B: the subset stores at most ``k * n`` matches (each stored
match covers at least one previously uncovered ``(pattern event,
trace)`` slot), and every covered slot is *occupied* — some event of
that leaf was stored on that trace.  Random workloads are driven
through the matcher with ``paranoid`` set, which additionally asserts
the bound inside ``updateSubset`` itself.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MatcherConfig, OCEPMatcher, SweepMode
from repro.patterns import PatternTree, compile_pattern, parse_pattern
from repro.testing import random_computation

PATTERN_SOURCES = [
    "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;",
    "A := ['', A, '']; B := ['', B, '']; pattern := A || B;",
    "A := ['', A, '']; B := ['', B, '']; pattern := A ~> B;",
    "A := ['', A, '']; B := ['', B, '']; C := ['', C, ''];"
    "pattern := (A -> B) /\\ (B || C);",
    "A := [$1, A, '']; B := [$1, B, '']; pattern := A -> B;",
]


@st.composite
def workload(draw):
    num_traces = draw(st.integers(min_value=2, max_value=4))
    steps = draw(st.integers(min_value=5, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    pattern_source = draw(st.sampled_from(PATTERN_SOURCES))
    prune = draw(st.booleans())
    weaver = random_computation(seed, num_traces=num_traces, steps=steps)
    names = [f"P{i}" for i in range(num_traces)]
    compiled = compile_pattern(PatternTree(parse_pattern(pattern_source), names))
    return weaver, compiled, prune


class TestSubsetInvariants:
    @given(workload())
    @settings(max_examples=80, deadline=None)
    def test_bound_and_covered_slots_occupied(self, data):
        weaver, compiled, prune = data
        matcher = OCEPMatcher(
            compiled,
            weaver.num_traces,
            MatcherConfig(prune_history=prune, paranoid=True),
        )
        for event in weaver.events:
            matcher.on_event(event)
            # k*n bound (paper, Section IV-B) holds at every prefix,
            # not just at the end of the run.
            assert matcher.subset.check_bound(), (
                f"subset holds {len(matcher.subset)} matches, bound is "
                f"{compiled.num_leaves * weaver.num_traces}"
            )

        # Every covered slot is occupied: the covering match stored an
        # event of that leaf on that trace, and pruning only ever
        # replaces same-(leaf, trace) entries, never empties them.
        occupied = {
            (leaf.leaf_id, trace)
            for leaf in matcher.history.histories
            for trace in leaf.traces_with_events()
        }
        assert matcher.subset.covered_slots <= occupied

        # Each stored match covered a then-new slot, and the recorded
        # new_slots partition the covered set.
        seen = set()
        for stored in matcher.subset.matches:
            assert stored.new_slots, "stored match covered nothing new"
            assert not (set(stored.new_slots) & seen)
            seen.update(stored.new_slots)
        assert seen == matcher.subset.covered_slots

    @given(workload())
    @settings(max_examples=30, deadline=None)
    def test_exhaustive_sweep_respects_bound_too(self, data):
        weaver, compiled, prune = data
        matcher = OCEPMatcher(
            compiled,
            weaver.num_traces,
            MatcherConfig(
                sweep=SweepMode.EXHAUSTIVE,
                prune_history=prune,
                paranoid=True,
            ),
        )
        for event in weaver.events:
            matcher.on_event(event)
        assert matcher.subset.check_bound()
