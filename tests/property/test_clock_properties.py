"""Property-based tests for vector clocks and causality.

The generators build random-but-valid computations through the
:class:`~repro.testing.Weaver`, so every generated clock is one a real
execution could produce — the properties then assert the axioms the
whole library rests on.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks import VectorClock
from repro.poet import is_linearization, linearize
from repro.testing import Weaver


@st.composite
def computations(draw, max_traces=5, max_steps=40):
    """A random computation as a Weaver with its events."""
    num_traces = draw(st.integers(min_value=1, max_value=max_traces))
    steps = draw(st.integers(min_value=1, max_value=max_steps))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = random.Random(seed)
    weaver = Weaver(num_traces)
    pending = []
    for _ in range(steps):
        roll = rng.random()
        trace = rng.randrange(num_traces)
        if roll < 0.4 or num_traces == 1:
            weaver.local(trace, rng.choice("ABC"))
        elif roll < 0.7:
            pending.append(weaver.send(trace))
        elif pending:
            send = pending.pop(rng.randrange(len(pending)))
            choices = [t for t in range(num_traces) if t != send.trace]
            weaver.recv(rng.choice(choices), send)
        else:
            weaver.local(trace)
    return weaver


class TestStrictPartialOrder:
    @given(computations())
    @settings(max_examples=60, deadline=None)
    def test_irreflexive(self, weaver):
        for event in weaver.events:
            assert not event.happens_before(event)

    @given(computations())
    @settings(max_examples=40, deadline=None)
    def test_antisymmetric(self, weaver):
        events = weaver.events
        for a in events:
            for b in events:
                if a != b and a.happens_before(b):
                    assert not b.happens_before(a)

    @given(computations(max_steps=25))
    @settings(max_examples=30, deadline=None)
    def test_transitive(self, weaver):
        events = weaver.events
        for a in events:
            for b in events:
                if not a.happens_before(b):
                    continue
                for c in events:
                    if b.happens_before(c):
                        assert a.happens_before(c)

    @given(computations())
    @settings(max_examples=40, deadline=None)
    def test_trichotomy_with_concurrency(self, weaver):
        """Every distinct pair is exactly one of: before, after,
        concurrent."""
        events = weaver.events
        for i, a in enumerate(events):
            for b in events[i + 1 :]:
                relations = [
                    a.happens_before(b),
                    b.happens_before(a),
                    a.concurrent_with(b),
                ]
                assert sum(relations) == 1


class TestClockCharacterisation:
    @given(computations())
    @settings(max_examples=40, deadline=None)
    def test_happens_before_iff_clock_less(self, weaver):
        """a -> b <=> Va < Vb (the fundamental vector-clock theorem)."""
        events = weaver.events
        for a in events:
            for b in events:
                if a == b:
                    continue
                assert a.happens_before(b) == (a.clock < b.clock)

    @given(computations())
    @settings(max_examples=40, deadline=None)
    def test_same_trace_events_totally_ordered(self, weaver):
        events = weaver.events
        for a in events:
            for b in events:
                if a != b and a.trace == b.trace:
                    assert a.happens_before(b) or b.happens_before(a)


class TestClockAlgebra:
    clock_lists = st.lists(
        st.integers(min_value=0, max_value=50), min_size=1, max_size=6
    )

    @given(clock_lists, clock_lists)
    def test_merge_is_commutative_and_upper_bound(self, xs, ys):
        if len(xs) != len(ys):
            ys = (ys * len(xs))[: len(xs)]
        a, b = VectorClock(xs), VectorClock(ys)
        merged = a.merge(b)
        assert merged == b.merge(a)
        assert a <= merged and b <= merged

    @given(clock_lists)
    def test_merge_idempotent(self, xs):
        clock = VectorClock(xs)
        assert clock.merge(clock) == clock

    @given(clock_lists, st.integers(min_value=0, max_value=5))
    def test_tick_strictly_increases(self, xs, trace):
        clock = VectorClock(xs)
        trace = trace % len(xs)
        assert clock < clock.tick(trace)


class TestLinearization:
    @given(computations())
    @settings(max_examples=50, deadline=None)
    def test_weaver_stream_is_linearization(self, weaver):
        assert is_linearization(weaver.events, weaver.num_traces)

    @given(computations(), st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_linearize_repairs_any_shuffle(self, weaver, rng):
        shuffled = list(weaver.events)
        rng.shuffle(shuffled)
        assert is_linearization(linearize(shuffled), weaver.num_traces)
