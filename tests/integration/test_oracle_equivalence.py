"""Randomized equivalence of the OCEP engine against the brute-force oracle.

This is the correctness centrepiece: for a corpus of random small
computations and a battery of patterns covering every operator,

* EXHAUSTIVE mode must report *exactly* the oracle's match set;
* COVERAGE mode must never report a non-match (no false positives),
  must report at least one match for any trigger that participates in
  one (detection completeness), and its covered slots must be a subset
  of the oracle's achievable slots;
* the k*n subset bound must hold throughout.
"""


import pytest

from repro import Kernel, MatcherConfig, Monitor, SweepMode, instrument
from repro.core import enumerate_matches
from repro.core.oracle import covered_slots
from repro.poet import RecordingClient

PATTERNS = [
    ("precedence", "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;"),
    ("concurrency", "A := ['', A, '']; B := ['', B, '']; pattern := A || B;"),
    (
        "fan-out",
        "A := ['', A, '']; B := ['', B, '']; C := ['', C, ''];"
        "pattern := (A -> B) /\\ (A -> C);",
    ),
    (
        "variable-fan-out",
        "A := ['', A, '']; B := ['', B, '']; C := ['', C, '']; A $x;"
        "pattern := ($x -> B) /\\ ($x -> C);",
    ),
    (
        "compound-concurrent",
        "A := ['', A, '']; B := ['', B, '']; C := ['', C, ''];"
        "pattern := (A -> B) || C;",
    ),
    (
        "same-process",
        "A := [$1, A, '']; B := [$1, B, '']; pattern := A -> B;",
    ),
    ("partner", "S := ['', Send, '']; R := ['', Receive, '']; pattern := S <> R;"),
    ("limited", "A := ['', A, '']; B := ['', B, '']; pattern := A ~> B;"),
    (
        "compound-chain",
        "A := ['', A, '']; B := ['', B, '']; C := ['', C, ''];"
        "pattern := A -> B -> C;",
    ),
    (
        "mixed",
        "A := ['', A, '']; B := ['', B, '']; C := ['', C, ''];"
        "pattern := (A || B) /\\ (B -> C);",
    ),
]


def random_events(seed, num_processes=4, steps=6, max_events=150):
    """A random small computation's recorded event stream."""
    kernel = Kernel(num_processes=num_processes, seed=seed, buffer_capacity=None)
    server = instrument(kernel, verify=True)
    recorder = RecordingClient()
    server.connect(recorder)

    def body(p):
        rng = p.rng
        for _ in range(steps):
            roll = rng.random()
            if roll < 0.4:
                yield p.emit(rng.choice("ABC"), rng.choice(["", "t"]))
            elif roll < 0.75:
                dst = rng.randrange(num_processes)
                if dst != p.pid:
                    yield p.send(dst)
            else:
                yield p.sleep(rng.random())

    for pid in range(num_processes):
        kernel.spawn(pid, body)
    kernel.run(max_events=max_events)
    return recorder.events, kernel.trace_names()


def canonical(assignment_items):
    return tuple(sorted((lid, e.event_id) for lid, e in assignment_items))


@pytest.mark.parametrize("name,source", PATTERNS, ids=[n for n, _ in PATTERNS])
def test_exhaustive_equals_oracle(name, source):
    for seed in range(12):
        events, names = random_events(seed)
        monitor = Monitor.from_source(
            source,
            names,
            config=MatcherConfig(
                sweep=SweepMode.EXHAUSTIVE, prune_history=False, paranoid=True
            ),
        )
        for event in events:
            monitor.on_event(event)
        got = {canonical(r.assignment) for r in monitor.reports}
        want = {canonical(m.items()) for m in enumerate_matches(monitor.pattern, events)}
        assert got == want, f"{name} seed={seed}"


@pytest.mark.parametrize("name,source", PATTERNS, ids=[n for n, _ in PATTERNS])
def test_coverage_mode_is_sound_and_detects(name, source):
    """Unpruned coverage mode: reports are exactly oracle matches, slots
    are achievable, detection never misses, and the k*n bound holds."""
    for seed in range(12):
        events, names = random_events(seed)
        monitor = Monitor.from_source(
            source, names, config=MatcherConfig(prune_history=False)
        )
        for event in events:
            monitor.on_event(event)
        oracle = enumerate_matches(monitor.pattern, events)
        oracle_set = {canonical(m.items()) for m in oracle}
        oracle_slots = covered_slots(oracle)

        for report in monitor.reports:
            assert canonical(report.assignment) in oracle_set
        assert monitor.subset.covered_slots <= oracle_slots

        if oracle_set:
            assert monitor.reports, f"{name} seed={seed}: all matches missed"
        else:
            assert not monitor.reports

        assert monitor.subset.check_bound()


@pytest.mark.parametrize(
    "name,source", PATTERNS[:7], ids=[n for n, _ in PATTERNS[:7]]
)
def test_pruned_coverage_mode_reports_are_causally_valid(name, source):
    """With the O(1) history pruning on (the default), every report must
    still be a true match of the pattern over the full event set, and
    detection must still fire whenever the oracle has matches (pruning
    keeps one interchangeable representative, never zero)."""
    for seed in range(12):
        events, names = random_events(seed)
        monitor = Monitor.from_source(source, names)
        for event in events:
            monitor.on_event(event)
        oracle_set = {
            canonical(m.items())
            for m in enumerate_matches(monitor.pattern, events)
        }
        for report in monitor.reports:
            assert canonical(report.assignment) in oracle_set
        if oracle_set:
            assert monitor.reports, f"{name} seed={seed}: all matches missed"
        assert monitor.subset.check_bound()


@pytest.mark.parametrize("name,source", PATTERNS[:6], ids=[n for n, _ in PATTERNS[:6]])
def test_backjumping_does_not_lose_matches(name, source):
    """With and without the bt-table back-jump, exhaustive enumeration
    must agree (the jump only skips provably dead search regions)."""
    for seed in range(8):
        events, names = random_events(seed)
        results = []
        for backjump in (True, False):
            monitor = Monitor.from_source(
                source,
                names,
                config=MatcherConfig(
                    sweep=SweepMode.EXHAUSTIVE,
                    prune_history=False,
                    backjump=backjump,
                ),
            )
            for event in events:
                monitor.on_event(event)
            results.append({canonical(r.assignment) for r in monitor.reports})
        assert results[0] == results[1], f"{name} seed={seed}"
