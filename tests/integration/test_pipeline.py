"""Integration tests: kernel -> POET -> monitor, dump/replay, baselines."""

import pytest

from repro import (
    Kernel,
    MatcherConfig,
    Monitor,
    SweepMode,
    dump_events,
    instrument,
    load_events,
)
from repro.poet import RecordingClient, is_linearization

AB = "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;"


def _producer_consumer(seed=0):
    """Producer emits A's and messages; consumer emits B's after."""
    kernel = Kernel(num_processes=2, seed=seed, buffer_capacity=4)
    server = instrument(kernel, verify=True)

    def producer(p):
        for i in range(10):
            yield p.emit("A", text=str(i))
            yield p.send(1, payload=i)

    def consumer(p):
        for _ in range(10):
            yield p.receive()
            yield p.emit("B")

    kernel.spawn(0, producer)
    kernel.spawn(1, consumer)
    return kernel, server


class TestLivePipeline:
    def test_online_monitoring_end_to_end(self):
        kernel, server = _producer_consumer()
        monitor = Monitor.from_source(AB, kernel.trace_names())
        server.connect(monitor)
        result = kernel.run()
        assert not result.deadlocked
        assert monitor.reports
        for report in monitor.reports:
            a, b = report.as_dict()[0], report.as_dict()[1]
            assert a.happens_before(b)
        assert monitor.subset.check_bound()

    def test_multiple_clients_see_identical_stream(self):
        kernel, server = _producer_consumer()
        rec1, rec2 = RecordingClient(), RecordingClient()
        server.connect(rec1)
        server.connect(rec2)
        kernel.run()
        assert rec1.events == rec2.events
        assert is_linearization(rec1.events, kernel.num_traces)


class TestDumpReplayEquivalence:
    def test_replayed_stream_gives_identical_matches(self, tmp_path):
        """The paper's methodology: collect once, dump, reload, re-run."""
        kernel, server = _producer_consumer(seed=5)
        recorder = RecordingClient()
        server.connect(recorder)
        live_monitor = Monitor.from_source(AB, kernel.trace_names())
        server.connect(live_monitor)
        kernel.run()

        path = tmp_path / "run.poet"
        dump_events(path, recorder.events, kernel.num_traces, kernel.trace_names())
        events, num_traces, names = load_events(path)

        replay_monitor = Monitor.from_source(AB, names)
        for event in events:
            replay_monitor.on_event(event)

        live = [r.assignment for r in live_monitor.reports]
        replayed = [r.assignment for r in replay_monitor.reports]
        assert [
            tuple((lid, e.event_id) for lid, e in a) for a in live
        ] == [tuple((lid, e.event_id) for lid, e in a) for a in replayed]

    def test_replay_is_deterministic_across_repetitions(self, tmp_path):
        kernel, server = _producer_consumer(seed=9)
        recorder = RecordingClient()
        server.connect(recorder)
        kernel.run()

        def run_once():
            monitor = Monitor.from_source(AB, kernel.trace_names())
            for event in recorder.events:
                monitor.on_event(event)
            return [
                tuple((lid, e.event_id) for lid, e in r.assignment)
                for r in monitor.reports
            ]

        assert run_once() == run_once() == run_once()


class TestConfigurationMatrix:
    """The same computation must yield the same detections under every
    optimisation configuration — the optimisations change cost, not
    answers."""

    @pytest.mark.parametrize("restrict", [True, False])
    @pytest.mark.parametrize("backjump", [True, False])
    @pytest.mark.parametrize("prune", [True, False])
    def test_detection_invariant_under_config(self, restrict, backjump, prune):
        kernel, server = _producer_consumer(seed=11)
        config = MatcherConfig(
            sweep=SweepMode.FIRST,
            restrict_domains=restrict,
            backjump=backjump,
            prune_history=prune,
            paranoid=True,
        )
        monitor = Monitor.from_source(AB, kernel.trace_names(), config=config)
        server.connect(monitor)
        kernel.run()
        # every B completes at least one match: 10 triggers, 10 reports
        assert len(monitor.reports) == 10
