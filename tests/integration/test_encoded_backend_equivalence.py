"""Matcher-output identity across clock backends.

The encoded timestamp scheme claims to be *observably identical* to
full Fidge/Mattern clocks.  Here the claim is checked where it matters:
the whole Pipeline, on every case-study workload, over seeds 0..9 —
match signatures (the ``(leaf, trace, index)`` triples of every
reported match), representative-subset sizes, and event counts must be
bit-identical between the two backends, live and on replay.
"""

import pytest

from repro.clocks import EncodedClock
from repro.engine import CASE_STUDY_NAMES, CASES, Pipeline

SEEDS = list(range(10))
MAX_EVENTS = 1200
TRACES = 6


def _run_live(case, seed, backend):
    pipeline = Pipeline.for_case(
        case, traces=TRACES, seed=seed, clock_backend=backend
    )
    monitor = pipeline.watch_case()
    result = pipeline.run(max_events=MAX_EVENTS)
    return pipeline, monitor, result


@pytest.mark.parametrize("case", CASE_STUDY_NAMES)
def test_live_match_output_is_bit_identical(case):
    for seed in SEEDS:
        _, mon_full, res_full = _run_live(case, seed, "fidge")
        pipe_enc, mon_enc, res_enc = _run_live(case, seed, "encoded")
        assert res_enc.num_events == res_full.num_events, seed
        assert res_enc.signatures() == res_full.signatures(), seed
        stats_full, stats_enc = mon_full.stats(), mon_enc.stats()
        assert stats_enc.matches_reported == stats_full.matches_reported
        assert stats_enc.subset_size == stats_full.subset_size
        assert stats_enc.history_size == stats_full.history_size
        # the encoded pipeline really ran on encoded stamps + SoA store
        assert type(pipe_enc.server.store).__name__ == "ArrayEventStore"
        sample = pipe_enc.server.store.get(
            pipe_enc.server.store.materialize(0, 1).event_id
        )
        assert isinstance(sample.clock, EncodedClock)


@pytest.mark.parametrize("case", CASE_STUDY_NAMES)
def test_replay_transcode_is_bit_identical(case):
    for seed in SEEDS[:4]:
        source = Pipeline.for_case(case, traces=TRACES, seed=seed)
        recorder = source.record()
        source.watch_case()
        source.run(max_events=MAX_EVENTS)
        baseline = source.dispatcher.signatures()

        replayed = Pipeline.replay(
            recorder.events,
            source.trace_names,
            verify=True,
            clock_backend="encoded",
        )
        replayed.watch(case, CASES[case].pattern(TRACES))
        result = replayed.run()
        assert result.signatures()[case] == baseline[case], seed
        assert result.num_events == len(recorder.events)


def test_traffic_case_also_identical():
    for seed in SEEDS[:3]:
        _, _, res_full = _run_live("traffic", seed, "fidge")
        _, _, res_enc = _run_live("traffic", seed, "encoded")
        assert res_enc.signatures() == res_full.signatures(), seed
