"""Integration tests: fault injection, hold-back repair, quarantine,
and the chaos matrix end to end."""

import pytest

from repro import Kernel, Monitor, MultiMonitor, instrument
from repro.poet import RecordingClient
from repro.poet.holdback import HoldbackBuffer
from repro.resilience import (
    DEFAULT_PLANS,
    FaultInjector,
    FaultPlan,
    run_fault_matrix,
)

AB = "A := ['', A, '']; B := ['', B, '']; pattern := A -> B;"


def _producer_consumer(seed=0):
    kernel = Kernel(num_processes=2, seed=seed, buffer_capacity=4)
    server = instrument(kernel, verify=True)

    def producer(p):
        for i in range(10):
            yield p.emit("A", text=str(i))
            yield p.send(1, payload=i)

    def consumer(p):
        for _ in range(10):
            yield p.receive()
            yield p.emit("B")

    kernel.spawn(0, producer)
    kernel.spawn(1, consumer)
    return kernel, server


def _recorded_stream(seed=0):
    kernel, server = _producer_consumer(seed=seed)
    recorder = RecordingClient()
    server.connect(recorder)
    kernel.run()
    return recorder.events, kernel.trace_names()


class TestFaultyPipeline:
    """Kernel -> injector -> hold-back -> monitor equals the clean run."""

    @pytest.mark.parametrize(
        "plan",
        [FaultPlan.reorder(0.3), FaultPlan.delay(0.2),
         FaultPlan.duplicate(0.3)],
        ids=lambda p: p.kind,
    )
    def test_monitor_behind_holdback_matches_clean_run(self, plan):
        events, names = _recorded_stream(seed=3)
        clean = Monitor.from_source(AB, names)
        for e in events:
            clean.on_event(e)

        shielded = Monitor.from_source(AB, names)
        buffer = HoldbackBuffer(len(names), shielded.on_event)
        injector = FaultInjector(plan, buffer.on_event, seed=4)
        for e in events:
            injector.feed(e)
        injector.flush()
        assert buffer.flush() == []
        assert shielded.subset.signature() == clean.subset.signature()
        assert len(shielded.reports) == len(clean.reports)

    def test_injector_wired_as_live_server_front(self):
        """The injector can sit between the kernel's delivery and a
        verifying server's collect without breaking causal order, since
        the hold-back buffer repairs the stream in between."""
        from repro.poet import POETServer

        events, names = _recorded_stream(seed=6)
        server = POETServer(len(names), names, verify=True)
        monitor = Monitor.from_source(AB, names)
        server.connect(monitor)
        buffer = HoldbackBuffer(len(names), server.collect)
        injector = FaultInjector(
            FaultPlan.reorder(0.4), buffer.on_event, seed=1
        )
        for e in events:
            injector.feed(e)
        injector.flush()
        assert buffer.flush() == []
        assert server.num_events == len(events)
        assert monitor.reports


class TestChaosMatrix:
    def test_full_matrix_on_recorded_stream(self):
        events, names = _recorded_stream(seed=2)
        report = run_fault_matrix(
            events, AB, names, seeds=range(3), stall_watermark=8
        )
        assert report.ok, report.summary()
        kinds = {run.kind for run in report.runs}
        assert kinds == {plan.kind for plan in DEFAULT_PLANS}
        # Faults were genuinely injected somewhere in the matrix.
        assert any(
            run.injected > 0 and run.kind in ("reorder", "delay", "duplicate")
            for run in report.runs
        )

    def test_drop_cells_detect_or_match(self):
        events, names = _recorded_stream(seed=2)
        report = run_fault_matrix(
            events, AB, names,
            plans=[FaultPlan(kind="drop", probability=0.3, max_faults=1)],
            seeds=range(5), stall_watermark=4,
        )
        assert report.ok, report.summary()
        dropped_cells = [r for r in report.runs if r.injected > 0]
        assert dropped_cells, "no cell injected a drop"
        for run in dropped_cells:
            assert run.stalled or run.pending > 0

    def test_report_serializes(self):
        import json

        events, names = _recorded_stream(seed=2)
        report = run_fault_matrix(
            events, AB, names,
            plans=[FaultPlan.reorder()], seeds=[0],
        )
        document = json.loads(json.dumps(report.to_dict()))
        assert document["num_events"] == len(events)
        assert document["runs"][0]["kind"] == "reorder"

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            run_fault_matrix([], AB, ["P0", "P1"])


class TestQuarantine:
    def test_failing_pattern_monitor_is_isolated(self):
        events, names = _recorded_stream(seed=1)
        multi = MultiMonitor(names)
        multi.watch("good", AB)
        bad = multi.watch("bad", AB)

        fail_at = len(events) // 2
        original = bad.matcher.on_event
        calls = {"n": 0}

        def exploding(event):
            calls["n"] += 1
            if calls["n"] == fail_at:
                raise RuntimeError("matcher corrupted")
            return original(event)

        bad.matcher.on_event = exploding

        for e in events:
            multi.on_event(e)  # must not raise

        assert multi.is_quarantined("bad")
        assert not multi.is_quarantined("good")
        assert multi.quarantined_total == 1
        assert "matcher corrupted" in multi.quarantine_report()["bad"]
        # The healthy pattern saw the whole stream...
        assert multi["good"].matcher.events_processed == len(events)
        # ...the failed one froze at the failure and stayed readable.
        assert multi["bad"].matcher.events_processed == fail_at - 1
        assert multi["bad"].stats().events_seen == fail_at - 1

    def test_quarantined_monitor_counted_in_registry(self):
        from repro.obs import MetricsRegistry

        events, names = _recorded_stream(seed=1)
        registry = MetricsRegistry()
        multi = MultiMonitor(names, registry=registry)
        bad = multi.watch("bad", AB)
        bad.matcher.on_event = lambda event: (_ for _ in ()).throw(
            RuntimeError("dead on arrival")
        )
        for e in events[:3]:
            multi.on_event(e)
        snapshot = {
            m.name: m.value
            for m in registry.metrics()
            if m.kind != "histogram"
        }
        assert snapshot["ocep_multi_quarantined_total"] == 1

    def test_server_survives_when_multi_absorbs_failure(self):
        """End to end: POETServer keeps a verified stream flowing while
        MultiMonitor quarantines a poisoned pattern."""
        kernel, server = _producer_consumer(seed=7)
        multi = MultiMonitor(kernel.trace_names())
        multi.watch("good", AB)
        bad = multi.watch("bad", AB)
        bad.matcher.on_event = lambda event: (_ for _ in ()).throw(
            RuntimeError("poisoned")
        )
        server.connect(multi)
        result = kernel.run()
        assert not result.deadlocked
        assert multi.is_quarantined("bad")
        assert multi["good"].reports
        assert server.delivery_errors == 0  # the failure never escaped
