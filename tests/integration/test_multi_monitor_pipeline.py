"""Integration: MultiMonitor over live workloads, with tooling round trips."""

from repro import MultiMonitor
from repro.analysis import compute_metrics, render_diagram, to_dot
from repro.poet import RecordingClient
from repro.workloads import (
    build_traffic_light,
    traffic_light_pattern,
)

HANDSHAKE = """
Grant := [P0, Send, ''];
Taken := ['', Receive, ''];
pattern := Grant <> Taken;
"""


class TestTrafficLightPipeline:
    def _run(self, fault_probability, seed=4):
        workload = build_traffic_light(
            num_lights=4,
            seed=seed,
            cycles=30,
            fault_probability=fault_probability,
            verify_delivery=True,
        )
        multi = MultiMonitor(workload.kernel.trace_names())
        multi.watch("conflict", traffic_light_pattern())
        multi.watch("handshake", HANDSHAKE)
        workload.server.connect(multi)
        recorder = RecordingClient()
        workload.server.connect(recorder)
        result = workload.run()
        assert not result.deadlocked
        return workload, multi, recorder

    def test_conflicts_iff_faults(self):
        faulty, multi_faulty, _ = self._run(fault_probability=0.2)
        assert faulty.faults
        assert multi_faulty["conflict"].reports

        clean, multi_clean, _ = self._run(fault_probability=0.0)
        assert not clean.faults
        assert not multi_clean["conflict"].reports
        # the routine pattern matches in both runs
        assert multi_clean["handshake"].reports

    def test_handshake_partners_are_real(self):
        _, multi, _ = self._run(fault_probability=0.1)
        for report in multi["handshake"].reports:
            grant, taken = report.as_dict().values()
            assert grant.is_partner_of(taken)

    def test_tooling_round_trips_on_the_stream(self):
        workload, multi, recorder = self._run(fault_probability=0.2)
        events = recorder.events

        metrics = compute_metrics(events, workload.num_traces)
        assert metrics.num_events == len(events)
        assert metrics.num_messages > 0
        assert 0.0 <= metrics.concurrency_ratio <= 1.0

        highlight = None
        if multi["conflict"].reports:
            highlight = list(multi["conflict"].reports[0].as_dict().values())
        diagram = render_diagram(
            events[:40],
            workload.num_traces,
            workload.kernel.trace_names(),
            highlight=[e for e in (highlight or []) if e in events[:40]],
        )
        assert "P0" in diagram

        dot = to_dot(events[:40], workload.num_traces,
                     workload.kernel.trace_names())
        assert dot.startswith("digraph")
        assert dot.count("->") > 0
