"""Integration: the staged pipeline engine end to end.

The headline equivalences of the engine PR:

* one sharded single pass over a recorded stream produces exactly the
  matches, subsets, and per-monitor counters of N independent
  single-pattern runs (per-event path);
* a pipeline can checkpoint, "crash", restore, and re-consume the full
  recorded stream, converging bit-identically to the uninterrupted run
  (seeds 0..9);
* the resilience stages compose: a delay plan repaired by the
  hold-back buffer inside the pipeline converges to the fault-free
  oracle.
"""

import json

import pytest

from repro.engine import Pipeline, case_patterns
from repro.resilience.faults import FaultPlan

TRACES = 4


def _record_case(name, seed, max_events):
    """One case study's recorded stream (the true collection order)."""
    pipeline = Pipeline.for_case(name, traces=TRACES, seed=seed)
    recorder = pipeline.record()
    pipeline.run(max_events=max_events)
    return recorder.events, list(pipeline.trace_names)


class TestShardedEquivalence:
    @pytest.mark.parametrize("case", ["race", "deadlock"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_single_pass_equals_independent_runs(self, case, seed):
        events, names = _record_case(case, seed, max_events=1500)
        patterns = case_patterns(TRACES)

        sharded = Pipeline.replay(events, names)
        for name, source in patterns.items():
            sharded.watch(name, source)
        sharded_result = sharded.run()  # batch-first delivery

        for name, source in patterns.items():
            independent = Pipeline.replay(events, names)
            monitor = independent.watch(name, source)
            independent.run(batch_size=1)  # the per-event path

            shard = sharded_result[name]
            assert shard.reports == monitor.reports
            assert (
                shard.subset.signature() == monitor.subset.signature()
            )
            assert shard.stats() == monitor.stats()

    def test_single_pass_sees_each_event_once(self):
        events, names = _record_case("race", 0, max_events=1000)
        sharded = Pipeline.replay(events, names)
        for name, source in case_patterns(TRACES).items():
            sharded.watch(name, source)
        result = sharded.run()
        assert result.num_events == len(events)
        assert sharded.dispatcher.events_seen == len(events)
        for _, monitor in sharded.dispatcher:
            assert monitor.stats().events_seen == len(events)


class TestPipelineCrashResume:
    @pytest.mark.parametrize("seed", range(10))
    def test_checkpoint_crash_resume_converges(self, seed):
        events, names = _record_case("race", seed, max_events=600)
        patterns = {
            name: source
            for name, source in case_patterns(TRACES).items()
            if name in ("race", "atomicity")
        }
        crash_at = len(events) // 2

        uninterrupted = Pipeline.replay(events, names)
        for name, source in patterns.items():
            uninterrupted.watch(name, source)
        baseline = uninterrupted.run()

        prefix = Pipeline.replay(events[:crash_at], names)
        for name, source in patterns.items():
            prefix.watch(name, source)
        crashed = prefix.run()
        # What survives a real crash is the serialized snapshot.
        state = json.loads(json.dumps(crashed.checkpoint()))

        recovered = Pipeline.replay(events, names)
        for name, source in patterns.items():
            recovered.watch(name, source)
        recovered.restore(state)
        resumed = recovered.run()

        assert resumed.signatures() == baseline.signatures()
        assert resumed.stats() == baseline.stats()
        for name in patterns:
            assert (
                resumed[name].matcher.events_processed
                == baseline[name].matcher.events_processed
            )


class TestResilienceStages:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_delay_plan_repaired_to_oracle(self, seed):
        events, names = _record_case("race", 4, max_events=800)

        oracle = Pipeline.replay(events, names)
        oracle_monitor = oracle.watch("race", case_patterns(TRACES)["race"])
        oracle.run()

        faulty = Pipeline.replay(events, names)
        monitor = faulty.watch("race", case_patterns(TRACES)["race"])
        faulty.with_faults(FaultPlan.delay(), seed=seed)
        faulty.with_holdback(stall_watermark=32)
        result = faulty.run()

        assert result.leftover == []
        assert not result.stalled
        assert (
            monitor.subset.signature() == oracle_monitor.subset.signature()
        )

    def test_drop_plan_detected_as_stall(self):
        events, names = _record_case("race", 5, max_events=800)
        pipeline = Pipeline.replay(events, names)
        pipeline.watch("race", case_patterns(TRACES)["race"])
        pipeline.with_faults(FaultPlan.drop(), seed=1)
        pipeline.with_holdback(stall_watermark=32)
        result = pipeline.run()
        if result.injector.dropped_total:
            assert result.stalled or result.leftover
            dropped = {
                (did.trace, did.index)
                for did in result.injector.dropped_ids
            }
            missing = {
                (mid.trace, mid.index)
                for mid in result.holdback.missing_predecessors()
            }
            assert dropped <= missing


class TestGracefulShutdown:
    """Satellite of the cluster PR: SIGTERM/``KeyboardInterrupt`` stop
    the drive at a delivery boundary instead of unwinding, and — when
    the run was recorded — the result carries a final whole-deployment
    checkpoint that recovers the run exactly."""

    def _interrupting_pipeline(self, events, names, after_matches):
        count = {"matches": 0}

        def interrupt(_name, _report):
            count["matches"] += 1
            if count["matches"] >= after_matches:
                raise KeyboardInterrupt

        pipeline = Pipeline.replay(events, names).on_match(interrupt)
        for name, source in case_patterns(TRACES).items():
            pipeline.watch(name, source)
        return pipeline

    def test_interrupt_is_graceful_and_checkpointed(self):
        events, names = _record_case("race", 3, max_events=600)
        pipeline = self._interrupting_pipeline(events, names, 15)
        pipeline.record()
        result = pipeline.run(batch_size=64)  # does NOT raise
        assert result.interrupted
        assert result.final_checkpoint is not None
        assert result.final_checkpoint["format"].startswith("ocep-sharded")

    def test_interrupt_without_recording_has_no_checkpoint(self):
        events, names = _record_case("race", 3, max_events=600)
        result = self._interrupting_pipeline(events, names, 15).run(
            batch_size=64
        )
        assert result.interrupted
        assert result.final_checkpoint is None

    @pytest.mark.parametrize("seed", [0, 6])
    def test_interrupted_checkpoint_recovers_exactly(self, seed):
        events, names = _record_case("race", seed, max_events=600)

        uninterrupted = Pipeline.replay(events, names)
        for name, source in case_patterns(TRACES).items():
            uninterrupted.watch(name, source)
        baseline = uninterrupted.run()

        pipeline = self._interrupting_pipeline(events, names, 10)
        pipeline.record()
        cut = pipeline.run(batch_size=64)
        assert cut.interrupted
        state = json.loads(json.dumps(cut.final_checkpoint))

        recovered = Pipeline.replay(events, names)
        for name, source in case_patterns(TRACES).items():
            recovered.watch(name, source)
        recovered.restore(state)
        resumed = recovered.run()
        assert resumed.signatures() == baseline.signatures()
        assert resumed.stats() == baseline.stats()
        assert not resumed.interrupted
