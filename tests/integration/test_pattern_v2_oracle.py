"""Oracle equivalence for the v2 pattern operators.

Every new operator — Kleene closure, time windows (both domains),
negation, disjunction — and their interactions are checked against the
brute-force oracle on randomized Weaver schedules, seeds 0..9:

* EXHAUSTIVE-mode matcher output (unpruned histories, as in the
  legacy oracle-equivalence suite) must equal the oracle's full match
  enumeration (as assignment sets), with the planner on AND off;
* every reported Kleene group must equal the oracle's maximal-group
  expansion;
* COVERAGE-mode reports must individually verify against the full
  event pool.
"""

from __future__ import annotations

import pytest

from repro.core import Monitor
from repro.core.matcher import MatcherConfig, SweepMode
from repro.core import oracle
from repro.testing import random_computation

SEEDS = range(10)
TRACES = 3
STEPS = 40


def wall_stamp(event) -> float:
    """Deterministic wall-clock stand-in for the wall window tests."""
    return float(event.index)


KLEENE = """
X := ['', A, ''];
Y := ['', B, ''];
pattern := X -> Y+;
"""

WINDOW_SIM = """
X := ['', A, ''];
Y := ['', B, ''];
pattern := X -> Y WITHIN 4;
"""

WINDOW_WALL = """
X := ['', A, ''];
Y := ['', B, ''];
pattern := X -> Y WITHIN 3 wall;
"""

NEGATION = """
X := ['', A, ''];
Z := ['', C, ''];
Y := ['', B, ''];
pattern := X -> !Z -> Y;
"""

NEGATION_VAR = """
X := [$1, A, ''];
Z := [$1, C, ''];
Y := [$1, B, ''];
pattern := X -> !Z -> Y;
"""

DISJUNCTION = """
X := ['', A, ''];
Z := ['', C, ''];
Y := ['', B, ''];
pattern := X \\/ Z -> Y;
"""

KLEENE_OF_DISJUNCTION = """
X := ['', A, ''];
Z := ['', C, ''];
Y := ['', B, ''];
pattern := (X \\/ Z)+ -> Y;
"""

KLEENE_WINDOW = """
X := ['', A, ''];
Y := ['', B, ''];
Z := ['', C, ''];
Y $y;
pattern := ((X ~> $y+) /\\ ($y+ -> Z)) WITHIN 6;
"""

NEGATION_WINDOW = """
X := ['', A, ''];
Z := ['', C, ''];
Y := ['', B, ''];
pattern := X -> !Z -> Y WITHIN 8;
"""

ALL_PATTERNS = {
    "kleene": KLEENE,
    "window_sim": WINDOW_SIM,
    "window_wall": WINDOW_WALL,
    "negation": NEGATION,
    "negation_var": NEGATION_VAR,
    "disjunction": DISJUNCTION,
    "kleene_of_disjunction": KLEENE_OF_DISJUNCTION,
    "kleene_window": KLEENE_WINDOW,
    "negation_window": NEGATION_WINDOW,
}

NAMES = [f"P{i}" for i in range(TRACES)]


def run_monitor(source, events, **config_kwargs):
    config = MatcherConfig(**config_kwargs)
    monitor = Monitor.from_source(
        source, NAMES, config=config, record_timings=False
    )
    for event in events:
        monitor.on_event(event)
    return monitor


def fingerprint(assignment_items):
    return tuple(sorted((l, e.trace, e.index) for l, e in assignment_items))


def wall_clock_for(source):
    return wall_stamp if "wall" in source else None


@pytest.mark.parametrize("name", sorted(ALL_PATTERNS))
def test_exhaustive_equals_oracle(name):
    source = ALL_PATTERNS[name]
    wall = wall_clock_for(source)
    for seed in SEEDS:
        events = random_computation(seed, TRACES, STEPS).events
        monitor = run_monitor(
            source,
            events,
            sweep=SweepMode.EXHAUSTIVE,
            prune_history=False,
            wall_clock=wall,
        )
        pattern = monitor.matcher.pattern
        got = {fingerprint(r.assignment) for r in monitor.reports}
        want = {
            fingerprint(m.items())
            for m in oracle.enumerate_matches(pattern, events, wall_clock=wall)
        }
        assert got == want, (name, seed, got ^ want)

        # reported Kleene groups are the oracle's maximal expansions
        # over the events delivered up to the report (groups are
        # expanded online, at report time)
        position = {e: k for k, e in enumerate(events)}
        for report in monitor.reports:
            seen = events[: position[report.trigger_event] + 1]
            expected = oracle.kleene_groups(
                pattern, dict(report.assignment), seen, wall_clock=wall
            )
            assert tuple((l, tuple(g)) for l, g in report.groups) == expected


@pytest.mark.parametrize("name", sorted(ALL_PATTERNS))
def test_planner_off_finds_the_same_matches(name):
    source = ALL_PATTERNS[name]
    wall = wall_clock_for(source)
    for seed in SEEDS:
        events = random_computation(seed, TRACES, STEPS).events
        with_planner = run_monitor(
            source,
            events,
            sweep=SweepMode.EXHAUSTIVE,
            prune_history=False,
            wall_clock=wall,
        )
        without = run_monitor(
            source,
            events,
            sweep=SweepMode.EXHAUSTIVE,
            prune_history=False,
            wall_clock=wall,
            planner=False,
        )
        assert {fingerprint(r.assignment) for r in with_planner.reports} == {
            fingerprint(r.assignment) for r in without.reports
        }, (name, seed)


@pytest.mark.parametrize("name", sorted(ALL_PATTERNS))
def test_coverage_reports_verify(name):
    source = ALL_PATTERNS[name]
    wall = wall_clock_for(source)
    for seed in SEEDS:
        events = random_computation(seed, TRACES, STEPS).events
        monitor = run_monitor(source, events, wall_clock=wall)
        pattern = monitor.matcher.pattern
        for report in monitor.reports:
            assert oracle.verify_match(
                pattern, dict(report.assignment), events, wall_clock=wall
            ), (name, seed, report)
        assert monitor.matcher.subset.check_bound()
