"""Integration tests for the overload-control pipeline stage.

The two contracts that matter end-to-end:

* **disabled means invisible** — a pipeline wired with overload
  control whose detector never engages produces bit-identical output
  (reports, subset signature, matcher counters) to a plain pipeline;
* **enabled means measured** — with a forced detector, the shedded
  monitor's state converges with a fresh gap-tolerant monitor fed
  exactly the kept events, and checkpoints carry the shedder state.
"""

import functools
import json

import pytest

from repro.engine.pipeline import Pipeline
from repro.resilience import (
    BAND_STRUCTURAL,
    OverloadState,
    forced_shedding_detector,
    replay_gapped_monitor,
    run_fault_matrix,
    run_overload_scenario,
    run_shedding_sweep,
)


@functools.lru_cache(maxsize=None)
def _recorded(case="race", traces=4, seed=0, max_events=400):
    source = Pipeline.for_case(case, traces, seed)
    recorder = source.record()
    source.run(max_events=max_events)
    return (
        tuple(recorder.events),
        source.case_pattern,
        source.trace_names,
    )


class TestDisabledPathIdentity:
    def test_never_engaged_output_bit_identical(self):
        events, pattern, names = _recorded()

        plain = Pipeline.replay(list(events), names)
        plain_monitor = plain.watch("m", pattern, record_timings=False)
        plain.run()

        wired = Pipeline.replay(list(events), names)
        wired.with_overload_control()  # default detector: never engages
        wired_monitor = wired.watch("m", pattern, record_timings=False)
        result = wired.run()

        assert result.shedder is not None
        assert result.shedder.shed_total == 0
        assert result.shedder.offered_total == len(events)
        assert result.overload_detector.state is OverloadState.NORMAL
        assert wired_monitor.reports == plain_monitor.reports
        assert (
            wired_monitor.subset.signature()
            == plain_monitor.subset.signature()
        )
        assert wired_monitor.stats() == plain_monitor.stats()

    def test_stage_order_enforced(self):
        events, pattern, names = _recorded()
        pipeline = Pipeline.replay(list(events), names)
        pipeline.watch("m", pattern, record_timings=False)
        with pytest.raises(RuntimeError, match="before the first"):
            pipeline.with_overload_control()

    def test_double_configuration_rejected(self):
        events, pattern, names = _recorded()
        pipeline = Pipeline.replay(list(events), names)
        pipeline.with_overload_control()
        with pytest.raises(RuntimeError, match="already has"):
            pipeline.with_overload_control()


class TestForcedShedding:
    def test_kept_events_replay_converges(self):
        events, pattern, names = _recorded()
        pipeline = Pipeline.replay(list(events), names)
        pipeline.with_overload_control(
            detector=forced_shedding_detector(),
            shed_band=BAND_STRUCTURAL,
            record_kept=True,
        )
        monitor = pipeline.watch("m", pattern, record_timings=False)
        result = pipeline.run()
        shedder = result.shedder

        assert shedder.shed_total > 0
        assert len(shedder.kept_events) + shedder.shed_total == len(events)
        reference = replay_gapped_monitor(
            shedder.kept_events, pattern, names
        )
        assert reference.subset.signature() == monitor.subset.signature()
        assert reference.reports == monitor.reports

    def test_max_drop_rate_budget_honoured(self):
        events, pattern, names = _recorded()
        pipeline = Pipeline.replay(list(events), names)
        pipeline.with_overload_control(
            detector=forced_shedding_detector(),
            shed_band=BAND_STRUCTURAL,
            max_drop_rate=0.1,
        )
        pipeline.watch("m", pattern, record_timings=False)
        result = pipeline.run()
        assert 0.0 < result.shedder.drop_rate <= 0.1

    def test_holdback_backlog_probe_wired(self):
        events, pattern, names = _recorded()
        pipeline = Pipeline.replay(list(events), names)
        pipeline.with_overload_control()
        pipeline.watch("m", pattern, record_timings=False)
        pipeline.with_holdback(stall_watermark=32)
        result = pipeline.run()
        # The probe polls holdback.pending_count per offered event.
        assert result.overload_detector.backlog_ema is not None
        assert result.leftover == []


class TestShedderCheckpoint:
    def test_checkpoint_carries_overload_state(self):
        events, pattern, names = _recorded()
        half = len(events) // 2

        uninterrupted = Pipeline.replay(list(events), names)
        uninterrupted.with_overload_control(
            detector=forced_shedding_detector(), shed_band=BAND_STRUCTURAL,
        )
        oracle = uninterrupted.watch("m", pattern, record_timings=False)
        uninterrupted.run()

        first = Pipeline.replay(list(events[:half]), names)
        first.with_overload_control(
            detector=forced_shedding_detector(), shed_band=BAND_STRUCTURAL,
        )
        first.watch("m", pattern, record_timings=False)
        first_result = first.run()
        state = json.loads(json.dumps(first_result.checkpoint()))
        assert "overload" in state
        assert state["overload"]["shed"] == first_result.shedder.shed_total

        recovered = Pipeline.replay(list(events), names)
        recovered.with_overload_control(shed_band=BAND_STRUCTURAL)
        monitor = recovered.watch("m", pattern, record_timings=False)
        recovered.restore(state)
        result = recovered.run()

        # The restored detector resumes engaged (no fresh observations
        # arrive to disengage it) and the recovered subset converges to
        # the uninterrupted shedding run's.
        assert result.overload_detector.state is OverloadState.SHEDDING
        assert result.shedder.shed_total > 0
        assert monitor.subset.signature() == oracle.subset.signature()


class TestHarnesses:
    def test_shedding_sweep_small(self):
        report = run_shedding_sweep(
            cases=["race"], seeds=[0], rates=[0.2], traces=4,
            max_events=300,
        )
        assert len(report.cells) == 2
        utility, rand = report.cells
        assert utility.policy == "utility" and rand.policy == "random"
        assert utility.dropped == rand.dropped > 0
        assert utility.recall >= rand.recall
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["shed_band"] == "structural"
        assert {cell["policy"] for cell in payload["cells"]} == {
            "utility", "random",
        }

    def test_overload_scenario_engages_and_recovers(self):
        events, pattern, names = _recorded()
        runs = run_overload_scenario(
            list(events), pattern, names, seeds=[0, 1]
        )
        assert all(run.ok for run in runs), [run.detail for run in runs]
        assert all(run.shed > 0 for run in runs)
        assert all(
            run.final_latency_ema <= run.disengage_latency for run in runs
        )

    def test_fault_matrix_composes_with_shedding(self):
        events, pattern, names = _recorded()
        report = run_fault_matrix(
            list(events), pattern, names, seeds=[0], shedding=True,
        )
        kinds = {run.kind for run in report.runs}
        assert {"shed+none", "shed+reorder", "shed+delay",
                "shed+duplicate"} <= kinds
        assert report.ok, report.summary()
