"""Regenerate the PR-9 baseline fixture for the plan-equivalence gate.

Run from the repo root::

    PYTHONPATH=src python tests/integration/regen_golden.py

Writes ``tests/integration/golden_case_signatures.json``: for every
(case, seed) cell of the four paper case studies on seeds 0..9, the
representative-subset signature and the match-report fingerprints of a
single-pattern replay.  The committed fixture is the *frozen* output of
the pre-planner code; ``test_plan_equivalence.py`` replays the same
cells with the current code (planner on and off) and requires
bit-identical output.  Regenerating this file is only legitimate when a
PR deliberately changes match *semantics* — never to paper over a
planner divergence.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.engine.cases import CASE_STUDY_NAMES
from repro.engine.pipeline import Pipeline

TRACES = 4
SEEDS = range(10)
MAX_EVENTS = 3000

FIXTURE = Path(__file__).with_name("golden_case_signatures.json")


def report_fingerprint(report) -> list:
    """A JSON-stable fingerprint of one match report."""
    return [
        report.trigger_leaf,
        [report.trigger_event.trace, report.trigger_event.index],
        [[leaf, e.trace, e.index] for leaf, e in report.assignment],
        sorted([str(k), str(v)] for k, v in report.bindings),
        sorted([list(slot) for slot in report.new_slots]),
    ]


def cell(case: str, seed: int) -> dict:
    source = Pipeline.for_case(case, TRACES, seed)
    recorder = source.record()
    source.run(max_events=MAX_EVENTS)
    events, names = recorder.events, source.trace_names

    replay = Pipeline.replay(events, names)
    monitor = replay.watch(case, source.case_pattern, record_timings=False)
    replay.run(batch_size=1)
    # JSON round-trip so the cell compares equal to the committed
    # fixture (tuples become lists)
    return json.loads(
        json.dumps(
            {
                "events": len(events),
                "signature": [
                    list(entry) for entry in monitor.subset.signature()
                ],
                "reports": [report_fingerprint(r) for r in monitor.reports],
            }
        )
    )


def main() -> int:
    document = {"traces": TRACES, "max_events": MAX_EVENTS, "cells": {}}
    for case in CASE_STUDY_NAMES:
        for seed in SEEDS:
            key = f"{case}/{seed}"
            document["cells"][key] = cell(case, seed)
            print(
                f"{key}: events={document['cells'][key]['events']} "
                f"matches={len(document['cells'][key]['reports'])}"
            )
    FIXTURE.write_text(json.dumps(document, indent=1, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
