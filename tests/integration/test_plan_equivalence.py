"""The PR's hard back-compat gate: bit-identical legacy matches.

``golden_case_signatures.json`` froze the representative-subset
signatures and match-report fingerprints of the four paper case
studies (seeds 0..9) as produced by the pre-planner engine.  This test
replays every cell with the current engine — planner enabled AND
disabled — and requires *bit-identical* output.  If it fails, the
pattern-language changes altered legacy match semantics; fix the code,
do not regenerate the fixture.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.matcher import MatcherConfig
from repro.engine.cases import CASE_STUDY_NAMES
from repro.engine.pipeline import Pipeline

from tests.integration.regen_golden import (
    MAX_EVENTS,
    SEEDS,
    TRACES,
    report_fingerprint,
)

FIXTURE = Path(__file__).with_name("golden_case_signatures.json")


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


def replay_cell(case: str, seed: int, config: MatcherConfig) -> dict:
    source = Pipeline.for_case(case, TRACES, seed)
    recorder = source.record()
    source.run(max_events=MAX_EVENTS)
    events, names = recorder.events, source.trace_names

    replay = Pipeline.replay(events, names)
    monitor = replay.watch(
        case, source.case_pattern, record_timings=False, config=config
    )
    replay.run(batch_size=1)
    return json.loads(
        json.dumps(
            {
                "events": len(events),
                "signature": [
                    list(entry) for entry in monitor.subset.signature()
                ],
                "reports": [report_fingerprint(r) for r in monitor.reports],
            }
        )
    )


@pytest.mark.parametrize("case", CASE_STUDY_NAMES)
@pytest.mark.parametrize("planner", [True, False], ids=["planner", "legacy"])
def test_legacy_cases_bit_identical(golden, case, planner):
    assert golden["traces"] == TRACES and golden["max_events"] == MAX_EVENTS
    for seed in SEEDS:
        cell = replay_cell(case, seed, MatcherConfig(planner=planner))
        assert cell == golden["cells"][f"{case}/{seed}"], (
            f"{case}/{seed} diverged from the PR-9 baseline "
            f"(planner={'on' if planner else 'off'})"
        )
