"""Case-study completeness and false-positive checks (paper Section V-D).

"Our OCEP algorithm is complete as it correctly reported all violations
for the test cases.  OCEP also did not report any false positives for
any of the test cases."  These tests verify both halves against each
workload's injected-bug ground truth, and cross-check OCEP against the
corresponding baseline detector.
"""

import pytest

from repro import Monitor
from repro.baselines import (
    ConflictGraphDetector,
    TimestampRaceDetector,
    WaitForGraphDetector,
)
from repro.poet import RecordingClient
from repro.workloads import (
    atomicity_pattern,
    build_atomicity,
    build_message_race,
    build_ordering_bug,
    build_random_walk,
    deadlock_pattern,
    message_race_pattern,
    ordering_bug_pattern,
)


class TestDeadlockCase:
    def _run(self, skip_probability, seed=3, traces=5, buffer_capacity=2):
        workload = build_random_walk(
            num_traces=traces,
            seed=seed,
            skip_probability=skip_probability,
            buffer_capacity=buffer_capacity,
        )
        monitor = Monitor.from_source(
            deadlock_pattern(traces), workload.kernel.trace_names()
        )
        workload.server.connect(monitor)
        recorder = RecordingClient()
        workload.server.connect(recorder)
        result = workload.run(max_events=25_000)
        return workload, monitor, recorder, result

    @pytest.mark.parametrize("seed", [1, 3, 7])
    def test_deadlock_is_detected(self, seed):
        _, monitor, _, result = self._run(skip_probability=0.08, seed=seed)
        assert result.deadlocked
        assert monitor.reports, "deadlock occurred but no cycle reported"
        final = monitor.reports[-1]
        events = [e for _, e in final.assignment]
        # the reported cycle is pairwise concurrent blocked sends
        for i, a in enumerate(events):
            for b in events[i + 1 :]:
                assert a.concurrent_with(b)
        assert len({e.trace for e in events}) == len(events)

    @pytest.mark.parametrize("seed", [1, 3, 7])
    def test_no_false_positive_without_bug(self, seed):
        _, monitor, _, result = self._run(
            skip_probability=0.0, seed=seed, buffer_capacity=8
        )
        assert not result.deadlocked
        assert not monitor.reports

    def test_agrees_with_wait_for_graph(self):
        workload, monitor, recorder, result = self._run(skip_probability=0.08)
        assert result.deadlocked
        detector = WaitForGraphDetector(workload.num_traces)
        graph_reports = []
        for event in recorder.events:
            report = detector.on_event(event)
            if report is not None:
                graph_reports.append(report)
        assert bool(graph_reports) == bool(monitor.reports)


class TestMessageRaceCase:
    def _run(self, traces=5, seed=2, messages=8):
        workload = build_message_race(
            num_traces=traces, seed=seed, messages_per_sender=messages
        )
        monitor = Monitor.from_source(
            message_race_pattern(), workload.kernel.trace_names()
        )
        workload.server.connect(monitor)
        recorder = RecordingClient()
        workload.server.connect(recorder)
        workload.run()
        return workload, monitor, recorder

    def test_every_report_is_a_real_race(self):
        _, monitor, _ = self._run()
        for report in monitor.reports:
            assignment = report.as_dict()
            sends = [e for e in assignment.values() if e.etype == "Send"]
            recvs = [e for e in assignment.values() if e.etype == "Receive"]
            assert len(sends) == 2 and len(recvs) == 2
            assert sends[0].concurrent_with(sends[1])
            assert recvs[0].trace == recvs[1].trace

    def test_racing_receives_are_detected(self):
        """Every receive the timestamp baseline flags must also trigger
        an OCEP report (detection completeness per violation event)."""
        workload, monitor, recorder = self._run()
        detector = TimestampRaceDetector(workload.num_traces)
        race_triggering = set()
        for event in recorder.events:
            if detector.on_event(event):
                race_triggering.add(event.event_id)
        assert race_triggering, "workload produced no races?"
        reported_triggers = {r.trigger_event.event_id for r in monitor.reports}
        assert race_triggering <= reported_triggers

    def test_single_sender_has_no_race(self):
        workload = build_message_race(num_traces=3, seed=0, messages_per_sender=1)
        monitor = Monitor.from_source(
            message_race_pattern(), workload.kernel.trace_names()
        )
        workload.server.connect(monitor)
        workload.run()
        # two senders, one message each: those two messages may race;
        # restrict to a truly race-free run: sequential sends
        # (covered by the ordered-sends unit test of the baseline);
        # here we only require no false "same-process" reports
        for report in monitor.reports:
            recvs = [
                e for e in report.as_dict().values() if e.etype == "Receive"
            ]
            assert recvs[0].trace == recvs[1].trace == workload.collector


class TestAtomicityCase:
    def _run(self, bypass_probability, seed=4, processes=4, iterations=40):
        workload = build_atomicity(
            num_processes=processes,
            seed=seed,
            iterations=iterations,
            bypass_probability=bypass_probability,
        )
        monitor = Monitor.from_source(
            atomicity_pattern(), workload.kernel.trace_names()
        )
        workload.server.connect(monitor)
        recorder = RecordingClient()
        workload.server.connect(recorder)
        workload.run()
        return workload, monitor, recorder

    def test_violations_detected_with_bug(self):
        workload, monitor, _ = self._run(bypass_probability=0.15)
        assert workload.bypasses
        assert monitor.reports
        for report in monitor.reports:
            x, y = report.as_dict().values()
            assert x.concurrent_with(y)

    def test_no_false_positives_without_bug(self):
        workload, monitor, _ = self._run(bypass_probability=0.0)
        assert not workload.bypasses
        assert not monitor.reports

    def test_agrees_with_conflict_graph_detector(self):
        workload, monitor, recorder = self._run(bypass_probability=0.15)
        detector = ConflictGraphDetector(workload.num_traces)
        found = []
        for event in recorder.events:
            found.extend(detector.on_event(event))
        assert bool(found) == bool(monitor.reports)


class TestOrderingBugCase:
    def _run(self, bug_probability, seed=6, traces=5, synchs=6):
        workload = build_ordering_bug(
            num_traces=traces,
            seed=seed,
            synchs_per_follower=synchs,
            bug_probability=bug_probability,
        )
        monitor = Monitor.from_source(
            ordering_bug_pattern(), workload.kernel.trace_names()
        )
        workload.server.connect(monitor)
        workload.run()
        return workload, monitor

    @pytest.mark.parametrize("seed", [2, 6, 9])
    def test_matched_requests_equal_injected_bugs(self, seed):
        workload, monitor = self._run(bug_probability=0.3, seed=seed)
        matched = {dict(r.bindings)["r"] for r in monitor.reports}
        assert matched == set(workload.buggy_requests)

    def test_clean_run_has_no_matches(self):
        workload, monitor = self._run(bug_probability=0.0)
        assert not workload.buggy_requests
        assert not monitor.reports

    def test_bindings_pair_snapshot_and_forward(self):
        workload, monitor = self._run(bug_probability=0.5)
        for report in monitor.reports:
            assignment = report.as_dict()
            req = dict(report.bindings)["r"]
            by_type = {e.etype: e for e in assignment.values()}
            assert by_type["Take_Snapshot"].text == req
            assert by_type["Forward_Snapshot"].text == req
            assert by_type["Synch_Request"].text == req
            chain = [
                by_type["Synch_Request"],
                by_type["Take_Snapshot"],
                by_type["Make_Update"],
                by_type["Forward_Snapshot"],
            ]
            for earlier, later in zip(chain, chain[1:]):
                assert earlier.happens_before(later)
