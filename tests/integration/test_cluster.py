"""Integration: the multi-process cluster runtime end to end.

The headline equivalence of the cluster PR: an ``ocep cluster``
deployment — N worker processes each running a single-shard stream
pipeline behind the socket transport — produces bit-identical match
output (reports, representative-subset signatures, the full counter
set) to the in-process :class:`~repro.engine.dispatch.ShardedDispatcher`
run over the same recorded stream; and it still converges
counter-exactly after a worker is SIGKILLed mid-stream and recovered
from the last deployment checkpoint.

Workloads are kept deliberately small: every test here pays real
process spawns and socket round trips.
"""

import pytest

from repro.cluster import ClusterPipeline
from repro.engine import Pipeline, case_patterns
from repro.engine.dispatch import shard_worker
from repro.obs.metrics import MetricsRegistry
from repro.resilience.cluster_chaos import run_cluster_cell

TRACES = 5
MAX_EVENTS = 500


@pytest.fixture(scope="module")
def workload():
    """One recorded case-study stream shared by the module (recording
    is in-process and cheap; the cluster runs are the expensive part)."""
    pipeline = Pipeline.for_case("race", traces=TRACES, seed=1)
    recorder = pipeline.record()
    pipeline.run(max_events=MAX_EVENTS)
    return list(recorder.events), list(pipeline.trace_names)


@pytest.fixture(scope="module")
def oracle(workload):
    """The in-process sharded run every cluster result is diffed against."""
    events, names = workload
    pipeline = Pipeline.replay(events, names)
    for name, source in case_patterns(len(names)).items():
        pipeline.watch(name, source)
    return pipeline.run()


def _cluster(workload, **options):
    events, names = workload
    pipeline = Pipeline.distributed(events, names, **options)
    for name, source in case_patterns(len(names)).items():
        pipeline.watch(name, source)
    return pipeline


def _assert_equivalent(result, oracle, patterns, reports=True):
    for name in patterns:
        monitor = oracle[name]
        shard = result[name]
        if reports:
            assert shard.reports == monitor.reports
        assert shard.signature == monitor.subset.signature()
        assert shard.stats == monitor.stats()


class TestClusterEquivalence:
    def test_two_workers_bit_identical(self, workload, oracle):
        result = _cluster(workload, workers=2).run(batch_size=128)
        patterns = case_patterns(TRACES)
        assert result.num_events == len(workload[0])
        assert result.restarts == 0
        assert result.total_reports() == sum(
            len(oracle[name].reports) for name in patterns
        )
        _assert_equivalent(result, oracle, patterns)

    def test_more_workers_than_shards(self, workload, oracle):
        # 6 workers, 4 patterns: at least two workers own no shard and
        # must still handshake, stream, and report an empty RESULT.
        result = _cluster(workload, workers=6).run(batch_size=128)
        assert result.workers == 6
        _assert_equivalent(result, oracle, case_patterns(TRACES))

    def test_encoded_backend_bit_identical(self, workload, oracle):
        result = _cluster(
            workload, workers=2, clock_backend="encoded"
        ).run(batch_size=128)
        _assert_equivalent(result, oracle, case_patterns(TRACES))

    def test_single_worker_degenerate_cluster(self, workload, oracle):
        result = _cluster(workload, workers=1).run(batch_size=256)
        _assert_equivalent(result, oracle, case_patterns(TRACES))


class TestClusterRecovery:
    def test_kill_and_recover_converges(self, workload, oracle):
        patterns = case_patterns(TRACES)
        victim = shard_worker(next(iter(patterns)), 2)
        pipeline = _cluster(workload, workers=2)
        result = pipeline.run(
            batch_size=64, checkpoint_every=2,
            kill_worker_after=(victim, 4),
        )
        assert result.restarts >= 1
        # The recovered shard's post-hoc reports list legitimately
        # holds only post-restore matches (Monitor.restore semantics);
        # signatures and the checkpointed counters are the
        # convergence surface — same contract as the in-process
        # chaos crash cells.
        _assert_equivalent(result, oracle, patterns, reports=False)
        assert result.final_checkpoint is not None

    def test_cell_harness_kill_mode(self):
        cell = run_cluster_cell(
            "ordering", 2, traces=4, max_events=400, workers=2, kill=True
        )
        assert cell["ok"], cell["mismatches"]
        assert cell["restarts"] >= 1

    def test_cell_harness_plain_mode(self):
        cell = run_cluster_cell(
            "deadlock", 0, traces=4, max_events=400, workers=3
        )
        assert cell["ok"], cell["mismatches"]
        assert cell["restarts"] == 0


class TestClusterSurface:
    def test_distributed_returns_cluster_pipeline(self, workload):
        events, names = workload
        pipeline = Pipeline.distributed(events, names)
        assert isinstance(pipeline, ClusterPipeline)

    def test_cluster_pipeline_runs_once(self, workload):
        pipeline = _cluster(workload, workers=1)
        pipeline.run(batch_size=256)
        with pytest.raises(RuntimeError, match="runs once"):
            pipeline.run()

    def test_worker_metrics_aggregated(self, workload):
        registry = MetricsRegistry()
        result = _cluster(workload, workers=2, registry=registry).run(
            batch_size=128
        )
        assert result.registry is registry
        snapshot = registry.snapshot()
        names = {metric["name"] for metric in snapshot}
        assert "ocep_cluster_events_sent_total" in names
        worker_labels = {
            metric["labels"]["worker"]
            for metric in snapshot
            if metric.get("labels", {}).get("worker")
        }
        assert worker_labels == {"0", "1"}

    def test_worker_obs_urls_reported(self, workload):
        result = _cluster(
            workload, workers=2, worker_obs=True
        ).run(batch_size=256)
        assert sorted(result.obs_urls) == [0, 1]
        for url in result.obs_urls.values():
            assert url.startswith("http://127.0.0.1:")
            port = int(url.rsplit(":", 1)[1])
            assert port > 0
