"""Integration: elastic re-sharding through the v1 checkpoint format.

An ``ocep-sharded-checkpoint-v1`` document is written at one shard
layout and restored at another — the elasticity story of the cluster
runtime.  The invariants under test:

* a whole-deployment checkpoint restores into a deployment with MORE
  units (some of which then own no checkpointed shard, or no shard at
  all) or FEWER units (one unit restores several slices), and the
  resumed run converges counter-exactly to the uninterrupted baseline;
* ``partial=True`` restores exactly the watched slice of a
  foreign-layout snapshot, and ``partial=False`` keeps refusing
  unknown shards (the safety check elastic mode deliberately lifts);
* shards absent from the snapshot stay fresh and recompute from the
  stream start.
"""

import json

import pytest

from repro.engine import Pipeline, case_patterns
from repro.engine.dispatch import CHECKPOINT_FORMAT

TRACES = 4


@pytest.fixture(scope="module")
def workload():
    pipeline = Pipeline.for_case("race", traces=TRACES, seed=2)
    recorder = pipeline.record()
    pipeline.run(max_events=600)
    return list(recorder.events), list(pipeline.trace_names)


@pytest.fixture(scope="module")
def baseline(workload):
    """Uninterrupted in-process sharded run over all four patterns."""
    events, names = workload
    pipeline = Pipeline.replay(events, names)
    for name, source in case_patterns(TRACES).items():
        pipeline.watch(name, source)
    return pipeline.run()


@pytest.fixture(scope="module")
def midpoint_checkpoint(workload):
    """A four-shard v1 snapshot at the stream midpoint, serialized the
    way it would actually survive a crash."""
    events, names = workload
    prefix = Pipeline.replay(events[: len(events) // 2], names)
    for name, source in case_patterns(TRACES).items():
        prefix.watch(name, source)
    result = prefix.run()
    state = json.loads(json.dumps(result.checkpoint()))
    assert state["format"] == CHECKPOINT_FORMAT
    assert len(state["shards"]) == 4
    return state


def _assert_converged(result, baseline, names):
    for name in names:
        assert result[name].subset.signature() == (
            baseline[name].subset.signature()
        )
        assert result[name].stats() == baseline[name].stats()


class TestInProcessResharding:
    def test_partial_restore_of_a_slice(
        self, workload, baseline, midpoint_checkpoint
    ):
        # A "unit" of a 2-way split: watches two of the four shards and
        # restores only its slice of the 4-shard snapshot.
        events, names = workload
        patterns = case_patterns(TRACES)
        mine = dict(list(patterns.items())[:2])
        unit = Pipeline.replay(events, names)
        for name, source in mine.items():
            unit.watch(name, source)
        unit.dispatcher.restore(midpoint_checkpoint, partial=True)
        result = unit.run()
        _assert_converged(result, baseline, mine)

    def test_full_restore_refuses_foreign_shards(
        self, workload, midpoint_checkpoint
    ):
        events, names = workload
        patterns = case_patterns(TRACES)
        unit = Pipeline.replay(events, names)
        name, source = next(iter(patterns.items()))
        unit.watch(name, source)
        with pytest.raises(ValueError, match="not watched here"):
            unit.dispatcher.restore(midpoint_checkpoint, partial=False)

    def test_shard_missing_from_snapshot_stays_fresh(
        self, workload, baseline, midpoint_checkpoint
    ):
        # Scale OUT in-process: the snapshot covers three shards; the
        # fourth is a "new" pattern that must recompute from scratch
        # and still land on the baseline.
        events, names = workload
        patterns = case_patterns(TRACES)
        trimmed = json.loads(json.dumps(midpoint_checkpoint))
        dropped = sorted(trimmed["shards"])[0]
        del trimmed["shards"][dropped]
        unit = Pipeline.replay(events, names)
        for name, source in patterns.items():
            unit.watch(name, source)
        unit.dispatcher.restore(trimmed, partial=True)
        result = unit.run()
        _assert_converged(result, baseline, patterns)


class TestClusterResharding:
    @pytest.mark.parametrize("workers", [1, 3, 6])
    def test_checkpoint_restores_into_any_worker_count(
        self, workload, baseline, midpoint_checkpoint, workers
    ):
        # The same 4-shard snapshot feeds a 1-worker (fewer units: one
        # process restores everything), 3-worker (slices split
        # unevenly), and 6-worker (more units than shards — some
        # workers restore nothing, some own no shard at all)
        # deployment; each replays the full stream and must converge
        # counter-exactly.
        events, names = workload
        pipeline = Pipeline.distributed(events, names, workers=workers)
        for name, source in case_patterns(TRACES).items():
            pipeline.watch(name, source)
        pipeline.restore(midpoint_checkpoint)
        result = pipeline.run(batch_size=128)
        for name in case_patterns(TRACES):
            assert result[name].signature == (
                baseline[name].subset.signature()
            )
            assert result[name].stats == baseline[name].stats()

    def test_restore_rejects_foreign_format(self, workload):
        events, names = workload
        pipeline = Pipeline.distributed(events, names, workers=2)
        with pytest.raises(Exception, match="checkpoint"):
            pipeline.restore({"format": "ocep-checkpoint-v999",
                              "shards": {}})
