"""Conflict-graph atomicity-violation detection.

The approach of [40] the paper contrasts with in Section V-C3:
"approaches for detecting an atomicity violation rely on finding
unserializable patterns of operations by searching the events that are
related to shared-variable access and synchronization primitives",
with published runtimes of "0.4-40 seconds for detecting similar
violation".

This detector reconstructs critical sections (Acquire..Release spans
per process) from the POET stream and keeps *every* completed and open
section.  A violation is two sections on different processes that
causally overlap — neither section's release happens before the
other's acquire.  The cost of comparing each new section against the
ever-growing section history is the baseline's weakness; OCEP instead
matches the two concurrent section events directly with restricted
domains.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional

from repro.events.event import Event, EventId


@dataclasses.dataclass
class _Section:
    """One critical-section execution on one process."""

    trace: int
    acquire: Event
    release: Optional[Event] = None

    def overlaps(self, other: "_Section") -> bool:
        """Causal overlap: neither section completes before the other
        begins.  Open sections extend to the end of the observation."""
        if self.trace == other.trace:
            return False
        self_before = (
            self.release is not None
            and self.release.happens_before(other.acquire)
        )
        other_before = (
            other.release is not None
            and other.release.happens_before(self.acquire)
        )
        return not self_before and not other_before


@dataclasses.dataclass(frozen=True)
class AtomicityReport:
    """Two causally overlapping critical sections."""

    first_acquire: EventId
    second_acquire: EventId


class ConflictGraphDetector:
    """Online conflict-graph atomicity detector over a POET stream.

    Parameters
    ----------
    num_traces:
        Traces in the computation.
    acquire_type, release_type:
        Event types delimiting critical sections (defaults match the
        simulation kernel's semaphore instrumentation).
    """

    def __init__(
        self,
        num_traces: int,
        acquire_type: str = "Acquire",
        release_type: str = "Release",
    ):
        self.num_traces = num_traces
        self.acquire_type = acquire_type
        self.release_type = release_type
        self._open: Dict[int, _Section] = {}
        self._sections: List[_Section] = []
        self.reports: List[AtomicityReport] = []
        self.timings: List[float] = []

    def on_event(self, event: Event) -> List[AtomicityReport]:
        """Consume an event; returns violations completed by it."""
        start = time.perf_counter()
        found: List[AtomicityReport] = []
        if event.etype == self.acquire_type:
            section = _Section(trace=event.trace, acquire=event)
            self._open[event.trace] = section
            found = self._check(section)
            self._sections.append(section)
        elif event.etype == self.release_type:
            section = self._open.pop(event.trace, None)
            if section is not None:
                section.release = event
        self.reports.extend(found)
        self.timings.append(time.perf_counter() - start)
        return found

    def _check(self, section: _Section) -> List[AtomicityReport]:
        """Compare a new section against every stored section — the
        conflict-graph edge construction."""
        return [
            AtomicityReport(
                first_acquire=other.acquire.event_id,
                second_acquire=section.acquire.event_id,
            )
            for other in self._sections
            if other.overlaps(section)
        ]

    @property
    def section_count(self) -> int:
        """Stored sections (memory metric)."""
        return len(self._sections)
