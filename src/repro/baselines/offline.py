"""Offline (post-mortem) pattern analysis.

The paper positions OCEP as complementary to post-mortem tools that
parse complete logs after the fact [7, 31, 34, 41]: offline analysis
sees the whole execution at once and can afford exhaustive search, but
"does not help service providers resolve operational problems as they
occur".  This module packages the brute-force enumerator as exactly
such a tool — load a POET dump, enumerate *every* match, and report —
so the online/offline trade-off can be demonstrated and measured
(unbounded output and end-of-run latency versus OCEP's bounded online
subset).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Sequence

from repro.core.oracle import covered_slots, enumerate_matches
from repro.events.event import Event
from repro.patterns.compile import CompiledPattern, compile_pattern
from repro.patterns.parser import parse_pattern
from repro.patterns.tree import PatternTree
from repro.poet.dumpfile import load_events


@dataclasses.dataclass
class OfflineResult:
    """Everything a post-mortem run produces."""

    matches: List[Dict[int, Event]]
    covered: set
    analysis_seconds: float

    @property
    def num_matches(self) -> int:
        return len(self.matches)


class OfflineAnalyzer:
    """Post-mortem causal-pattern analysis over a complete event log."""

    def __init__(self, pattern: CompiledPattern):
        self.pattern = pattern

    @classmethod
    def from_source(
        cls, source: str, trace_names: Sequence[str]
    ) -> "OfflineAnalyzer":
        tree = PatternTree(parse_pattern(source), trace_names)
        return cls(compile_pattern(tree))

    def analyze(self, events: Sequence[Event]) -> OfflineResult:
        """Enumerate every match in the complete log."""
        start = time.perf_counter()
        matches = enumerate_matches(self.pattern, events)
        elapsed = time.perf_counter() - start
        return OfflineResult(
            matches=matches,
            covered=covered_slots(matches),
            analysis_seconds=elapsed,
        )

    def analyze_dump(self, path) -> OfflineResult:
        """Load a POET dump file and analyze it."""
        events, _, _ = load_events(path)
        return self.analyze(events)
