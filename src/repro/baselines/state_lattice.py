"""Global-predicate detection over the consistent-global-state lattice.

The approach OCEP is motivated *against* (paper, Sections I-III):
"detecting the global state of the system ... is based on building a
lattice of global states [12], which is known to be NP-complete [29]".
A global state (consistent cut) assigns each trace a prefix length such
that no received message is unsent; detecting ``possibly(phi)`` means
searching every reachable consistent cut for one satisfying the
predicate.

This detector implements Cooper-Marzullo style lattice exploration:
breadth-first over cuts, advancing one trace at a time, with
consistency checked via vector clocks.  Its cost is the number of
reachable cuts — exponential in the number of concurrent traces —
which the companion benchmark contrasts with OCEP's per-event search.

Predicates are functions over the *frontier* (the latest event of each
trace within the cut, ``None`` for an empty prefix).  A ready-made
``concurrent_types`` predicate expresses the paper's traffic-light
example ("lights in only one direction may be green"): two traces'
latest events both being a given type.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.events.event import Event

#: A consistent cut: per-trace prefix lengths.
Cut = Tuple[int, ...]

#: A predicate over the cut frontier (latest event per trace, or None).
Predicate = Callable[[Sequence[Optional[Event]]], bool]


@dataclasses.dataclass
class LatticeResult:
    """Outcome of a lattice exploration.

    Attributes
    ----------
    satisfied:
        True when some reachable consistent cut satisfies the
        predicate (``possibly(phi)``).
    witness:
        The first satisfying cut found, if any.
    states_explored:
        Number of distinct consistent cuts visited — the cost that is
        exponential in concurrency.
    """

    satisfied: bool
    witness: Optional[Cut]
    states_explored: int


def concurrent_types(etype: str, count: int = 2) -> Predicate:
    """Predicate: at least ``count`` traces' frontier events have the
    given type simultaneously (e.g. two lights green, two processes in
    a critical section)."""

    def predicate(frontier: Sequence[Optional[Event]]) -> bool:
        matching = sum(
            1 for event in frontier if event is not None and event.etype == etype
        )
        return matching >= count

    return predicate


class StateLatticeDetector:
    """Cooper-Marzullo lattice exploration over a recorded computation.

    Parameters
    ----------
    num_traces:
        Traces in the computation.
    max_states:
        Exploration budget; the lattice is exponential, so real use
        needs a cap.  Exceeding it raises :class:`LatticeExplosion`.
    """

    def __init__(self, num_traces: int, max_states: Optional[int] = 2_000_000):
        self.num_traces = num_traces
        self.max_states = max_states

    def detect(self, events: Sequence[Event], predicate: Predicate) -> LatticeResult:
        """Search for ``possibly(predicate)`` over all consistent cuts."""
        per_trace: List[List[Event]] = [[] for _ in range(self.num_traces)]
        for event in events:
            per_trace[event.trace].append(event)

        start: Cut = (0,) * self.num_traces
        seen: Set[Cut] = {start}
        queue = deque([start])
        explored = 0

        while queue:
            cut = queue.popleft()
            explored += 1
            if self.max_states is not None and explored > self.max_states:
                raise LatticeExplosion(explored)

            frontier = [
                per_trace[t][cut[t] - 1] if cut[t] > 0 else None
                for t in range(self.num_traces)
            ]
            if predicate(frontier):
                return LatticeResult(
                    satisfied=True, witness=cut, states_explored=explored
                )

            for trace in range(self.num_traces):
                nxt = cut[trace] + 1
                if nxt > len(per_trace[trace]):
                    continue
                candidate = per_trace[trace][nxt - 1]
                if not self._consistent_extension(cut, candidate):
                    continue
                new_cut = cut[:trace] + (nxt,) + cut[trace + 1 :]
                if new_cut not in seen:
                    seen.add(new_cut)
                    queue.append(new_cut)

        return LatticeResult(satisfied=False, witness=None, states_explored=explored)

    def _consistent_extension(self, cut: Cut, event: Event) -> bool:
        """Adding ``event`` keeps the cut consistent iff every causal
        predecessor is already inside: ``V[t] <= cut[t]`` for all other
        traces (Fidge/Mattern)."""
        clock = event.clock
        for trace in range(self.num_traces):
            if trace == event.trace:
                continue
            if clock[trace] > cut[trace]:
                return False
        return True

    def count_states(self, events: Sequence[Event]) -> int:
        """Size of the full reachable lattice (no predicate, no early
        exit) — the paper's state-explosion quantity."""
        result = self.detect(events, lambda frontier: False)
        return result.states_explored


class LatticeExplosion(RuntimeError):
    """The lattice exceeded the exploration budget."""

    def __init__(self, explored: int):
        self.explored = explored
        super().__init__(
            f"consistent-cut lattice exceeded the budget after "
            f"{explored} states — the explosion OCEP avoids"
        )
