"""Chronological-backtracking ablation.

Section IV-C: "A very basic implementation of goForward can use
chronological backtracking, which will start with the latest match on
a trace and chronologically go back in time.  That is not very
efficient in practice as it explores the entire search space until a
solution is found or a conflict is reached."

This baseline is OCEP with both timestamp optimisations switched off:
candidate domains are whole per-trace histories verified causally per
candidate (no GP/LS restriction), and failures backtrack one level at
a time (no ``bt``-table back-jumping).  Everything else — pattern
compilation, histories, representative subset — is shared, so the
ablation isolates exactly the paper's Figure 4/5 contributions.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import MatcherConfig, SweepMode
from repro.core.monitor import Monitor


def chronological_config(sweep: SweepMode = SweepMode.COVERAGE) -> MatcherConfig:
    """Matcher configuration with domain restriction and back-jumping
    disabled."""
    return MatcherConfig(
        sweep=sweep,
        restrict_domains=False,
        backjump=False,
    )


def chronological_monitor(
    source: str,
    trace_names: Sequence[str],
    sweep: SweepMode = SweepMode.COVERAGE,
    on_match=None,
    record_timings: bool = True,
) -> Monitor:
    """Build a monitor running the chronological-backtracking baseline."""
    return Monitor.from_source(
        source,
        trace_names,
        config=chronological_config(sweep),
        on_match=on_match,
        record_timings=record_timings,
    )
