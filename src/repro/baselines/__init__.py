"""Baselines and comparators.

The paper positions OCEP against several families of prior work; this
package reimplements one representative of each family so the
comparison benchmarks can regenerate the paper's claims instead of
quoting literature numbers:

* :mod:`~repro.baselines.chronological` — OCEP's search with GP/LS
  domain restriction and timestamp back-jumping disabled ("a very
  basic implementation of goForward can use chronological
  backtracking ... not very efficient in practice", Section IV-C);
* :mod:`~repro.baselines.sliding_window` — a sliding-window matcher
  that only reports matches falling inside the last ``n²`` events
  (Figure 3's omission-prone comparator, [3, 15]);
* :mod:`~repro.baselines.dependency_graph` — wait-for-graph deadlock
  detection with cycle checking ([2], the "35 seconds for a cycle of
  length 30" comparison of Section V-C1);
* :mod:`~repro.baselines.timestamp_race` — vector-timestamp message-
  race checking in the style of MPIRace-Check [30, 32];
* :mod:`~repro.baselines.conflict_graph` — conflict-graph atomicity-
  violation detection in the style of [40].
"""

from repro.baselines.chronological import chronological_config, chronological_monitor
from repro.baselines.sliding_window import SlidingWindowMatcher
from repro.baselines.dependency_graph import WaitForGraphDetector
from repro.baselines.timestamp_race import TimestampRaceDetector
from repro.baselines.conflict_graph import ConflictGraphDetector
from repro.baselines.offline import OfflineAnalyzer, OfflineResult
from repro.baselines.state_lattice import (
    LatticeExplosion,
    LatticeResult,
    StateLatticeDetector,
    concurrent_types,
)

__all__ = [
    "chronological_config",
    "chronological_monitor",
    "SlidingWindowMatcher",
    "WaitForGraphDetector",
    "TimestampRaceDetector",
    "ConflictGraphDetector",
    "OfflineAnalyzer",
    "OfflineResult",
    "StateLatticeDetector",
    "LatticeResult",
    "LatticeExplosion",
    "concurrent_types",
]
