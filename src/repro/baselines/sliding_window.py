"""Sliding-window pattern matcher.

"One possible approach to providing online causal event-matching is to
maintain a time-based sliding window and discard the partial matches
that lie outside the window" (Section I, [3, 15]).  Figure 3 shows the
failure mode: with a window of ``n²`` events, the reported matches can
miss events that participate in matches spanning beyond the window, so
the returned set is not representative.

This matcher keeps the last ``window`` delivered events and, on every
terminating event, enumerates matches *within the window only*.  It
shares the compiled pattern with OCEP so the omission comparison in
``benchmarks/test_fig3_subset.py`` is apples-to-apples.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.core.oracle import enumerate_matches
from repro.core.subset import RepresentativeSubset
from repro.events.event import Event
from repro.patterns.compile import CompiledPattern


class SlidingWindowMatcher:
    """Window-bounded causal pattern matcher.

    Parameters
    ----------
    pattern:
        The compiled pattern.
    num_traces:
        Traces in the computation; the default window size is the
        ``n²`` used in Figure 3.
    window:
        Explicit window size in events (overrides the default).
    """

    def __init__(
        self,
        pattern: CompiledPattern,
        num_traces: int,
        window: Optional[int] = None,
    ):
        self.pattern = pattern
        self.num_traces = num_traces
        self.window = window if window is not None else num_traces * num_traces
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")
        self._events: Deque[Event] = deque(maxlen=self.window)
        self._terminating = frozenset(pattern.terminating_leaves())
        self.subset = RepresentativeSubset(pattern.num_leaves, num_traces)
        self.reports: List[Dict[int, Event]] = []

    def on_event(self, event: Event) -> List[Dict[int, Event]]:
        """Process one event; returns matches found inside the window."""
        self._events.append(event)
        is_trigger = any(
            self.pattern.leaves[leaf_id].event_class.could_match(event)
            for leaf_id in self._terminating
        )
        if not is_trigger:
            return []

        found = [
            match
            for match in enumerate_matches(self.pattern, self._events)
            if event in match.values()
        ]
        for match in found:
            self.subset.update(match)
        self.reports.extend(found)
        return found

    @property
    def covered_slots(self):
        """Slots covered by window-visible matches (for the omission
        comparison)."""
        return self.subset.covered_slots
