"""Wait-for-graph deadlock detection.

The conventional approach the paper compares against in Section V-C1:
"A commonly used method for detecting such a deadlock is to build a
dependency graph and check for cycles [2]. ... building and
maintaining a dependency graph is costly, which is apparent from the
runtime of 35 seconds to detect a cycle of length 30."

The detector consumes the same POET event stream as OCEP.  A ``Send``
event whose text names the destination trace (the convention used by
the MPI workloads, e.g. ``"to7"``) adds a wait-for edge from the
sending process to the destination; the edge is removed when the
matching receive consumes the message (recognised through the receive
event's partner id).  Every edge insertion triggers a cycle search
from the new edge — the full-graph work that makes this baseline
expensive relative to OCEP's pattern-localised search.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Set, Tuple

from repro.events.event import Event, EventId, EventKind


@dataclasses.dataclass(frozen=True)
class DeadlockReport:
    """A wait-for cycle found by the detector."""

    cycle: Tuple[int, ...]  # trace ids in cycle order
    at_event: EventId


class WaitForGraphDetector:
    """Online wait-for-graph cycle detector over a POET event stream."""

    def __init__(self, num_traces: int):
        self.num_traces = num_traces
        # edges[i] = set of traces that i waits for; each edge is keyed
        # by the send event that created it so receives can clear it.
        self._edges: Dict[int, Set[int]] = {}
        self._edge_of_send: Dict[EventId, Tuple[int, int]] = {}
        self.reports: List[DeadlockReport] = []
        self.timings: List[float] = []

    # ------------------------------------------------------------------
    # Stream interface
    # ------------------------------------------------------------------

    def on_event(self, event: Event) -> Optional[DeadlockReport]:
        """Consume an event; returns a report when a cycle forms."""
        start = time.perf_counter()
        report = None
        if event.kind is EventKind.SEND:
            dst = self._destination_of(event)
            if dst is not None:
                self._edges.setdefault(event.trace, set()).add(dst)
                self._edge_of_send[event.event_id] = (event.trace, dst)
                cycle = self._find_cycle(event.trace)
                if cycle is not None:
                    report = DeadlockReport(cycle=tuple(cycle), at_event=event.event_id)
                    self.reports.append(report)
        elif event.kind is EventKind.RECEIVE and event.partner is not None:
            edge = self._edge_of_send.pop(event.partner, None)
            if edge is not None:
                src, dst = edge
                # Only drop the edge when no other outstanding send
                # from src to dst still backs it.
                if not any(
                    e == (src, dst) for e in self._edge_of_send.values()
                ):
                    self._edges.get(src, set()).discard(dst)
        self.timings.append(time.perf_counter() - start)
        return report

    @staticmethod
    def _destination_of(event: Event) -> Optional[int]:
        """Parse the destination trace from a send event's text
        (convention: ``"to<trace>"``)."""
        text = event.text
        if text.startswith("to"):
            suffix = text[2:]
            if suffix.isdigit():
                return int(suffix)
        return None

    # ------------------------------------------------------------------
    # Cycle search
    # ------------------------------------------------------------------

    def _find_cycle(self, start: int) -> Optional[List[int]]:
        """DFS from ``start`` looking for a path back to it."""
        path: List[int] = [start]
        on_path = {start}
        visited: Set[int] = set()

        def dfs(node: int) -> bool:
            for succ in self._edges.get(node, ()):
                if succ == start:
                    return True
                if succ in on_path or succ in visited:
                    continue
                path.append(succ)
                on_path.add(succ)
                if dfs(succ):
                    return True
                on_path.discard(path.pop())
            visited.add(node)
            return False

        if dfs(start):
            return path
        return None

    @property
    def num_edges(self) -> int:
        """Current wait-for edge count (graph-size metric)."""
        return sum(len(v) for v in self._edges.values())
