"""Vector-timestamp message-race checking.

"A common method for detecting message races is to keep track of the
receive events on a trace and compare their vector timestamps for
causality [30].  If any two incoming messages to a process are
concurrent then the two messages race" (Section V-C2).  Tools such as
MPIRace-Check [32] pass timestamps inside the application's own
messages; this detector, like OCEP, reads them from the POET stream
instead ("minimal extra overhead on the application itself").

For each process, the detector keeps the send events of all messages
it has received and compares each new message's send against the
stored ones; a concurrent pair is a race.  The per-receive cost grows
with the receive history — the contrast with OCEP's GP/LS-restricted
domains.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List

from repro.events.event import Event, EventId, EventKind


@dataclasses.dataclass(frozen=True)
class RaceReport:
    """Two concurrent messages received by one process."""

    receiver: int
    first_send: EventId
    second_send: EventId


class TimestampRaceDetector:
    """Online message-race detector over a POET event stream."""

    def __init__(self, num_traces: int, keep_all: bool = True):
        self.num_traces = num_traces
        self.keep_all = keep_all
        self._sends: Dict[EventId, Event] = {}
        self._received: Dict[int, List[Event]] = {}
        self.reports: List[RaceReport] = []
        self.timings: List[float] = []

    def on_event(self, event: Event) -> List[RaceReport]:
        """Consume an event; returns races completed by it."""
        start = time.perf_counter()
        found: List[RaceReport] = []
        if event.kind is EventKind.SEND:
            self._sends[event.event_id] = event
        elif event.kind is EventKind.RECEIVE and event.partner is not None:
            send = self._sends.get(event.partner)
            if send is not None:
                history = self._received.setdefault(event.trace, [])
                for earlier in history:
                    if earlier.concurrent_with(send):
                        found.append(
                            RaceReport(
                                receiver=event.trace,
                                first_send=earlier.event_id,
                                second_send=send.event_id,
                            )
                        )
                history.append(send)
        self.reports.extend(found)
        self.timings.append(time.perf_counter() - start)
        return found

    @property
    def history_size(self) -> int:
        """Stored send events across all receivers (memory metric)."""
        return sum(len(v) for v in self._received.values())
