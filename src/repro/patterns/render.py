"""Rendering parsed patterns back to canonical source text.

The unparser produces source that re-parses to an equal
:class:`~repro.patterns.ast.PatternDef` — useful for tooling (pattern
normalisation, error messages, storing compiled patterns alongside
dumps) and as a parser round-trip invariant for the property tests.
"""

from __future__ import annotations

from repro.patterns.ast import (
    AndExpr,
    AttrSpec,
    AttrVar,
    BinaryExpr,
    ClassRef,
    Exact,
    Expr,
    KleeneExpr,
    NotExpr,
    OrExpr,
    PatternDef,
    VarRef,
    Wildcard,
    WithinExpr,
)

_NEEDS_QUOTES = set(" \t'()[]{},;$#")


def render_attr(spec: AttrSpec) -> str:
    """One attribute in class-definition syntax."""
    if isinstance(spec, Wildcard):
        return "''"
    if isinstance(spec, AttrVar):
        return f"${spec.name}"
    if isinstance(spec, Exact):
        value = spec.value
        if not value or any(ch in _NEEDS_QUOTES for ch in value):
            return f"'{value}'"
        if value[0].isdigit():
            return f"'{value}'"
        return value
    raise TypeError(f"unknown attribute spec {spec!r}")


def render_expr(expr: Expr, parent_is_causal: bool = False) -> str:
    """A pattern expression, parenthesised only where required."""
    if isinstance(expr, ClassRef):
        return expr.name
    if isinstance(expr, VarRef):
        return f"${expr.name}"
    if isinstance(expr, BinaryExpr):
        # causal chains are left-associative: the left child may stay
        # bare when it is itself causal, the right child may not.
        left = render_expr(expr.left, parent_is_causal=False)
        if isinstance(expr.right, (BinaryExpr, AndExpr, WithinExpr)):
            right = f"({render_expr(expr.right)})"
        else:
            right = render_expr(expr.right)
        if isinstance(expr.left, (AndExpr, WithinExpr)):
            left = f"({left})"
        text = f"{left} {expr.op.value} {right}"
        return f"({text})" if parent_is_causal else text
    if isinstance(expr, AndExpr):
        parts = []
        for part in expr.parts:
            rendered = render_expr(part)
            if isinstance(part, AndExpr):
                rendered = f"({rendered})"
            parts.append(rendered)
        text = " /\\ ".join(parts)
        return f"({text})" if parent_is_causal else text
    if isinstance(expr, OrExpr):
        # alternatives are plain class references; the disjunction binds
        # tighter than every causal operator, so no parens are needed.
        return " \\/ ".join(render_expr(part) for part in expr.parts)
    if isinstance(expr, KleeneExpr):
        if isinstance(expr.operand, OrExpr):
            return f"({render_expr(expr.operand)})+"
        return f"{render_expr(expr.operand)}+"
    if isinstance(expr, NotExpr):
        return f"!{render_expr(expr.operand)}"
    if isinstance(expr, WithinExpr):
        if isinstance(expr.operand, (AndExpr, WithinExpr)):
            operand = f"({render_expr(expr.operand)})"
        else:
            operand = render_expr(expr.operand)
        text = f"{operand} WITHIN {expr.bound}"
        if expr.domain != "sim":
            text = f"{text} {expr.domain}"
        return f"({text})" if parent_is_causal else text
    raise TypeError(f"unknown expression node {expr!r}")


def render_pattern(definition: PatternDef) -> str:
    """Full pattern-definition source (classes, variables, pattern)."""
    lines = []
    for class_def in definition.classes.values():
        lines.append(
            f"{class_def.name} := [{render_attr(class_def.process)}, "
            f"{render_attr(class_def.etype)}, {render_attr(class_def.text)}];"
        )
    for decl in definition.variables.values():
        lines.append(f"{decl.class_name} ${decl.var_name};")
    lines.append(f"pattern := {render_expr(definition.expr)};")
    return "\n".join(lines)
