"""Pattern-language error types."""

from __future__ import annotations

from typing import Optional


class PatternError(Exception):
    """Base class for pattern definition and compilation problems."""


class PatternParseError(PatternError):
    """Lexical or syntactic error in pattern source text.

    Carries the 1-based line and column of the offending input.  When
    the offending source line is known, the message includes a caret
    excerpt pointing at the exact column::

        unknown event class 'Pickupp' (line 3, column 12)
          pattern := Pickupp -> Drop;
                     ^
    """

    def __init__(
        self,
        message: str,
        line: int,
        column: int,
        source_line: Optional[str] = None,
    ):
        self.line = line
        self.column = column
        self.source_line = source_line
        text = f"{message} (line {line}, column {column})"
        if source_line is not None:
            stripped = source_line.rstrip("\n")
            caret = " " * (column - 1) + "^"
            text = f"{text}\n  {stripped}\n  {caret}"
        super().__init__(text)

    @classmethod
    def at_token(
        cls, message: str, token, source: Optional[str] = None
    ) -> "PatternParseError":
        """Build an error pointing at a lexer token, with a caret
        excerpt when the original source text is available."""
        source_line = None
        if source is not None:
            lines = source.splitlines()
            if 1 <= token.line <= len(lines):
                source_line = lines[token.line - 1]
        return cls(message, token.line, token.column, source_line=source_line)
