"""Pattern-language error types."""

from __future__ import annotations


class PatternError(Exception):
    """Base class for pattern definition and compilation problems."""


class PatternParseError(PatternError):
    """Lexical or syntactic error in pattern source text.

    Carries the 1-based line and column of the offending input.
    """

    def __init__(self, message: str, line: int, column: int):
        self.line = line
        self.column = column
        super().__init__(f"{message} (line {line}, column {column})")
