"""Recursive-descent parser for the pattern language.

Grammar (see the package docstring for examples)::

    program      := { class_def | var_decl } pattern_def { class_def | var_decl }
    class_def    := IDENT ':=' '[' attr ',' attr ',' attr ']' ';'
    attr         := STRING            # '' is a wildcard, otherwise exact
                  | IDENT             # exact
                  | '$' NUM           # attribute variable
    var_decl     := IDENT '$' IDENT ';'
    pattern_def  := 'pattern' ':=' expr ';'
    expr         := rel { '/\\' rel }               # AND binds loosest
    rel          := primary { causal_op primary }    # left-associative
    causal_op    := '->' | '||' | '<>' | '~>'
    primary      := IDENT | '$' IDENT | '(' expr ')'

Attribute variables are ``$`` followed by digits (``$1``); event
variables are ``$`` followed by a name (``$Diff``).  Declarations may
appear in any order relative to each other; the pattern may reference
only declared classes and variables.
"""

from __future__ import annotations

from typing import List, Optional

from repro.patterns.ast import (
    AndExpr,
    AttrSpec,
    AttrVar,
    BinaryExpr,
    ClassDef,
    ClassRef,
    Exact,
    Expr,
    Operator,
    PatternDef,
    VarDecl,
    VarRef,
    Wildcard,
    walk_leaves,
)
from repro.patterns.errors import PatternParseError
from repro.patterns.lexer import Token, TokenKind, tokenize

_CAUSAL_OPS = {
    TokenKind.PRECEDES: Operator.PRECEDES,
    TokenKind.CONCURRENT: Operator.CONCURRENT,
    TokenKind.PARTNER: Operator.PARTNER,
    TokenKind.LIMITED: Operator.LIMITED,
    TokenKind.ENTANGLED: Operator.ENTANGLED,
}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _expect(self, kind: TokenKind, what: str) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise self._error(f"expected {what}, found {token.value!r}", token)
        return self._advance()

    @staticmethod
    def _error(message: str, token: Token) -> PatternParseError:
        return PatternParseError(message, token.line, token.column)

    # ------------------------------------------------------------------
    # Program
    # ------------------------------------------------------------------

    def parse(self) -> PatternDef:
        classes = {}
        variables = {}
        expr: Optional[Expr] = None

        while self._peek().kind is not TokenKind.EOF:
            token = self._peek()
            if token.kind is not TokenKind.IDENT:
                raise self._error(
                    f"expected a declaration or 'pattern', found {token.value!r}",
                    token,
                )
            if token.value == "pattern":
                if expr is not None:
                    raise self._error("duplicate pattern definition", token)
                expr = self._parse_pattern_def()
                continue
            name_token = self._advance()
            nxt = self._peek()
            if nxt.kind is TokenKind.ASSIGN:
                class_def = self._parse_class_body(name_token.value)
                if class_def.name in classes:
                    raise self._error(
                        f"duplicate class {class_def.name!r}", name_token
                    )
                classes[class_def.name] = class_def
            elif nxt.kind is TokenKind.DOLLAR:
                var_token = self._advance()
                self._expect(TokenKind.SEMI, "';'")
                if var_token.value.isdigit():
                    raise self._error(
                        "event variable names cannot be numeric", var_token
                    )
                if var_token.value in variables:
                    raise self._error(
                        f"duplicate variable ${var_token.value}", var_token
                    )
                variables[var_token.value] = VarDecl(
                    class_name=name_token.value, var_name=var_token.value
                )
            else:
                raise self._error(
                    f"expected ':=' or a variable after {name_token.value!r}", nxt
                )

        if expr is None:
            token = self._peek()
            raise self._error("missing 'pattern := ...;' definition", token)

        definition = PatternDef(classes=classes, variables=variables, expr=expr)
        self._validate(definition)
        return definition

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def _parse_class_body(self, name: str) -> ClassDef:
        self._expect(TokenKind.ASSIGN, "':='")
        self._expect(TokenKind.LBRACKET, "'['")
        process = self._parse_attr()
        self._expect(TokenKind.COMMA, "','")
        etype = self._parse_attr()
        self._expect(TokenKind.COMMA, "','")
        text = self._parse_attr()
        self._expect(TokenKind.RBRACKET, "']'")
        self._expect(TokenKind.SEMI, "';'")
        return ClassDef(name=name, process=process, etype=etype, text=text)

    def _parse_attr(self) -> AttrSpec:
        token = self._peek()
        if token.kind is TokenKind.STRING:
            self._advance()
            return Wildcard() if token.value == "" else Exact(token.value)
        if token.kind is TokenKind.IDENT:
            self._advance()
            return Exact(token.value)
        if token.kind is TokenKind.DOLLAR:
            self._advance()
            return AttrVar(token.value)
        raise self._error(
            f"expected an attribute (string, name, or $var), found {token.value!r}",
            token,
        )

    # ------------------------------------------------------------------
    # Pattern expression
    # ------------------------------------------------------------------

    def _parse_pattern_def(self) -> Expr:
        self._advance()  # 'pattern'
        self._expect(TokenKind.ASSIGN, "':='")
        expr = self._parse_expr()
        self._expect(TokenKind.SEMI, "';'")
        return expr

    def _parse_expr(self) -> Expr:
        parts = [self._parse_rel()]
        while self._peek().kind is TokenKind.AND:
            self._advance()
            parts.append(self._parse_rel())
        if len(parts) == 1:
            return parts[0]
        return AndExpr(parts=tuple(parts))

    def _parse_rel(self) -> Expr:
        expr = self._parse_primary()
        while self._peek().kind in _CAUSAL_OPS:
            op_token = self._advance()
            right = self._parse_primary()
            expr = BinaryExpr(op=_CAUSAL_OPS[op_token.kind], left=expr, right=right)
        return expr

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN, "')'")
            return expr
        if token.kind is TokenKind.IDENT:
            self._advance()
            return ClassRef(name=token.value)
        if token.kind is TokenKind.DOLLAR:
            self._advance()
            if token.value.isdigit():
                raise self._error(
                    "attribute variables cannot appear as pattern events", token
                )
            return VarRef(name=token.value)
        raise self._error(
            f"expected an event class, variable, or '(', found {token.value!r}",
            token,
        )

    # ------------------------------------------------------------------
    # Semantic validation
    # ------------------------------------------------------------------

    def _validate(self, definition: PatternDef) -> None:
        eof = self._tokens[-1]
        for decl in definition.variables.values():
            if decl.class_name not in definition.classes:
                raise self._error(
                    f"variable ${decl.var_name} references unknown class "
                    f"{decl.class_name!r}",
                    eof,
                )
        for leaf in walk_leaves(definition.expr):
            if isinstance(leaf, ClassRef) and leaf.name not in definition.classes:
                raise self._error(f"unknown event class {leaf.name!r}", eof)
            if isinstance(leaf, VarRef) and leaf.name not in definition.variables:
                raise self._error(f"unknown event variable ${leaf.name}", eof)


def parse_pattern(source: str) -> PatternDef:
    """Parse pattern source text into a :class:`PatternDef`.

    Raises :class:`~repro.patterns.errors.PatternParseError` with line
    and column information on malformed input.
    """
    return _Parser(tokenize(source)).parse()
