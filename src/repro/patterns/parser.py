"""Recursive-descent parser for the pattern language.

Grammar (see the package docstring for examples)::

    program      := { class_def | var_decl } pattern_def { class_def | var_decl }
    class_def    := IDENT ':=' '[' attr ',' attr ',' attr ']' ';'
    attr         := STRING            # '' is a wildcard, otherwise exact
                  | IDENT             # exact
                  | '$' NUM           # attribute variable
    var_decl     := IDENT '$' IDENT ';'
    pattern_def  := 'pattern' ':=' expr ';'
    expr         := windowed { '/\\' windowed }          # AND binds loosest
    windowed     := rel [ 'WITHIN' NUMBER [ domain ] ]   # window guard
    domain       := 'sim' | 'wall'
    rel          := term { causal_op term }              # left-associative
    causal_op    := '->' | '||' | '<>' | '~>' | '<->'
    term         := ( '!' | 'ABSENT' ) postfix | postfix
    postfix      := alt [ '+' ]                          # Kleene closure
    alt          := primary { '\\/' primary }            # leaf disjunction
    primary      := IDENT | '$' IDENT | '(' expr ')'

Attribute variables are ``$`` followed by digits (``$1``); event
variables are ``$`` followed by a name (``$Diff``).  Declarations may
appear in any order relative to each other; the pattern may reference
only declared classes and variables.  ``WITHIN`` and ``ABSENT`` are
reserved words.

Structural rules enforced here (with source positions):

* disjunction alternatives must be plain class references — one leaf
  position matched by any alternative, bindings scoped per branch;
* the Kleene ``+`` applies to a class reference or a disjunction of
  class references, never to an event variable or a compound;
* a negation (``!C`` / ``ABSENT C``) must sit strictly *between* two
  ``->`` operators of a precedence chain (its neighbours are its
  causal anchors), its operand must be a plain class reference, and
  two negations may not be adjacent.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.patterns.ast import (
    AndExpr,
    AttrSpec,
    AttrVar,
    BinaryExpr,
    ClassDef,
    ClassRef,
    Exact,
    Expr,
    KleeneExpr,
    NotExpr,
    Operator,
    OrExpr,
    PatternDef,
    VarDecl,
    VarRef,
    Wildcard,
    WithinExpr,
)
from repro.patterns.errors import PatternParseError
from repro.patterns.lexer import Token, TokenKind, tokenize

_CAUSAL_OPS = {
    TokenKind.PRECEDES: Operator.PRECEDES,
    TokenKind.CONCURRENT: Operator.CONCURRENT,
    TokenKind.PARTNER: Operator.PARTNER,
    TokenKind.LIMITED: Operator.LIMITED,
    TokenKind.ENTANGLED: Operator.ENTANGLED,
}

#: Identifiers with grammatical meaning — not usable as class or
#: variable names.
RESERVED_WORDS = frozenset({"WITHIN", "ABSENT", "pattern"})

#: Window clock domains accepted after ``WITHIN <n>``.
WINDOW_DOMAINS = ("sim", "wall")


class _Parser:
    def __init__(self, tokens: List[Token], source: Optional[str] = None):
        self._tokens = tokens
        self._source = source
        self._pos = 0
        # Every class/variable reference in the pattern expression,
        # with its token — validation points at the exact occurrence.
        self._class_refs: List[Token] = []
        self._var_refs: List[Token] = []

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _expect(self, kind: TokenKind, what: str) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise self._error(f"expected {what}, found {token.value!r}", token)
        return self._advance()

    def _error(self, message: str, token: Token) -> PatternParseError:
        return PatternParseError.at_token(message, token, self._source)

    # ------------------------------------------------------------------
    # Program
    # ------------------------------------------------------------------

    def parse(self) -> PatternDef:
        classes = {}
        variables = {}
        expr: Optional[Expr] = None

        while self._peek().kind is not TokenKind.EOF:
            token = self._peek()
            if token.kind is not TokenKind.IDENT:
                raise self._error(
                    f"expected a declaration or 'pattern', found {token.value!r}",
                    token,
                )
            if token.value == "pattern":
                if expr is not None:
                    raise self._error("duplicate pattern definition", token)
                expr = self._parse_pattern_def()
                continue
            name_token = self._advance()
            nxt = self._peek()
            if nxt.kind is TokenKind.ASSIGN:
                if name_token.value in RESERVED_WORDS:
                    raise self._error(
                        f"{name_token.value!r} is a reserved word", name_token
                    )
                class_def = self._parse_class_body(name_token.value)
                if class_def.name in classes:
                    raise self._error(
                        f"duplicate class {class_def.name!r}", name_token
                    )
                classes[class_def.name] = class_def
            elif nxt.kind is TokenKind.DOLLAR:
                var_token = self._advance()
                self._expect(TokenKind.SEMI, "';'")
                if var_token.value.isdigit():
                    raise self._error(
                        "event variable names cannot be numeric", var_token
                    )
                if var_token.value in RESERVED_WORDS:
                    raise self._error(
                        f"{var_token.value!r} is a reserved word", var_token
                    )
                if var_token.value in variables:
                    raise self._error(
                        f"duplicate variable ${var_token.value}", var_token
                    )
                variables[var_token.value] = VarDecl(
                    class_name=name_token.value, var_name=var_token.value
                )
                self._class_refs.append(name_token)
            else:
                raise self._error(
                    f"expected ':=' or a variable after {name_token.value!r}", nxt
                )

        if expr is None:
            token = self._peek()
            raise self._error("missing 'pattern := ...;' definition", token)

        definition = PatternDef(classes=classes, variables=variables, expr=expr)
        self._validate(definition)
        return definition

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def _parse_class_body(self, name: str) -> ClassDef:
        self._expect(TokenKind.ASSIGN, "':='")
        self._expect(TokenKind.LBRACKET, "'['")
        process = self._parse_attr()
        self._expect(TokenKind.COMMA, "','")
        etype = self._parse_attr()
        self._expect(TokenKind.COMMA, "','")
        text = self._parse_attr()
        self._expect(TokenKind.RBRACKET, "']'")
        self._expect(TokenKind.SEMI, "';'")
        return ClassDef(name=name, process=process, etype=etype, text=text)

    def _parse_attr(self) -> AttrSpec:
        token = self._peek()
        if token.kind is TokenKind.STRING:
            self._advance()
            return Wildcard() if token.value == "" else Exact(token.value)
        if token.kind in (TokenKind.IDENT, TokenKind.NUMBER):
            self._advance()
            return Exact(token.value)
        if token.kind is TokenKind.DOLLAR:
            self._advance()
            return AttrVar(token.value)
        raise self._error(
            f"expected an attribute (string, name, or $var), found {token.value!r}",
            token,
        )

    # ------------------------------------------------------------------
    # Pattern expression
    # ------------------------------------------------------------------

    def _parse_pattern_def(self) -> Expr:
        self._advance()  # 'pattern'
        self._expect(TokenKind.ASSIGN, "':='")
        expr = self._parse_expr()
        self._expect(TokenKind.SEMI, "';'")
        return expr

    def _parse_expr(self) -> Expr:
        parts = [self._parse_windowed()]
        while self._peek().kind is TokenKind.AND:
            self._advance()
            parts.append(self._parse_windowed())
        if len(parts) == 1:
            return parts[0]
        return AndExpr(parts=tuple(parts))

    def _parse_windowed(self) -> Expr:
        expr = self._parse_rel()
        token = self._peek()
        if token.kind is TokenKind.IDENT and token.value == "WITHIN":
            self._advance()
            number = self._expect(TokenKind.NUMBER, "a window width")
            domain = "sim"
            nxt = self._peek()
            if nxt.kind is TokenKind.IDENT and nxt.value in WINDOW_DOMAINS:
                self._advance()
                domain = nxt.value
            elif nxt.kind is TokenKind.IDENT and nxt.value not in RESERVED_WORDS:
                raise self._error(
                    f"expected a window domain {WINDOW_DOMAINS}, "
                    f"found {nxt.value!r}",
                    nxt,
                )
            if isinstance(expr, NotExpr):
                raise self._error(
                    "a negation cannot carry a window guard", token
                )
            expr = WithinExpr(
                operand=expr, bound=int(number.value), domain=domain
            )
        return expr

    def _parse_rel(self) -> Expr:
        terms: List[Tuple[Expr, Token]] = [self._parse_term()]
        ops: List[Token] = []
        while self._peek().kind in _CAUSAL_OPS:
            ops.append(self._advance())
            terms.append(self._parse_term())
        self._check_negation_placement(terms, ops)
        expr = terms[0][0]
        for op_token, (right, _right_tok) in zip(ops, terms[1:]):
            expr = BinaryExpr(
                op=_CAUSAL_OPS[op_token.kind], left=expr, right=right
            )
        return expr

    def _check_negation_placement(
        self, terms: List[Tuple[Expr, Token]], ops: List[Token]
    ) -> None:
        """A negated term must sit between two ``->`` operators, with
        non-negated neighbours (its causal anchors)."""
        for k, (term, term_token) in enumerate(terms):
            if not isinstance(term, NotExpr):
                continue
            if k == 0 or ops[k - 1].kind is not TokenKind.PRECEDES:
                raise self._error(
                    "a negation needs a preceding '->' anchor", term_token
                )
            if k == len(terms) - 1 or ops[k].kind is not TokenKind.PRECEDES:
                raise self._error(
                    "a negation needs a following '->' anchor", term_token
                )
            if isinstance(terms[k - 1][0], NotExpr) or isinstance(
                terms[k + 1][0], NotExpr
            ):
                raise self._error(
                    "adjacent negations are not supported", term_token
                )

    def _parse_term(self) -> Tuple[Expr, Token]:
        """One causal-chain element; returns (node, its first token)."""
        token = self._peek()
        negated = False
        if token.kind is TokenKind.BANG or (
            token.kind is TokenKind.IDENT and token.value == "ABSENT"
        ):
            self._advance()
            negated = True
        expr = self._parse_postfix()
        if negated:
            if not isinstance(expr, ClassRef):
                raise self._error(
                    "negation applies to a plain event class", token
                )
            return NotExpr(operand=expr), token
        return expr, token

    def _parse_postfix(self) -> Expr:
        expr = self._parse_alt()
        if self._peek().kind is TokenKind.PLUS:
            plus = self._advance()
            if not isinstance(expr, (ClassRef, OrExpr, VarRef)):
                raise self._error(
                    "the Kleene closure applies to an event class, an "
                    "event variable, or a disjunction of event classes",
                    plus,
                )
            expr = KleeneExpr(operand=expr)
            if self._peek().kind is TokenKind.PLUS:
                raise self._error(
                    "duplicate Kleene closure", self._peek()
                )
        return expr

    def _parse_alt(self) -> Expr:
        expr = self._parse_primary()
        if self._peek().kind is not TokenKind.OR:
            return expr
        parts = [expr]
        while self._peek().kind is TokenKind.OR:
            or_token = self._advance()
            part = self._parse_primary()
            parts.append(part)
        for part in parts:
            if not isinstance(part, ClassRef):
                raise self._error(
                    "disjunction alternatives must be plain event classes",
                    or_token,
                )
        return OrExpr(parts=tuple(parts))

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN, "')'")
            return expr
        if token.kind is TokenKind.IDENT:
            if token.value in RESERVED_WORDS:
                raise self._error(
                    f"{token.value!r} is a reserved word", token
                )
            self._advance()
            self._class_refs.append(token)
            return ClassRef(name=token.value)
        if token.kind is TokenKind.DOLLAR:
            self._advance()
            if token.value.isdigit():
                raise self._error(
                    "attribute variables cannot appear as pattern events", token
                )
            self._var_refs.append(token)
            return VarRef(name=token.value)
        raise self._error(
            f"expected an event class, variable, or '(', found {token.value!r}",
            token,
        )

    # ------------------------------------------------------------------
    # Semantic validation
    # ------------------------------------------------------------------

    def _validate(self, definition: PatternDef) -> None:
        for decl in definition.variables.values():
            if decl.class_name not in definition.classes:
                token = next(
                    (
                        t
                        for t in self._class_refs
                        if t.value == decl.class_name
                    ),
                    self._tokens[-1],
                )
                raise self._error(
                    f"variable ${decl.var_name} references unknown class "
                    f"{decl.class_name!r}",
                    token,
                )
        for token in self._class_refs:
            if token.value not in definition.classes:
                raise self._error(
                    f"unknown event class {token.value!r}", token
                )
        for token in self._var_refs:
            if token.value not in definition.variables:
                raise self._error(
                    f"unknown event variable ${token.value}", token
                )


def parse_pattern(source: str) -> PatternDef:
    """Parse pattern source text into a :class:`PatternDef`.

    Raises :class:`~repro.patterns.errors.PatternParseError` with line
    and column information — and a caret excerpt of the offending
    source line — on malformed input.
    """
    return _Parser(tokenize(source), source).parse()
