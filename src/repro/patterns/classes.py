"""Runtime event classes: matching events against class specifications.

An event class ``[process, type, text]`` matches an event when each
attribute matches: exact attributes compare for equality, wildcards
always match, and attribute variables (``$1``) match when consistent
with the current binding environment, extending it on first use
(Section III-A: attributes "can be specified for an exact match, left
empty as a wild-card or used as a variable to enforce equality
comparison in an operator").

The *process* attribute of an event is its trace name (e.g. ``"P3"``
or ``"sem0"``); exact process attributes also accept the bare trace
number as a string.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Dict, Optional, Sequence, Tuple

from repro.events.event import Event
from repro.patterns.ast import AttrSpec, AttrVar, ClassDef, Exact, Wildcard

#: An attribute binding environment: variable name -> bound value.
Bindings = Dict[str, str]


@dataclasses.dataclass(frozen=True)
class EventClass:
    """A compiled event class bound to a concrete trace-name table."""

    name: str
    process: AttrSpec
    etype: AttrSpec
    text: AttrSpec
    trace_names: Sequence[str]

    @classmethod
    def from_def(cls, definition: ClassDef, trace_names: Sequence[str]) -> "EventClass":
        return cls(
            name=definition.name,
            process=definition.process,
            etype=definition.etype,
            text=definition.text,
            trace_names=tuple(trace_names),
        )

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------

    def event_attrs(self, event: Event) -> Dict[str, str]:
        """The three attribute values of an event, as strings."""
        return {
            "process": self._trace_name(event.trace),
            "type": event.etype,
            "text": event.text,
        }

    def _trace_name(self, trace: int) -> str:
        if 0 <= trace < len(self.trace_names):
            return self.trace_names[trace]
        return str(trace)

    def matches(self, event: Event, bindings: Optional[Bindings] = None) -> Optional[Bindings]:
        """Match an event against this class under a binding environment.

        Returns the (possibly extended) bindings on success, ``None``
        on mismatch.  The input environment is never mutated.
        """
        env = dict(bindings) if bindings else {}
        checks = (
            (self.process, self._trace_name(event.trace), str(event.trace)),
            (self.etype, event.etype, None),
            (self.text, event.text, None),
        )
        for spec, value, alias in checks:
            if isinstance(spec, Wildcard):
                continue
            if isinstance(spec, Exact):
                if spec.value != value and spec.value != alias:
                    return None
                continue
            if isinstance(spec, AttrVar):
                bound = env.get(spec.name)
                if bound is None:
                    env[spec.name] = value
                elif bound != value and bound != alias:
                    return None
                continue
            raise TypeError(f"unknown attribute spec {spec!r}")
        return env

    def could_match(self, event: Event) -> bool:
        """Match ignoring variables (used to size candidate histories)."""
        return self.matches(event, None) is not None

    # ------------------------------------------------------------------
    # Search hints
    # ------------------------------------------------------------------

    @functools.cached_property
    def _trace_ids(self) -> Dict[str, int]:
        """Name (and stringified number) -> trace id, first wins —
        mirrors the linear scan :meth:`pinned_trace` used to do, at
        dict-lookup cost per resolution."""
        ids: Dict[str, int] = {}
        for trace, name in enumerate(self.trace_names):
            ids.setdefault(name, trace)
            ids.setdefault(str(trace), trace)
        return ids

    def pinned_trace(self, bindings: Optional[Bindings]) -> Optional[int]:
        """The only trace this class can match on, when the process
        attribute is exact or already bound — lets the matcher skip the
        trace sweep entirely.  ``None`` when unresolved."""
        value: Optional[str] = None
        if isinstance(self.process, Exact):
            value = self.process.value
        elif isinstance(self.process, AttrVar) and bindings:
            value = bindings.get(self.process.name)
        if value is None:
            return None
        # -1 = resolved to a nonexistent trace: matches nowhere
        return self._trace_ids.get(value, -1)

    def exact_etype(self) -> Optional[str]:
        """The exact event type this class requires, or ``None`` when
        the type attribute is a wildcard or variable — a cheap
        prefilter key for per-event leaf dispatch."""
        return self.etype.value if isinstance(self.etype, Exact) else None

    def required_text(self, bindings: Optional[Bindings]) -> Optional[str]:
        """The exact text a candidate must carry, when determinable —
        enables indexed candidate lookup.  ``None`` when unresolved."""
        if isinstance(self.text, Exact):
            return self.text.value
        if isinstance(self.text, AttrVar) and bindings:
            return bindings.get(self.text.name)
        return None

    def __repr__(self) -> str:
        def show(spec: AttrSpec) -> str:
            if isinstance(spec, Wildcard):
                return "''"
            if isinstance(spec, Exact):
                return spec.value
            return f"${spec.name}"

        return (
            f"EventClass({self.name} := [{show(self.process)}, "
            f"{show(self.etype)}, {show(self.text)}])"
        )


@dataclasses.dataclass(frozen=True)
class UnionClass:
    """A disjunction of event classes (``A \\/ B``) occupying one
    pattern position.

    Alternatives are tried left to right; the first branch that matches
    wins.  Each branch is matched against a *copy* of the incoming
    binding environment, so attribute-variable bindings made by a
    failing branch never leak into the next branch (per-branch
    scoping) — only the winning branch's extensions are returned.

    The search hints are deliberately conservative: a hint is offered
    only when *every* alternative agrees on it; the introspectable
    ``process``/``etype``/``text`` attribute specs read as wildcards so
    generic code (e.g. the evaluation-order heuristic) never assumes a
    constraint that only one branch would enforce.
    """

    name: str
    alternatives: Tuple[EventClass, ...]

    def __post_init__(self) -> None:
        if len(self.alternatives) < 2:
            raise ValueError("a union class needs at least two alternatives")

    @classmethod
    def from_defs(
        cls,
        definitions: Sequence[ClassDef],
        trace_names: Sequence[str],
    ) -> "UnionClass":
        branches = tuple(
            EventClass.from_def(d, trace_names) for d in definitions
        )
        return cls(
            name=" \\/ ".join(b.name for b in branches),
            alternatives=branches,
        )

    # Generic attribute introspection sees an unconstrained class.
    @property
    def process(self) -> AttrSpec:
        return Wildcard()

    @property
    def etype(self) -> AttrSpec:
        return Wildcard()

    @property
    def text(self) -> AttrSpec:
        return Wildcard()

    @property
    def trace_names(self) -> Sequence[str]:
        return self.alternatives[0].trace_names

    def event_attrs(self, event: Event) -> Dict[str, str]:
        return self.alternatives[0].event_attrs(event)

    def matches(self, event: Event, bindings: Optional[Bindings] = None) -> Optional[Bindings]:
        """First-match-wins over the alternatives, each against its own
        copy of the environment (``EventClass.matches`` never mutates
        its input, which is what makes the branch scoping sound)."""
        for branch in self.alternatives:
            env = branch.matches(event, bindings)
            if env is not None:
                return env
        return None

    def could_match(self, event: Event) -> bool:
        return any(branch.could_match(event) for branch in self.alternatives)

    # ------------------------------------------------------------------
    # Search hints — only when every branch agrees
    # ------------------------------------------------------------------

    def pinned_trace(self, bindings: Optional[Bindings]) -> Optional[int]:
        pins = {branch.pinned_trace(bindings) for branch in self.alternatives}
        if len(pins) == 1:
            return pins.pop()
        return None

    def exact_etype(self) -> Optional[str]:
        etypes = {branch.exact_etype() for branch in self.alternatives}
        if len(etypes) == 1:
            return etypes.pop()
        return None

    def required_text(self, bindings: Optional[Bindings]) -> Optional[str]:
        texts = {branch.required_text(bindings) for branch in self.alternatives}
        if len(texts) == 1:
            return texts.pop()
        return None

    def __repr__(self) -> str:
        return f"UnionClass({self.name})"
