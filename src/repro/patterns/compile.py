"""Compiling a pattern tree to the matcher's constraint form.

The OCEP matcher works on *pairwise* causal constraints between leaf
positions plus a small number of whole-assignment checks.  This module
derives them from the tree:

* For every unordered pair of distinct leaves, the lowest common
  ancestor (LCA) node determines the constraint:

  - LCA ``->`` with single-leaf sides: strict ``BEFORE`` between the
    two leaves.
  - LCA ``->`` with a multi-leaf side: the compound precedence of
    equation (2) — no right-side event may precede a left-side event
    (``NOT_AFTER`` pairwise, which is non-entanglement for disjoint
    sets), and *some* left event must precede *some* right event
    (recorded as an existential check over the node).
  - LCA ``||``: pairwise ``CONCURRENT`` (equation (3)).
  - LCA ``<>``: ``PARTNER`` (single-leaf sides only).
  - LCA ``~>``: ``LIMITED`` — strict ``BEFORE`` plus the immediacy
    side-condition checked against the left leaf's history.
  - LCA ``/\\``: no constraint.

* Constraints accumulated on the same pair (possible when a variable
  leaf appears under several operators) are conjoined; contradictions
  (e.g. ``$A -> B /\\ B -> $A``) are reported at compile time.

All leaves must bind pairwise-distinct events; event identity is
expressed with variables, never by accident.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.patterns.ast import AttrVar, Exact, Operator
from repro.patterns.classes import UnionClass
from repro.patterns.errors import PatternError
from repro.patterns.tree import (
    LeafNode,
    NegationSpec,
    PatternTree,
    TreeExpr,
    TreeLeaf,
    WindowSpec,
)


class Constraint(enum.Enum):
    """Directional causal requirement of leaf ``i`` relative to leaf ``j``."""

    NONE = "none"
    BEFORE = "before"  # e_i -> e_j, strictly
    AFTER = "after"  # e_j -> e_i, strictly
    NOT_AFTER = "not-after"  # not (e_j -> e_i)
    NOT_BEFORE = "not-before"  # not (e_i -> e_j)
    CONCURRENT = "concurrent"  # e_i || e_j
    PARTNER = "partner"  # halves of one message
    LIMITED = "limited"  # e_i -> e_j with no class-i event between
    LIMITED_REV = "limited-rev"  # mirror of LIMITED

    def inverse(self) -> "Constraint":
        """The same requirement stated from leaf ``j``'s perspective."""
        return _INVERSE[self]


_INVERSE = {
    Constraint.NONE: Constraint.NONE,
    Constraint.BEFORE: Constraint.AFTER,
    Constraint.AFTER: Constraint.BEFORE,
    Constraint.NOT_AFTER: Constraint.NOT_BEFORE,
    Constraint.NOT_BEFORE: Constraint.NOT_AFTER,
    Constraint.CONCURRENT: Constraint.CONCURRENT,
    Constraint.PARTNER: Constraint.PARTNER,
    Constraint.LIMITED: Constraint.LIMITED_REV,
    Constraint.LIMITED_REV: Constraint.LIMITED,
}

# Conjunction of two constraints on the same ordered pair.  Missing
# combinations are contradictions or unsupported mixes.
_COMBINE: Dict[FrozenSet[Constraint], Constraint] = {}


def _register(a: Constraint, b: Constraint, result: Constraint) -> None:
    _COMBINE[frozenset((a, b))] = result


for _c in Constraint:
    _register(_c, Constraint.NONE, _c)
    _register(_c, _c, _c)
_register(Constraint.BEFORE, Constraint.NOT_AFTER, Constraint.BEFORE)
_register(Constraint.AFTER, Constraint.NOT_BEFORE, Constraint.AFTER)
_register(Constraint.CONCURRENT, Constraint.NOT_AFTER, Constraint.CONCURRENT)
_register(Constraint.CONCURRENT, Constraint.NOT_BEFORE, Constraint.CONCURRENT)
_register(Constraint.NOT_AFTER, Constraint.NOT_BEFORE, Constraint.CONCURRENT)
_register(Constraint.LIMITED, Constraint.BEFORE, Constraint.LIMITED)
_register(Constraint.LIMITED, Constraint.NOT_AFTER, Constraint.LIMITED)
_register(Constraint.LIMITED_REV, Constraint.AFTER, Constraint.LIMITED_REV)
_register(Constraint.LIMITED_REV, Constraint.NOT_BEFORE, Constraint.LIMITED_REV)


def _combine(a: Constraint, b: Constraint, pair: Tuple[int, int]) -> Constraint:
    result = _COMBINE.get(frozenset((a, b)))
    if result is None:
        raise PatternError(
            f"contradictory or unsupported constraints {a.value!r} and "
            f"{b.value!r} between pattern positions {pair[0]} and {pair[1]}"
        )
    return result


@dataclasses.dataclass(frozen=True)
class ExistCheck:
    """A compound ``->`` node's existential requirement: some event
    bound on the left side must strictly precede some event bound on
    the right side (the ``exists`` half of equation (2))."""

    left_leaves: Tuple[int, ...]
    right_leaves: Tuple[int, ...]


@dataclasses.dataclass(frozen=True)
class EntangleCheck:
    """A ``<->`` node's whole-assignment requirement (equation (1)).

    Leaves bind pairwise-distinct events, so overlap is impossible and
    entanglement reduces to *crossing*: some left event precedes some
    right event AND some right event precedes some left event.  This is
    inherently non-pairwise, so it is checked on complete assignments.
    """

    left_leaves: Tuple[int, ...]
    right_leaves: Tuple[int, ...]


class CompiledPattern:
    """A pattern in the matcher's form.

    Attributes
    ----------
    tree:
        The source :class:`~repro.patterns.tree.PatternTree`.
    leaves:
        Leaf nodes, indexed by leaf id.
    exist_checks:
        Whole-assignment existential checks for compound precedence.
    """

    def __init__(self, tree: PatternTree):
        self.tree = tree
        self.leaves: Sequence[LeafNode] = tree.leaves
        self._matrix: Dict[Tuple[int, int], Constraint] = {}
        self.exist_checks: List[ExistCheck] = []
        self.entangle_checks: List[EntangleCheck] = []
        self._derive(tree.root)
        self._orders: Dict[int, Tuple[int, ...]] = {}
        # dense matrix for O(1) lookups in the matcher's hot path
        size = len(self.leaves)
        self._dense = [
            [Constraint.NONE] * size for _ in range(size)
        ]
        for (i, j), constraint in self._matrix.items():
            self._dense[i][j] = constraint
            self._dense[j][i] = constraint.inverse()
        self._check_satisfiable()
        self._check_v2_restrictions()
        # tightest WITHIN bound per leaf pair and clock domain; the
        # diagonal carries the member-member bound for Kleene groups
        self._window_sim: List[List[Optional[int]]] = [
            [None] * size for _ in range(size)
        ]
        self._window_wall: List[List[Optional[int]]] = [
            [None] * size for _ in range(size)
        ]
        for spec in self.windows:
            table = (
                self._window_sim if spec.domain == "sim" else self._window_wall
            )
            for i in spec.leaf_ids:
                for j in spec.leaf_ids:
                    current = table[i][j]
                    if current is None or spec.bound < current:
                        table[i][j] = spec.bound

    # ------------------------------------------------------------------
    # Constraint derivation
    # ------------------------------------------------------------------

    def _derive(self, node: TreeExpr) -> None:
        if isinstance(node, TreeLeaf):
            return
        for child in node.children:
            self._derive(child)
        if node.op is Operator.AND:
            return

        left, right = node.children
        left_ids = self.tree.leaf_ids_under(left)
        right_ids = self.tree.leaf_ids_under(right)
        shared = set(left_ids) & set(right_ids)
        if shared:
            labels = ", ".join(self.leaves[i].label for i in sorted(shared))
            raise PatternError(
                f"{labels} cannot appear on both sides of {node.op.value!r}"
            )

        if node.op is Operator.PRECEDES:
            if len(left_ids) == 1 and len(right_ids) == 1:
                self._add(left_ids[0], right_ids[0], Constraint.BEFORE)
            else:
                for i in left_ids:
                    for j in right_ids:
                        self._add(i, j, Constraint.NOT_AFTER)
                self.exist_checks.append(
                    ExistCheck(tuple(left_ids), tuple(right_ids))
                )
        elif node.op is Operator.CONCURRENT:
            for i in left_ids:
                for j in right_ids:
                    self._add(i, j, Constraint.CONCURRENT)
        elif node.op is Operator.PARTNER:
            if len(left_ids) != 1 or len(right_ids) != 1:
                raise PatternError(
                    "the partner operator relates single events, not compounds"
                )
            self._add(left_ids[0], right_ids[0], Constraint.PARTNER)
        elif node.op is Operator.LIMITED:
            if len(left_ids) != 1 or len(right_ids) != 1:
                raise PatternError(
                    "limited precedence relates single events, not compounds"
                )
            self._add(left_ids[0], right_ids[0], Constraint.LIMITED)
        elif node.op is Operator.ENTANGLED:
            if len(left_ids) == 1 and len(right_ids) == 1:
                raise PatternError(
                    "two single (distinct) events can never be entangled; "
                    "one side of '<->' must be a compound"
                )
            self.entangle_checks.append(
                EntangleCheck(tuple(left_ids), tuple(right_ids))
            )
        else:
            raise PatternError(f"unsupported operator {node.op!r}")

    def _add(self, i: int, j: int, constraint: Constraint) -> None:
        if i > j:
            i, j = j, i
            constraint = constraint.inverse()
        current = self._matrix.get((i, j), Constraint.NONE)
        self._matrix[(i, j)] = _combine(current, constraint, (i, j))

    # ------------------------------------------------------------------
    # Static satisfiability
    # ------------------------------------------------------------------

    def _check_satisfiable(self) -> None:
        """Reject patterns whose strict-precedence structure is
        globally unsatisfiable.

        Happens-before is a strict partial order, so the transitive
        closure of the pattern's strict edges (``BEFORE`` / ``LIMITED``
        and the partner direction implied elsewhere) must be acyclic,
        and an implied ``i -> j`` contradicts a declared ``j -> i`` or
        ``i || j``.  The pairwise conjunction check cannot see these —
        a three-cycle of precedences conjoins fine pair by pair.
        """
        size = len(self.leaves)
        strict = {
            Constraint.BEFORE,
            Constraint.LIMITED,
        }
        implied = [[False] * size for _ in range(size)]
        for i in range(size):
            for j in range(size):
                if i != j and self._dense[i][j] in strict:
                    implied[i][j] = True
        # Floyd-Warshall closure over the strict edges
        for k in range(size):
            for i in range(size):
                if not implied[i][k]:
                    continue
                row_i, row_k = implied[i], implied[k]
                for j in range(size):
                    if row_k[j]:
                        row_i[j] = True
        for i in range(size):
            if implied[i][i]:
                raise PatternError(
                    f"unsatisfiable pattern: the precedence constraints "
                    f"place {self.leaves[i].label} strictly before itself"
                )
            for j in range(size):
                if i == j or not implied[i][j]:
                    continue
                declared = self._dense[i][j]
                if declared in (
                    Constraint.AFTER,
                    Constraint.LIMITED_REV,
                    Constraint.CONCURRENT,
                    Constraint.NOT_BEFORE,
                ):
                    raise PatternError(
                        f"unsatisfiable pattern: precedence implies "
                        f"{self.leaves[i].label} -> {self.leaves[j].label}, "
                        f"contradicting the declared "
                        f"{declared.value!r} constraint"
                    )

    def _check_v2_restrictions(self) -> None:
        """Operator combinations the matcher does not support.

        A direct constraint between two Kleene positions would require
        the maximal-group expansions of both to be mutually consistent
        — group-against-group search that the one-anchor-per-position
        model cannot express.  A ``<>`` on a Kleene position is
        likewise meaningless: a message has exactly two halves, not a
        group of them.
        """
        for i in range(len(self.leaves)):
            if not self.leaves[i].kleene:
                continue
            for j in range(len(self.leaves)):
                if i == j:
                    continue
                constraint = self._dense[i][j]
                if constraint is Constraint.NONE:
                    continue
                if self.leaves[j].kleene:
                    raise PatternError(
                        f"constraints between two Kleene positions "
                        f"({self.leaves[i].label}, {self.leaves[j].label}) "
                        f"are not supported"
                    )
                if constraint is Constraint.PARTNER:
                    raise PatternError(
                        f"the partner operator cannot apply to the Kleene "
                        f"position {self.leaves[i].label}"
                    )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def num_leaves(self) -> int:
        return len(self.leaves)

    @property
    def negations(self) -> Sequence[NegationSpec]:
        """Absence requirements between anchor leaves (``-> !C ->``)."""
        return self.tree.negations

    @property
    def windows(self) -> Sequence[WindowSpec]:
        """Time-window guards over leaf subsets (``WITHIN n``)."""
        return self.tree.windows

    @property
    def has_v2_features(self) -> bool:
        """True when the pattern uses any v2 operator (Kleene closure,
        disjunction, negation, or a window guard).  Legacy patterns —
        where this is False — are guaranteed to evaluate exactly as
        they did before the v2 engine existed."""
        return bool(
            self.tree.negations
            or self.tree.windows
            or any(
                leaf.kleene or isinstance(leaf.event_class, UnionClass)
                for leaf in self.leaves
            )
        )

    def window_bound(self, i: int, j: int, domain: str = "sim") -> Optional[int]:
        """The tightest window bound covering leaves ``i`` and ``j`` in
        the given clock domain, or ``None``.  ``window_bound(g, g)`` is
        the member-member bound for a Kleene group at leaf ``g``."""
        table = self._window_sim if domain == "sim" else self._window_wall
        return table[i][j]

    @property
    def window_matrix_sim(self) -> Sequence[Sequence[Optional[int]]]:
        return self._window_sim

    @property
    def window_matrix_wall(self) -> Sequence[Sequence[Optional[int]]]:
        return self._window_wall

    @property
    def has_wall_windows(self) -> bool:
        return any(
            spec.domain == "wall" for spec in self.tree.windows
        )

    def constraint(self, i: int, j: int) -> Constraint:
        """The requirement of leaf ``i`` relative to leaf ``j``."""
        if i == j:
            raise ValueError("no constraint between a leaf and itself")
        return self._dense[i][j]

    @property
    def constraint_matrix(self) -> Sequence[Sequence[Constraint]]:
        """The dense leaf-pair constraint table (``[i][j]`` is leaf
        ``i``'s requirement relative to leaf ``j``; the diagonal is
        ``NONE``).  Hot loops index this directly instead of paying a
        :meth:`constraint` call per pair."""
        return self._dense

    def terminating_leaves(self) -> Tuple[int, ...]:
        """Leaves whose match can be the last event of a complete match.

        A newly delivered event on leaf ``L`` can complete a match only
        if no constraint requires another leaf's event strictly after
        it — delivery order guarantees no already-delivered event
        causally follows the new one.  For ``A -> B`` only ``B`` is
        terminating; for ``A || B`` both are (Section V-B).
        """
        result = []
        for i in range(self.num_leaves):
            needs_later = any(
                self.constraint(i, j)
                in (Constraint.BEFORE, Constraint.LIMITED)
                for j in range(self.num_leaves)
                if j != i
            )
            if not needs_later:
                result.append(i)
        return tuple(result)

    def evaluation_order(self, trigger_leaf: int) -> Tuple[int, ...]:
        """Level order for a search triggered at ``trigger_leaf``.

        This realises the leaf *Order* attribute: the trigger leaf is
        level 1; remaining leaves follow by a most-selective-first
        heuristic combining two signals:

        * *attribute selectivity* — a leaf whose attribute variables
          are already bound by ordered leaves admits very few
          candidates (e.g. the ``$r``-keyed snapshot of the ordering
          pattern), so instantiating it early prunes hardest;
        * *constraint strength* into the ordered set — strict
          precedence and partnership restrict domains more than
          concurrency or weak precedence.
        """
        cached = self._orders.get(trigger_leaf)
        if cached is not None:
            return cached

        weight = {
            Constraint.PARTNER: 8,
            Constraint.BEFORE: 4,
            Constraint.AFTER: 4,
            Constraint.LIMITED: 4,
            Constraint.LIMITED_REV: 4,
            Constraint.CONCURRENT: 3,
            Constraint.NOT_AFTER: 1,
            Constraint.NOT_BEFORE: 1,
            Constraint.NONE: 0,
        }

        def attr_vars(leaf_id: int):
            cls = self.leaves[leaf_id].event_class
            return {
                spec.name
                for spec in (cls.process, cls.etype, cls.text)
                if isinstance(spec, AttrVar)
            }

        def exact_count(leaf_id: int) -> int:
            cls = self.leaves[leaf_id].event_class
            return sum(
                isinstance(spec, Exact)
                for spec in (cls.process, cls.etype, cls.text)
            )

        order = [trigger_leaf]
        remaining = [i for i in range(self.num_leaves) if i != trigger_leaf]
        while remaining:
            bound_vars = set()
            for j in order:
                bound_vars |= attr_vars(j)

            def score(i: int):
                constraint_weight = sum(
                    weight[self.constraint(i, j)] for j in order
                )
                selectivity = 10 * len(attr_vars(i) & bound_vars)
                return (selectivity + exact_count(i) + constraint_weight, -i)

            best = max(remaining, key=score)
            order.append(best)
            remaining.remove(best)
        result = tuple(order)
        self._orders[trigger_leaf] = result
        return result

    def __repr__(self) -> str:
        return (
            f"CompiledPattern({self.num_leaves} leaves, "
            f"{len(self._matrix)} constraints, "
            f"{len(self.exist_checks)} existential checks, "
            f"{len(self.entangle_checks)} entanglement checks)"
        )


def compile_pattern(tree: PatternTree) -> CompiledPattern:
    """Compile a pattern tree; raises :class:`PatternError` on
    contradictory or unsupported constraint combinations."""
    return CompiledPattern(tree)
