"""Abstract syntax for the pattern language.

A parsed pattern definition (:class:`PatternDef`) consists of event
class definitions, event-variable declarations, and one pattern
expression.  Expression nodes form a binary tree whose leaves reference
classes or variables and whose internal nodes carry a causality
operator or the conjunction connector.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Union


class Operator(enum.Enum):
    """Causality operators and the conjunction connector (Figure 1)."""

    PRECEDES = "->"  # a happens before b
    CONCURRENT = "||"  # a is concurrent with b
    PARTNER = "<>"  # a and b are the halves of one message
    LIMITED = "~>"  # a -> b with no other A-class event between
    ENTANGLED = "<->"  # compound events cross (equation 1)
    AND = "/\\"  # conjunction of sub-patterns

    @property
    def is_causal(self) -> bool:
        """True for the four event-relation operators (not ``AND``)."""
        return self is not Operator.AND


# ----------------------------------------------------------------------
# Attribute specifications
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Exact:
    """Attribute must equal this value exactly."""

    value: str


@dataclasses.dataclass(frozen=True)
class Wildcard:
    """Attribute matches anything (written ``''`` in pattern source)."""


@dataclasses.dataclass(frozen=True)
class AttrVar:
    """Attribute variable (``$1``, ``$2`` ...): first occurrence binds
    the value, later occurrences must equal it."""

    name: str


AttrSpec = Union[Exact, Wildcard, AttrVar]


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ClassDef:
    """``Name := [process, type, text];``"""

    name: str
    process: AttrSpec
    etype: AttrSpec
    text: AttrSpec


@dataclasses.dataclass(frozen=True)
class VarDecl:
    """``ClassName $var;`` — an event variable of the named class.

    All pattern occurrences of ``$var`` must bind the *same* matched
    event (Section III-C).
    """

    class_name: str
    var_name: str


# ----------------------------------------------------------------------
# Pattern expressions
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ClassRef:
    """Occurrence of a class name in the pattern expression.

    Distinct occurrences of the same class are *distinct* pattern
    positions (may bind different events); use a variable for identity.
    """

    name: str


@dataclasses.dataclass(frozen=True)
class VarRef:
    """Occurrence of an event variable (``$var``)."""

    name: str


@dataclasses.dataclass(frozen=True)
class BinaryExpr:
    """A causality operator applied to two sub-expressions."""

    op: Operator
    left: "Expr"
    right: "Expr"

    def __post_init__(self) -> None:
        if not self.op.is_causal:
            raise ValueError("use AndExpr for the conjunction connector")


@dataclasses.dataclass(frozen=True)
class AndExpr:
    """Conjunction of two or more sub-patterns."""

    parts: tuple

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("conjunction needs at least two parts")


@dataclasses.dataclass(frozen=True)
class OrExpr:
    """Disjunction of leaf alternatives (``A \\/ B``): one pattern
    position matched by any of the alternative classes.  Alternatives
    are tried left to right against a per-branch copy of the binding
    environment — bindings never leak between branches."""

    parts: tuple

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("disjunction needs at least two alternatives")


@dataclasses.dataclass(frozen=True)
class KleeneExpr:
    """Kleene closure (``A+``): one-or-more events of the operand class
    collapsed into one pattern position.  The match binds the *maximal
    group* of class events consistent with every constraint on the
    position; the aggregated group rides the match report."""

    operand: "Expr"


@dataclasses.dataclass(frozen=True)
class NotExpr:
    """Negation (``!A`` / ``ABSENT A``) inside a ``->`` chain: no event
    of the operand class may lie causally between the two neighbouring
    bound positions."""

    operand: "Expr"


@dataclasses.dataclass(frozen=True)
class WithinExpr:
    """Time-window guard (``expr WITHIN n`` or ``expr WITHIN n wall``):
    every pair of events bound under the operand must carry timestamps
    at most ``bound`` apart in the chosen clock ``domain`` (``sim`` =
    the paper's logical Lamport timestamps, ``wall`` = an external
    wall-clock stamp source the matcher must be configured with)."""

    operand: "Expr"
    bound: int
    domain: str = "sim"

    def __post_init__(self) -> None:
        if self.bound < 0:
            raise ValueError("window bound must be non-negative")
        if self.domain not in ("sim", "wall"):
            raise ValueError(f"unknown window domain {self.domain!r}")


Expr = Union[
    ClassRef, VarRef, BinaryExpr, AndExpr, OrExpr, KleeneExpr, NotExpr,
    WithinExpr,
]


@dataclasses.dataclass(frozen=True)
class PatternDef:
    """A complete parsed pattern definition."""

    classes: Dict[str, ClassDef]
    variables: Dict[str, VarDecl]
    expr: Expr

    def class_of_var(self, var_name: str) -> ClassDef:
        """Resolve an event variable to its declared class."""
        decl = self.variables[var_name]
        return self.classes[decl.class_name]


def walk_leaves(expr: Expr) -> List[Union[ClassRef, VarRef]]:
    """All leaf references of an expression, left to right — including
    references inside negations, disjunction alternatives, Kleene
    closures, and window guards (used for name validation)."""
    if isinstance(expr, (ClassRef, VarRef)):
        return [expr]
    if isinstance(expr, BinaryExpr):
        return walk_leaves(expr.left) + walk_leaves(expr.right)
    if isinstance(expr, (AndExpr, OrExpr)):
        leaves: List[Union[ClassRef, VarRef]] = []
        for part in expr.parts:
            leaves.extend(walk_leaves(part))
        return leaves
    if isinstance(expr, (KleeneExpr, NotExpr, WithinExpr)):
        return walk_leaves(expr.operand)
    raise TypeError(f"unknown expression node {expr!r}")
