"""Pattern trees.

"The specified pattern is first parsed to create a pattern tree ...
The leaf nodes represent the primitive events in the pattern and the
internal nodes represent the compound-event expressions" (paper,
Section IV-A, Figure 2).  Each leaf has three attributes:

* **Type** — the event class for the primitive event;
* **Order** — the order of evaluation (assigned by the compiler's
  heuristic, or overridden by the user);
* **History** — the list of matched primitive events grouped by
  traces (owned by :mod:`repro.core.history` at runtime; the leaf here
  carries the identity and class used to key it).

Event variables collapse to a single leaf: every occurrence of ``$X``
in the pattern expression refers to the same leaf node, which is
exactly the variable-binding semantics of Section III-C (one matched
event for all occurrences).  Distinct occurrences of a plain class
name become distinct leaves.

The v2 operators lower onto this same leaf structure:

* a disjunction ``A \\/ B`` becomes one leaf whose class is a
  :class:`~repro.patterns.classes.UnionClass`;
* a Kleene closure ``A+`` becomes one leaf flagged ``kleene`` — the
  search binds a single *anchor* event and the matcher expands the
  anchor to the maximal consistent group at report time;
* a negation ``X -> !A -> Y`` contributes **no** leaf: the chain is
  flattened, the negated position removed (leaving ``X -> Y``), and a
  :class:`NegationSpec` records the class that must be absent between
  the two anchor leaves;
* a window guard ``expr WITHIN n`` contributes no node either: the
  operand subtree is built normally and a :class:`WindowSpec` records
  the timestamp bound over the operand's leaves.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.patterns.ast import (
    AndExpr,
    BinaryExpr,
    ClassRef,
    Expr,
    KleeneExpr,
    NotExpr,
    Operator,
    OrExpr,
    PatternDef,
    VarRef,
    WithinExpr,
)
from repro.patterns.classes import EventClass, UnionClass
from repro.patterns.errors import PatternError

#: A leaf's class: a plain event class or a disjunction of them.
LeafClass = Union[EventClass, UnionClass]


@dataclasses.dataclass(frozen=True)
class LeafNode:
    """A pattern-tree leaf: one primitive event position.

    ``var_name`` is set when the leaf arises from an event variable;
    the leaf is shared by all occurrences of that variable.  ``kleene``
    marks a one-or-more position: the bound event is the group anchor
    and the leaf's history is never pruned (every class event may later
    join a reported group).
    """

    leaf_id: int
    event_class: LeafClass
    var_name: Optional[str] = None
    kleene: bool = False

    @property
    def label(self) -> str:
        suffix = "+" if self.kleene else ""
        if self.var_name is not None:
            return f"${self.var_name}{suffix}"
        return f"{self.event_class.name}{suffix}#{self.leaf_id}"


@dataclasses.dataclass(frozen=True)
class NegationSpec:
    """``left -> !C -> right``: no event matching ``event_class`` (under
    the final attribute bindings) may lie causally between the events
    bound at the two anchor leaves."""

    event_class: LeafClass
    left_leaf: int
    right_leaf: int


@dataclasses.dataclass(frozen=True)
class WindowSpec:
    """``WITHIN bound``: every pair of events bound at ``leaf_ids``
    must carry timestamps at most ``bound`` apart in ``domain``
    (``sim`` = logical Lamport clock, ``wall`` = a configured external
    stamp source)."""

    leaf_ids: Tuple[int, ...]
    bound: int
    domain: str


@dataclasses.dataclass(frozen=True)
class TreeLeaf:
    """Expression-tree reference to a leaf node (by id)."""

    leaf_id: int


@dataclasses.dataclass(frozen=True)
class TreeNode:
    """Internal pattern-tree node: an operator over child subtrees."""

    op: Operator
    children: Tuple["TreeExpr", ...]


TreeExpr = Union[TreeLeaf, TreeNode]


def _precedes_spine(expr: Expr) -> List[Expr]:
    """The elements of a maximal left-associated ``->`` chain."""
    if isinstance(expr, BinaryExpr) and expr.op is Operator.PRECEDES:
        return _precedes_spine(expr.left) + [expr.right]
    return [expr]


class PatternTree:
    """The pattern tree for one parsed pattern over a trace-name table.

    Parameters
    ----------
    definition:
        A parsed :class:`~repro.patterns.ast.PatternDef`.
    trace_names:
        Trace names of the monitored computation, used to interpret
        process attributes.
    """

    def __init__(self, definition: PatternDef, trace_names: Sequence[str]):
        self.definition = definition
        self.trace_names = tuple(trace_names)
        self._leaves: List[LeafNode] = []
        self._var_leaf: Dict[str, int] = {}
        self.negations: List[NegationSpec] = []
        self.windows: List[WindowSpec] = []
        self.root = self._build(definition.expr)
        if not self._leaves:
            raise PatternError("pattern has no event positions")
        for spec in self.negations:
            for anchor in (spec.left_leaf, spec.right_leaf):
                if self._leaves[anchor].kleene:
                    raise PatternError(
                        "a Kleene position cannot anchor a negation"
                    )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self, expr: Expr) -> TreeExpr:
        if isinstance(expr, ClassRef):
            return TreeLeaf(self._new_leaf(self._class(expr.name)))
        if isinstance(expr, VarRef):
            return TreeLeaf(self._var_leaf_id(expr, kleene=False))
        if isinstance(expr, OrExpr):
            return TreeLeaf(self._new_leaf(self._union_class(expr)))
        if isinstance(expr, KleeneExpr):
            operand = expr.operand
            if isinstance(operand, ClassRef):
                event_class: LeafClass = self._class(operand.name)
            elif isinstance(operand, OrExpr):
                event_class = self._union_class(operand)
            elif isinstance(operand, VarRef):
                # a Kleene-closed variable: every reference shares one
                # Kleene leaf (how a closure position joins several
                # single-event relations of a conjunction)
                return TreeLeaf(self._var_leaf_id(operand, kleene=True))
            else:
                raise PatternError(
                    "the Kleene closure applies to an event class, an "
                    "event variable, or a disjunction of event classes"
                )
            return TreeLeaf(self._new_leaf(event_class, kleene=True))
        if isinstance(expr, NotExpr):
            raise PatternError(
                "a negation must sit between two '->' operators"
            )
        if isinstance(expr, WithinExpr):
            subtree = self._build(expr.operand)
            self.windows.append(
                WindowSpec(
                    leaf_ids=tuple(self.leaf_ids_under(subtree)),
                    bound=expr.bound,
                    domain=expr.domain,
                )
            )
            return subtree
        if isinstance(expr, BinaryExpr):
            if expr.op is Operator.PRECEDES:
                elements = _precedes_spine(expr)
                if any(isinstance(el, NotExpr) for el in elements):
                    return self._build_negation_chain(elements)
            left = self._build(expr.left)
            right = self._build(expr.right)
            return TreeNode(op=expr.op, children=(left, right))
        if isinstance(expr, AndExpr):
            children = tuple(self._build(part) for part in expr.parts)
            return TreeNode(op=Operator.AND, children=children)
        raise TypeError(f"unknown expression node {expr!r}")

    def _build_negation_chain(self, elements: List[Expr]) -> TreeExpr:
        """Flatten a ``->`` chain containing negated positions: build
        the non-negated elements (left to right, preserving leaf
        numbering), chain them with ``->``, and record one
        :class:`NegationSpec` per removed position, anchored on the
        single-leaf neighbours."""
        built: Dict[int, TreeExpr] = {}
        for k, element in enumerate(elements):
            if not isinstance(element, NotExpr):
                built[k] = self._build(element)

        def anchor(k: int) -> int:
            leaf_ids = self.leaf_ids_under(built[k])
            if len(leaf_ids) != 1:
                raise PatternError(
                    "negation anchors must be single event positions"
                )
            return leaf_ids[0]

        for k, element in enumerate(elements):
            if not isinstance(element, NotExpr):
                continue
            if k == 0 or k == len(elements) - 1:
                raise PatternError(
                    "a negation must sit between two '->' operators"
                )
            if (k - 1) not in built or (k + 1) not in built:
                raise PatternError("adjacent negations are not supported")
            operand = element.operand
            if not isinstance(operand, ClassRef):
                raise PatternError(
                    "negation applies to a plain event class"
                )
            self.negations.append(
                NegationSpec(
                    event_class=self._class(operand.name),
                    left_leaf=anchor(k - 1),
                    right_leaf=anchor(k + 1),
                )
            )

        chain: Optional[TreeExpr] = None
        for k in sorted(built):
            chain = (
                built[k]
                if chain is None
                else TreeNode(op=Operator.PRECEDES, children=(chain, built[k]))
            )
        assert chain is not None  # parser guarantees two anchors
        return chain

    def _var_leaf_id(self, ref: VarRef, kleene: bool) -> int:
        """The (shared) leaf of an event variable, creating it on first
        reference.  A variable must be referenced consistently: either
        always plain or always Kleene-closed."""
        existing = self._var_leaf.get(ref.name)
        if existing is not None:
            if self._leaves[existing].kleene != kleene:
                raise PatternError(
                    f"variable {ref.name} is referenced both plain and "
                    "Kleene-closed; pick one"
                )
            return existing
        definition = self.definition.class_of_var(ref.name)
        event_class = EventClass.from_def(definition, self.trace_names)
        leaf_id = self._new_leaf(
            event_class, var_name=ref.name, kleene=kleene
        )
        self._var_leaf[ref.name] = leaf_id
        return leaf_id

    def _class(self, name: str) -> EventClass:
        return EventClass.from_def(
            self.definition.classes[name], self.trace_names
        )

    def _union_class(self, expr: OrExpr) -> UnionClass:
        definitions = []
        for part in expr.parts:
            if not isinstance(part, ClassRef):
                raise PatternError(
                    "disjunction alternatives must be plain event classes"
                )
            definitions.append(self.definition.classes[part.name])
        return UnionClass.from_defs(definitions, self.trace_names)

    def _new_leaf(
        self,
        event_class: LeafClass,
        var_name: Optional[str] = None,
        kleene: bool = False,
    ) -> int:
        leaf_id = len(self._leaves)
        self._leaves.append(
            LeafNode(
                leaf_id=leaf_id,
                event_class=event_class,
                var_name=var_name,
                kleene=kleene,
            )
        )
        return leaf_id

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def leaves(self) -> Sequence[LeafNode]:
        """All leaf nodes, in creation (left-to-right) order."""
        return tuple(self._leaves)

    def leaf(self, leaf_id: int) -> LeafNode:
        return self._leaves[leaf_id]

    def leaf_ids_under(self, node: TreeExpr) -> List[int]:
        """Leaf ids in a subtree, left to right (with duplicates from
        shared variable leaves removed)."""
        found: List[int] = []

        def visit(n: TreeExpr) -> None:
            if isinstance(n, TreeLeaf):
                if n.leaf_id not in found:
                    found.append(n.leaf_id)
                return
            for child in n.children:
                visit(child)

        visit(node)
        return found

    def __repr__(self) -> str:
        labels = ", ".join(leaf.label for leaf in self._leaves)
        return f"PatternTree({len(self._leaves)} leaves: {labels})"
