"""Pattern trees.

"The specified pattern is first parsed to create a pattern tree ...
The leaf nodes represent the primitive events in the pattern and the
internal nodes represent the compound-event expressions" (paper,
Section IV-A, Figure 2).  Each leaf has three attributes:

* **Type** — the event class for the primitive event;
* **Order** — the order of evaluation (assigned by the compiler's
  heuristic, or overridden by the user);
* **History** — the list of matched primitive events grouped by
  traces (owned by :mod:`repro.core.history` at runtime; the leaf here
  carries the identity and class used to key it).

Event variables collapse to a single leaf: every occurrence of ``$X``
in the pattern expression refers to the same leaf node, which is
exactly the variable-binding semantics of Section III-C (one matched
event for all occurrences).  Distinct occurrences of a plain class
name become distinct leaves.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.patterns.ast import (
    AndExpr,
    BinaryExpr,
    ClassRef,
    Expr,
    Operator,
    PatternDef,
    VarRef,
)
from repro.patterns.classes import EventClass
from repro.patterns.errors import PatternError


@dataclasses.dataclass(frozen=True)
class LeafNode:
    """A pattern-tree leaf: one primitive event position.

    ``var_name`` is set when the leaf arises from an event variable;
    the leaf is shared by all occurrences of that variable.
    """

    leaf_id: int
    event_class: EventClass
    var_name: Optional[str] = None

    @property
    def label(self) -> str:
        if self.var_name is not None:
            return f"${self.var_name}"
        return f"{self.event_class.name}#{self.leaf_id}"


@dataclasses.dataclass(frozen=True)
class TreeLeaf:
    """Expression-tree reference to a leaf node (by id)."""

    leaf_id: int


@dataclasses.dataclass(frozen=True)
class TreeNode:
    """Internal pattern-tree node: an operator over child subtrees."""

    op: Operator
    children: Tuple["TreeExpr", ...]


TreeExpr = Union[TreeLeaf, TreeNode]


class PatternTree:
    """The pattern tree for one parsed pattern over a trace-name table.

    Parameters
    ----------
    definition:
        A parsed :class:`~repro.patterns.ast.PatternDef`.
    trace_names:
        Trace names of the monitored computation, used to interpret
        process attributes.
    """

    def __init__(self, definition: PatternDef, trace_names: Sequence[str]):
        self.definition = definition
        self.trace_names = tuple(trace_names)
        self._leaves: List[LeafNode] = []
        self._var_leaf: Dict[str, int] = {}
        self.root = self._build(definition.expr)
        if not self._leaves:
            raise PatternError("pattern has no event positions")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self, expr: Expr) -> TreeExpr:
        if isinstance(expr, ClassRef):
            definition = self.definition.classes[expr.name]
            return TreeLeaf(self._new_leaf(definition, var_name=None))
        if isinstance(expr, VarRef):
            if expr.name in self._var_leaf:
                return TreeLeaf(self._var_leaf[expr.name])
            definition = self.definition.class_of_var(expr.name)
            leaf_id = self._new_leaf(definition, var_name=expr.name)
            self._var_leaf[expr.name] = leaf_id
            return TreeLeaf(leaf_id)
        if isinstance(expr, BinaryExpr):
            left = self._build(expr.left)
            right = self._build(expr.right)
            return TreeNode(op=expr.op, children=(left, right))
        if isinstance(expr, AndExpr):
            children = tuple(self._build(part) for part in expr.parts)
            return TreeNode(op=Operator.AND, children=children)
        raise TypeError(f"unknown expression node {expr!r}")

    def _new_leaf(self, definition, var_name: Optional[str]) -> int:
        leaf_id = len(self._leaves)
        event_class = EventClass.from_def(definition, self.trace_names)
        self._leaves.append(
            LeafNode(leaf_id=leaf_id, event_class=event_class, var_name=var_name)
        )
        return leaf_id

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def leaves(self) -> Sequence[LeafNode]:
        """All leaf nodes, in creation (left-to-right) order."""
        return tuple(self._leaves)

    def leaf(self, leaf_id: int) -> LeafNode:
        return self._leaves[leaf_id]

    def leaf_ids_under(self, node: TreeExpr) -> List[int]:
        """Leaf ids in a subtree, left to right (with duplicates from
        shared variable leaves removed)."""
        found: List[int] = []

        def visit(n: TreeExpr) -> None:
            if isinstance(n, TreeLeaf):
                if n.leaf_id not in found:
                    found.append(n.leaf_id)
                return
            for child in n.children:
                visit(child)

        visit(node)
        return found

    def __repr__(self) -> str:
        labels = ", ".join(leaf.label for leaf in self._leaves)
        return f"PatternTree({len(self._leaves)} leaves: {labels})"
