"""Cost-based constraint planner.

The legacy evaluation order (``CompiledPattern.evaluation_order``) is a
purely *static* heuristic: it ranks leaves by constraint strength and
attribute-variable reuse, knowing nothing about the data.  That goes
wrong exactly when class populations are skewed — a heavily-constrained
class with a huge history gets ordered early and the search enumerates
its thousands of candidates before a rare class would have cut the
space to almost nothing.

The planner replaces the ranking signal with *live statistics* sampled
from the matcher's leaf histories: the estimated number of candidates a
leaf contributes, discounted by how hard the constraints into the
already-ordered prefix restrict its domain.  It is a greedy smallest-
estimated-candidates-first join-order search — the classic Selinger
recipe shrunk to the pattern-matching setting, where every "relation"
is one leaf history and every "join predicate" is a pairwise causal
constraint.

Two guarantees keep it safe:

* **Fallback** — with no statistics (cold start, or a caller that
  never samples), :func:`plan_order` returns the legacy order wrapped
  in a plan marked ``cost_based=False``.
* **Output compatibility** — the planner is only *applied* by the
  matcher to patterns carrying v2 operators; legacy patterns keep the
  legacy order even with the planner enabled, so their match output is
  bit-identical to the pre-planner engine (enforced by the committed
  plan-equivalence fixture).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.patterns.ast import AttrVar
from repro.patterns.compile import CompiledPattern, Constraint

#: Domain-restriction factor of one constraint kind: the estimated
#: fraction of a leaf's candidates that survive when the constraint
#: partner is already bound.  PARTNER is (at most) one event; strict
#: precedence cuts a causal cone; concurrency cuts the complement;
#: weak precedence barely filters.
_RESTRICTION = {
    Constraint.PARTNER: 0.001,
    Constraint.BEFORE: 0.25,
    Constraint.AFTER: 0.25,
    Constraint.LIMITED: 0.05,
    Constraint.LIMITED_REV: 0.05,
    Constraint.CONCURRENT: 0.5,
    Constraint.NOT_AFTER: 0.8,
    Constraint.NOT_BEFORE: 0.8,
    Constraint.NONE: 1.0,
}

#: Restriction factor for each attribute variable already bound by the
#: ordered prefix — an exact-match key into the candidate history.
_ATTR_VAR_FACTOR = 0.1


@dataclasses.dataclass(frozen=True)
class LeafStats:
    """Statistics of one leaf history at planning time."""

    size: int
    traces: int = 0


@dataclasses.dataclass(frozen=True)
class PlanStep:
    """One level of the evaluation order with its cost estimate."""

    leaf_id: int
    label: str
    history_size: int
    estimate: float
    reason: str


@dataclasses.dataclass(frozen=True)
class Plan:
    """An explained evaluation order for one trigger leaf."""

    trigger_leaf: int
    order: Tuple[int, ...]
    steps: Tuple[PlanStep, ...]
    cost_based: bool
    total_estimate: float

    def explain(self) -> str:
        """Human-readable plan, one line per level."""
        kind = "cost-based" if self.cost_based else "legacy heuristic"
        lines = [
            f"plan for trigger leaf {self.trigger_leaf} ({kind}), "
            f"estimated search space {self.total_estimate:.1f}:"
        ]
        for level, step in enumerate(self.steps, start=1):
            lines.append(
                f"  {level}. leaf {step.leaf_id} [{step.label}] "
                f"history={step.history_size} "
                f"estimate={step.estimate:.2f} — {step.reason}"
            )
        return "\n".join(lines)


def _attr_vars(pattern: CompiledPattern, leaf_id: int) -> set:
    cls = pattern.leaves[leaf_id].event_class
    return {
        spec.name
        for spec in (cls.process, cls.etype, cls.text)
        if isinstance(spec, AttrVar)
    }


def _legacy_plan(pattern: CompiledPattern, trigger_leaf: int) -> Plan:
    order = pattern.evaluation_order(trigger_leaf)
    steps = tuple(
        PlanStep(
            leaf_id=leaf_id,
            label=pattern.leaves[leaf_id].label,
            history_size=0,
            estimate=0.0,
            reason="static heuristic order (no statistics)",
        )
        for leaf_id in order
    )
    return Plan(
        trigger_leaf=trigger_leaf,
        order=order,
        steps=steps,
        cost_based=False,
        total_estimate=0.0,
    )


def plan_order(
    pattern: CompiledPattern,
    trigger_leaf: int,
    stats: Optional[Dict[int, LeafStats]] = None,
) -> Plan:
    """Greedy cheapest-leaf-next join order from live statistics.

    ``stats`` maps leaf id -> :class:`LeafStats`; missing or empty
    statistics select the legacy heuristic order (``cost_based=False``).
    The trigger leaf is always level 1 — the search is anchored on the
    newly delivered event, which is not a planning choice.
    """
    if not stats or all(s.size == 0 for s in stats.values()):
        return _legacy_plan(pattern, trigger_leaf)

    order: List[int] = [trigger_leaf]
    steps: List[PlanStep] = [
        PlanStep(
            leaf_id=trigger_leaf,
            label=pattern.leaves[trigger_leaf].label,
            history_size=stats.get(trigger_leaf, LeafStats(0)).size,
            estimate=1.0,
            reason="trigger (the newly delivered event)",
        )
    ]
    remaining = [i for i in range(pattern.num_leaves) if i != trigger_leaf]
    matrix = pattern.constraint_matrix
    total = 1.0

    while remaining:
        bound_vars: set = set()
        for j in order:
            bound_vars |= _attr_vars(pattern, j)

        def estimate(i: int) -> Tuple[float, str]:
            size = stats.get(i, LeafStats(0)).size
            value = float(max(size, 1))
            factors = []
            best = Constraint.NONE
            for j in order:
                constraint = matrix[i][j]
                factor = _RESTRICTION[constraint]
                if factor < _RESTRICTION[best]:
                    best = constraint
                value *= factor
            if best is not Constraint.NONE:
                factors.append(f"{best.value} into prefix")
            shared = _attr_vars(pattern, i) & bound_vars
            if shared:
                value *= _ATTR_VAR_FACTOR ** len(shared)
                factors.append(
                    "bound $" + ", $".join(sorted(shared))
                )
            reason = (
                f"history {size} × " + " × ".join(factors)
                if factors
                else f"history {size}, unconstrained"
            )
            return value, reason

        # cheapest first; ties broken by leaf id for determinism
        scored = sorted(
            ((estimate(i), i) for i in remaining),
            key=lambda item: (item[0][0], item[1]),
        )
        (value, reason), best_leaf = scored[0]
        order.append(best_leaf)
        remaining.remove(best_leaf)
        total *= max(value, 1.0)
        steps.append(
            PlanStep(
                leaf_id=best_leaf,
                label=pattern.leaves[best_leaf].label,
                history_size=stats.get(best_leaf, LeafStats(0)).size,
                estimate=value,
                reason=reason,
            )
        )

    return Plan(
        trigger_leaf=trigger_leaf,
        order=tuple(order),
        steps=tuple(steps),
        cost_based=True,
        total_estimate=total,
    )
