"""The causal event-pattern language.

Paper Section III-A/B/C: a pattern is built from *event classes*
(3-tuples ``[process, type, text]`` whose attributes can be exact
values, wildcards, or attribute variables), *event variables* binding
one matched event to several positions, and causality operators:

====================  =====================================================
``A -> B``            event ``a`` happens before event ``b``
``A || B``            ``a`` and ``b`` are concurrent
``A <> B``            ``a`` and ``b`` are partner events of one message
``A ~> B``            limited precedence: ``a -> b`` with no other
                      ``A``-event strictly between them
``expr /\\ expr``      conjunction of sub-patterns
====================  =====================================================

The concrete syntax follows the paper's examples, e.g. the ZooKeeper
bug-962 ordering pattern (Section III-D)::

    Synch    := [$1, Synch_Leader, $2];
    Snapshot := [$2, Take_Snapshot, ''];
    Update   := [$2, Make_Update, ''];
    Forward  := [$2, Take_Snapshot, $1];
    Snapshot $Diff;
    Update $Write;
    pattern := (Synch -> $Diff) /\\ ($Diff -> $Write) /\\ ($Write -> Forward);

Parsing produces an AST (:mod:`repro.patterns.ast`), which is built
into a :class:`~repro.patterns.tree.PatternTree` (leaf nodes with
Type / Order / History, internal compound nodes) and compiled into the
pairwise-constraint form the OCEP matcher consumes
(:mod:`repro.patterns.compile`).
"""

from repro.patterns.ast import (
    AndExpr,
    AttrSpec,
    AttrVar,
    BinaryExpr,
    ClassDef,
    ClassRef,
    Exact,
    Operator,
    PatternDef,
    VarDecl,
    VarRef,
    Wildcard,
)
from repro.patterns.errors import PatternError, PatternParseError
from repro.patterns.lexer import Token, TokenKind, tokenize
from repro.patterns.parser import parse_pattern
from repro.patterns.classes import EventClass
from repro.patterns.tree import LeafNode, PatternTree
from repro.patterns.compile import CompiledPattern, Constraint, compile_pattern
from repro.patterns.render import render_attr, render_expr, render_pattern

__all__ = [
    "Operator",
    "AttrSpec",
    "Exact",
    "Wildcard",
    "AttrVar",
    "ClassDef",
    "VarDecl",
    "ClassRef",
    "VarRef",
    "BinaryExpr",
    "AndExpr",
    "PatternDef",
    "PatternError",
    "PatternParseError",
    "Token",
    "TokenKind",
    "tokenize",
    "parse_pattern",
    "EventClass",
    "PatternTree",
    "LeafNode",
    "CompiledPattern",
    "Constraint",
    "compile_pattern",
    "render_attr",
    "render_expr",
    "render_pattern",
]
