"""Tokenizer for the pattern language.

Token inventory: identifiers, ``$``-variables (``$1`` is an attribute
variable, ``$Diff`` an event variable — distinguished by the parser,
not here), single-quoted strings, bare numbers (window widths), and
the punctuation / operators of the grammar.  ASCII operator spellings
are canonical; the Unicode forms used in the paper's figures
(``→ ∥ ∧ ∨``) are accepted as aliases.  ``#`` starts a comment running
to end of line.  ``WITHIN`` / ``ABSENT`` are plain identifiers here;
the parser treats them as keywords in expression position.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List

from repro.patterns.errors import PatternParseError


class TokenKind(enum.Enum):
    IDENT = "ident"
    DOLLAR = "dollar"  # $name or $123
    STRING = "string"  # 'text' (may be empty)
    NUMBER = "number"  # bare digits (window widths)
    ASSIGN = "assign"  # :=
    SEMI = "semi"  # ;
    COMMA = "comma"  # ,
    LBRACKET = "lbracket"  # [
    RBRACKET = "rbracket"  # ]
    LPAREN = "lparen"  # (
    RPAREN = "rparen"  # )
    PRECEDES = "precedes"  # ->  or  →
    CONCURRENT = "concurrent"  # ||  or  ∥
    PARTNER = "partner"  # <>
    LIMITED = "limited"  # ~>
    ENTANGLED = "entangled"  # <->  or  ↔
    AND = "and"  # /\  or  ∧
    OR = "or"  # \/  or  ∨
    PLUS = "plus"  # +  (Kleene closure)
    BANG = "bang"  # !  (negation)
    EOF = "eof"


@dataclasses.dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.value!r}, {self.line}:{self.column})"


_THREE_CHAR = {
    "<->": TokenKind.ENTANGLED,
}

_TWO_CHAR = {
    ":=": TokenKind.ASSIGN,
    "->": TokenKind.PRECEDES,
    "||": TokenKind.CONCURRENT,
    "<>": TokenKind.PARTNER,
    "~>": TokenKind.LIMITED,
    "/\\": TokenKind.AND,
    "\\/": TokenKind.OR,
}

_ONE_CHAR = {
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "+": TokenKind.PLUS,
    "!": TokenKind.BANG,
    "→": TokenKind.PRECEDES,  # →
    "∥": TokenKind.CONCURRENT,  # ∥
    "∧": TokenKind.AND,  # ∧
    "∨": TokenKind.OR,  # ∨
    "↔": TokenKind.ENTANGLED,  # ↔
}


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in ("_", "-", ".")


def tokenize(source: str) -> List[Token]:
    """Tokenize pattern source text; raises :class:`PatternParseError`
    on any unrecognised input."""
    tokens: List[Token] = []
    line, column = 1, 1
    i = 0
    n = len(source)

    source_lines = source.splitlines()

    def error(message: str) -> PatternParseError:
        excerpt = (
            source_lines[line - 1] if 1 <= line <= len(source_lines) else None
        )
        return PatternParseError(message, line, column, source_line=excerpt)

    while i < n:
        ch = source[i]

        if ch == "\n":
            i += 1
            line += 1
            column = 1
            continue
        if ch.isspace():
            i += 1
            column += 1
            continue
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue

        start_line, start_column = line, column

        three = source[i : i + 3]
        if three in _THREE_CHAR:
            tokens.append(Token(_THREE_CHAR[three], three, start_line, start_column))
            i += 3
            column += 3
            continue

        two = source[i : i + 2]
        if two in _TWO_CHAR:
            tokens.append(Token(_TWO_CHAR[two], two, start_line, start_column))
            i += 2
            column += 2
            continue

        if ch in _ONE_CHAR:
            tokens.append(Token(_ONE_CHAR[ch], ch, start_line, start_column))
            i += 1
            column += 1
            continue

        if ch == "'":
            j = i + 1
            while j < n and source[j] != "'":
                if source[j] == "\n":
                    raise error("unterminated string literal")
                j += 1
            if j >= n:
                raise error("unterminated string literal")
            value = source[i + 1 : j]
            tokens.append(Token(TokenKind.STRING, value, start_line, start_column))
            consumed = j + 1 - i
            i = j + 1
            column += consumed
            continue

        if ch == "$":
            j = i + 1
            while j < n and _is_ident_char(source[j]):
                j += 1
            if j == i + 1:
                raise error("'$' must be followed by a variable name or number")
            value = source[i + 1 : j]
            tokens.append(Token(TokenKind.DOLLAR, value, start_line, start_column))
            column += j - i
            i = j
            continue

        if _is_ident_start(ch):
            j = i + 1
            while j < n and _is_ident_char(source[j]):
                j += 1
            value = source[i:j]
            tokens.append(Token(TokenKind.IDENT, value, start_line, start_column))
            column += j - i
            i = j
            continue

        if ch.isdigit():
            j = i + 1
            while j < n and source[j].isdigit():
                j += 1
            value = source[i:j]
            tokens.append(Token(TokenKind.NUMBER, value, start_line, start_column))
            column += j - i
            i = j
            continue

        raise error(f"unexpected character {ch!r}")

    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
