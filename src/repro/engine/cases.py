"""The case-study registry: one place naming the paper's workloads.

Section V-C's four case studies (plus the traffic-light extra) each
pair a simulated buggy application with the detection pattern that
catches it.  The CLI, the :class:`~repro.engine.pipeline.Pipeline`
constructors, the benchmarks, and the CI smoke jobs all resolve case
names through this registry instead of keeping private copies of the
builder lambdas.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Tuple

from repro.workloads import (
    absence_pattern,
    atomicity_pattern,
    build_absence,
    build_atomicity,
    build_hotpath,
    build_message_race,
    build_ordering_bug,
    build_random_walk,
    build_traffic_light,
    deadlock_pattern,
    hotpath_pattern,
    message_race_pattern,
    ordering_bug_pattern,
    traffic_light_pattern,
)


@dataclasses.dataclass(frozen=True)
class CaseStudy:
    """One named workload + its detection pattern.

    ``build(traces, seed, clock_backend)`` returns a workload result
    object exposing ``kernel``, ``server`` and ``run(max_events)``
    (every builder in :mod:`repro.workloads` does);
    ``pattern(num_traces)`` returns the pattern source compiled
    against the workload's *actual* trace count.
    """

    name: str
    build: Callable[[int, int, str], object]
    pattern: Callable[[int], str]


#: Every runnable case, keyed by name.
CASES: Dict[str, CaseStudy] = {
    "deadlock": CaseStudy(
        name="deadlock",
        build=lambda traces, seed, backend="fidge": build_random_walk(
            num_traces=traces, seed=seed, skip_probability=0.08,
            clock_backend=backend,
        ),
        pattern=deadlock_pattern,
    ),
    "race": CaseStudy(
        name="race",
        build=lambda traces, seed, backend="fidge": build_message_race(
            num_traces=traces, seed=seed, messages_per_sender=20,
            clock_backend=backend,
        ),
        pattern=lambda traces: message_race_pattern(),
    ),
    "atomicity": CaseStudy(
        name="atomicity",
        build=lambda traces, seed, backend="fidge": build_atomicity(
            num_processes=traces, seed=seed, iterations=40,
            bypass_probability=0.02, clock_backend=backend,
        ),
        pattern=lambda traces: atomicity_pattern(),
    ),
    "ordering": CaseStudy(
        name="ordering",
        build=lambda traces, seed, backend="fidge": build_ordering_bug(
            num_traces=traces, seed=seed, synchs_per_follower=6,
            bug_probability=0.05, clock_backend=backend,
        ),
        pattern=lambda traces: ordering_bug_pattern(),
    ),
    "traffic": CaseStudy(
        name="traffic",
        build=lambda traces, seed, backend="fidge": build_traffic_light(
            num_lights=max(2, traces - 1), seed=seed, cycles=40,
            fault_probability=0.05, clock_backend=backend,
        ),
        pattern=lambda traces: traffic_light_pattern(),
    ),
    "hotpath": CaseStudy(
        name="hotpath",
        build=lambda traces, seed, backend="fidge": build_hotpath(
            num_couriers=max(1, traces - 1), seed=seed,
            jobs_per_courier=12, clock_backend=backend,
        ),
        pattern=lambda traces: hotpath_pattern(),
    ),
    "absence": CaseStudy(
        name="absence",
        build=lambda traces, seed, backend="fidge": build_absence(
            num_workers=max(1, traces - 1), seed=seed,
            jobs_per_worker=25, clock_backend=backend,
        ),
        pattern=lambda traces: absence_pattern(),
    ),
}

#: The paper's four case studies (Section V-C) — the standard shard
#: set for multi-pattern single-pass runs.
CASE_STUDY_NAMES: Tuple[str, ...] = ("deadlock", "race", "atomicity", "ordering")


def build_case(
    name: str,
    traces: int,
    seed: int,
    clock_backend: str = "fidge",
) -> Tuple[object, str]:
    """Build one case's workload and its pattern source.

    The pattern is compiled for ``traces`` — matching the historical
    CLI behaviour where the workload's trace count equals the requested
    one for every case whose pattern is trace-parameterized.
    ``clock_backend`` selects the workload kernel's timestamp scheme
    (``"fidge"`` full vectors or ``"encoded"`` O(1) encoded clocks).
    """
    case = CASES[name]
    return case.build(traces, seed, clock_backend), case.pattern(traces)


def case_patterns(num_traces: int) -> Dict[str, str]:
    """The four case-study pattern sources, sized for ``num_traces``
    (the shard set of a multi-pattern single pass)."""
    return {
        name: CASES[name].pattern(num_traces) for name in CASE_STUDY_NAMES
    }
