"""The staged pipeline engine: one artifact for every wiring.

Every entry point of this reproduction runs the same detection
pipeline::

    source -> POETServer -> [FaultInjector] -> [HoldbackBuffer]
           -> [LoadShedder] -> ShardedDispatcher -> { Monitor, ... }

Historically each CLI subcommand, benchmark, and example hand-assembled
that chain; :class:`Pipeline` makes it an explicit, composable object
(the shape cloud-native CEP engines use for scalable pattern
detection).  A pipeline is built from a *source* —

* :meth:`Pipeline.for_case` / :meth:`Pipeline.for_workload` /
  :meth:`Pipeline.for_kernel` — a live simulation pushing events as
  the kernel runs;
* :meth:`Pipeline.replay` / :meth:`Pipeline.from_dump` — a recorded
  stream (the paper's POET dump/reload methodology), delivered
  **batch-first**: contiguous slices flow through
  :meth:`~repro.poet.server.POETServer.collect_batch` into the
  dispatcher's ``on_batch``, amortizing per-event dispatch overhead
  while staying observably identical to per-event delivery (live
  sources degenerate to slice size 1 because each event must reach the
  clients before simulated time advances past it) —

then configured fluently: :meth:`watch` adds pattern shards,
:meth:`with_faults`, :meth:`with_holdback`, and
:meth:`with_overload_control` insert the resilience stages,
:meth:`record` taps the collection order, :meth:`restore`
resumes from a checkpoint.  :meth:`run` wires the stages, drives the
source to completion, flushes the resilience stages in order, and
returns a :class:`PipelineResult`.
"""

from __future__ import annotations

import dataclasses
import signal
import threading
from typing import Dict, List, Optional, Sequence

from repro.clocks.encoded import (
    EncodedClock,
    StreamEncoder,
    encode_events,
    validate_backend,
)
from repro.core.config import MatcherConfig
from repro.core.matcher import MatchReport
from repro.core.monitor import MatchCallback, Monitor, MonitorStats
from repro.core.multi import NamedMatchCallback
from repro.engine.cases import CASES, build_case
from repro.engine.dispatch import CHECKPOINT_FORMAT, ShardedDispatcher
from repro.events.event import Event
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import ObsServer
from repro.obs.spans import SpanTracer
from repro.obs.stages import PipelineTelemetry, attach_telemetry
from repro.poet.client import POETClient, RecordingClient
from repro.poet.dumpfile import load_events
from repro.poet.holdback import HoldbackBuffer
from repro.poet.instrument import instrument
from repro.poet.server import POETServer
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.overload import (
    BAND_CHAFF,
    BAND_STRUCTURAL,
    EventUtilityScorer,
    LoadShedder,
    OverloadDetector,
    OverloadState,
)
from repro.simulation.kernel import Kernel

#: Default contiguous-slice size for replay sources.
DEFAULT_BATCH_SIZE = 256


class _InjectorStage(POETClient):
    """Adapts a :class:`FaultInjector` to the POET client interface so
    it can sit downstream of the server like any other stage."""

    def __init__(self, injector: FaultInjector):
        self.injector = injector

    def on_event(self, event: Event) -> None:
        self.injector.feed(event)

    def on_batch(self, events: Sequence[Event]) -> None:
        feed = self.injector.feed
        for event in events:
            feed(event)


@dataclasses.dataclass
class PipelineResult:
    """Outcome of one :meth:`Pipeline.run`.

    ``outcome`` is the kernel's :class:`SimulationResult` for live
    sources and ``None`` for replays; ``leftover`` holds events still
    stuck in the hold-back stage at end of stream (empty unless faults
    made the stream unrepairable).
    """

    num_events: int
    outcome: Optional[object]
    dispatcher: ShardedDispatcher
    leftover: List[Event]
    injector: Optional[FaultInjector]
    holdback: Optional[HoldbackBuffer]
    shedder: Optional[LoadShedder] = None
    #: True when the run was cut short by SIGTERM/``KeyboardInterrupt``
    #: and the pipeline shut down gracefully instead of unwinding
    #: mid-batch (obs server stopped, stage metrics flushed).
    interrupted: bool = False
    #: Set on an interrupted run when :meth:`Pipeline.record` was
    #: configured: the dispatcher checkpoint taken at shutdown.  With
    #: the recorded stream it is exactly a crash-recovery pair — restore
    #: it into a fresh deployment and replay the recording to converge.
    final_checkpoint: Optional[dict] = None
    #: Stage-axis telemetry surface (``None`` when observability is
    #: disabled).
    telemetry: Optional[PipelineTelemetry] = None
    #: The embedded scrape server when :meth:`Pipeline.with_server`
    #: configured one; still serving after the run so post-run scrapes
    #: (and humans) can read the final state — stop it when done.
    obs_server: Optional[ObsServer] = None

    def __getitem__(self, name: str) -> Monitor:
        return self.dispatcher[name]

    @property
    def monitors(self) -> Dict[str, Monitor]:
        return dict(self.dispatcher)

    @property
    def deadlocked(self) -> bool:
        return bool(self.outcome is not None and self.outcome.deadlocked)

    @property
    def stalled(self) -> bool:
        return bool(self.holdback is not None and self.holdback.stalled)

    def stats(self) -> Dict[str, MonitorStats]:
        return self.dispatcher.stats()

    def reports(self, name: str) -> List[MatchReport]:
        return self.dispatcher[name].reports

    def total_reports(self) -> int:
        return self.dispatcher.total_reports()

    def signatures(self) -> Dict[str, tuple]:
        return self.dispatcher.signatures()

    @property
    def overload_detector(self) -> Optional[OverloadDetector]:
        return self.shedder.detector if self.shedder is not None else None

    def checkpoint(self) -> dict:
        """Sharded snapshot of the end-of-run matcher states; when an
        overload stage ran, its shedder/detector snapshot rides along
        under the ``overload`` key (the v1 format tolerates it)."""
        state = self.dispatcher.checkpoint()
        if self.shedder is not None:
            state["overload"] = self.shedder.snapshot()
        return state


class Pipeline:
    """A composable detection pipeline over one event source.

    Build with one of the constructors, add stages fluently, then call
    :meth:`run` exactly once.  Patterns must be watched before running
    (a late shard would miss the prefix, like any late POET client).
    """

    def __init__(
        self,
        server: POETServer,
        trace_names: Sequence[str],
        kernel: Optional[Kernel] = None,
        workload: Optional[object] = None,
        events: Optional[Sequence[Event]] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
    ):
        self.server = server
        self.kernel = kernel
        self.workload = workload
        self.trace_names = tuple(trace_names)
        self.registry = registry
        self.tracer = tracer
        self._events = events
        self._dispatcher: Optional[ShardedDispatcher] = None
        self._named_on_match: Optional[NamedMatchCallback] = None
        self._fault_plan: Optional[FaultPlan] = None
        self._fault_seed = 0
        self._holdback_config: Optional[dict] = None
        self._overload_config: Optional[dict] = None
        self._overload_restore: Optional[dict] = None
        #: Set by :meth:`with_overload_control` (public so callers can
        #: feed it latency observations, e.g. from the detection
        #: latency tracker).
        self.overload_detector: Optional[OverloadDetector] = None
        self._server_config: Optional[dict] = None
        #: Built during :meth:`run` when the registry is live.
        self.telemetry: Optional[PipelineTelemetry] = None
        #: Built during :meth:`run` when :meth:`with_server` was called.
        self.obs_server: Optional[ObsServer] = None
        #: Live stage references for the health endpoint (set in run()).
        self._active_holdback: Optional[HoldbackBuffer] = None
        self._restore_state: Optional[dict] = None
        self._ran = False
        #: Streaming-source state (:meth:`stream` constructor): wired
        #: lazily on the first :meth:`feed`, closed by :meth:`finish`.
        self._streaming = False
        self._stream_encoder: Optional[StreamEncoder] = None
        self._wired = False
        self._active_injector: Optional[FaultInjector] = None
        self._active_shedder: Optional[LoadShedder] = None
        self._recorders: List[RecordingClient] = []
        #: Set by :meth:`for_case`: the case's pattern source, sized
        #: for the workload (watch it via :meth:`watch_case`).
        self.case_name: Optional[str] = None
        self.case_pattern: Optional[str] = None

    # ------------------------------------------------------------------
    # Constructors (sources)
    # ------------------------------------------------------------------

    @classmethod
    def for_kernel(
        cls,
        kernel: Kernel,
        verify: bool = False,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> "Pipeline":
        """Instrument a simulation kernel as the live event source."""
        server = instrument(kernel, verify=verify, registry=registry,
                            tracer=tracer)
        return cls(
            server=server,
            trace_names=kernel.trace_names(),
            kernel=kernel,
            registry=registry,
            tracer=tracer,
        )

    @classmethod
    def for_workload(
        cls,
        workload: object,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> "Pipeline":
        """Wrap an already-built workload (anything exposing ``kernel``,
        ``server``, and ``run(max_events)`` — every builder in
        :mod:`repro.workloads` does)."""
        server = workload.server
        kernel = workload.kernel
        if registry is not None:
            server.use_registry(registry)
        if tracer is not None:
            kernel.set_tracer(tracer)
            server.use_tracer(tracer)
        return cls(
            server=server,
            trace_names=kernel.trace_names(),
            kernel=kernel,
            workload=workload,
            registry=registry,
            tracer=tracer,
        )

    @classmethod
    def for_case(
        cls,
        name: str,
        traces: int = 10,
        seed: int = 0,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
        clock_backend: str = "fidge",
    ) -> "Pipeline":
        """Build a named case study (see :data:`repro.engine.CASES`) as
        the live source; its detection pattern is left unwatched —
        attach it with :meth:`watch_case` (or any pattern with
        :meth:`watch`).  ``clock_backend`` selects the workload
        kernel's timestamp scheme (see :data:`repro.clocks.CLOCK_BACKENDS`)."""
        if name not in CASES:
            raise KeyError(
                f"unknown case {name!r}; known: {sorted(CASES)}"
            )
        workload, pattern_source = build_case(
            name, traces, seed, clock_backend=clock_backend
        )
        pipeline = cls.for_workload(workload, registry=registry, tracer=tracer)
        pipeline.case_name = name
        pipeline.case_pattern = pattern_source
        return pipeline

    @classmethod
    def replay(
        cls,
        events: Sequence[Event],
        trace_names: Sequence[str],
        verify: bool = False,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
        clock_backend: str = "fidge",
    ) -> "Pipeline":
        """Use a recorded stream (a valid linearization, e.g. from
        :meth:`record` or a dump file) as the source; delivery is
        batch-first.

        With ``clock_backend="encoded"`` the recorded stream is
        transcoded once at construction — every non-receive event gets
        an O(1) encoded timestamp sharing interned knowledge rows —
        and the server keeps the struct-of-arrays store.  Matcher
        output is bit-identical either way.
        """
        backend = validate_backend(clock_backend)
        events = list(events)
        event_store = "object"
        if backend == "encoded":
            if not (events and isinstance(events[0].clock, EncodedClock)):
                # Streams recorded from an encoded kernel are already
                # stamped; only full-clock recordings need transcoding.
                events, _frame = encode_events(events, len(trace_names))
            event_store = "array"
        server = POETServer(
            num_traces=len(trace_names),
            trace_names=trace_names,
            verify=verify,
            registry=registry,
            tracer=tracer,
            event_store=event_store,
        )
        return cls(
            server=server,
            trace_names=trace_names,
            events=events,
            registry=registry,
            tracer=tracer,
        )

    @classmethod
    def from_dump(
        cls,
        path,
        verify: bool = False,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
        clock_backend: str = "fidge",
    ) -> "Pipeline":
        """Load a POET dump file and replay it (the paper's reload
        methodology)."""
        events, _num_traces, names = load_events(path)
        return cls.replay(
            events, names, verify=verify, registry=registry, tracer=tracer,
            clock_backend=clock_backend,
        )

    @classmethod
    def stream(
        cls,
        trace_names: Sequence[str],
        verify: bool = False,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
        clock_backend: str = "fidge",
    ) -> "Pipeline":
        """A pipeline over an *external* event source: slices of the
        linearization are pushed with :meth:`feed` as they arrive, and
        :meth:`finish` closes the stream and returns the result.

        This is the shape a network transport needs — the cluster
        worker's socket loop cannot hand the pipeline a finite source
        up front.  Stages wire lazily on the first :meth:`feed` (so
        every ``watch``/``with_*`` call still happens strictly before
        delivery), and ``clock_backend="encoded"`` transcodes each fed
        slice incrementally through one shared
        :class:`~repro.clocks.encoded.StreamEncoder` — observably
        identical to a one-shot :meth:`replay` of the concatenation.
        """
        backend = validate_backend(clock_backend)
        server = POETServer(
            num_traces=len(trace_names),
            trace_names=trace_names,
            verify=verify,
            registry=registry,
            tracer=tracer,
            event_store="array" if backend == "encoded" else "object",
        )
        pipeline = cls(
            server=server,
            trace_names=trace_names,
            registry=registry,
            tracer=tracer,
        )
        pipeline._streaming = True
        if backend == "encoded":
            pipeline._stream_encoder = StreamEncoder(len(trace_names))
        return pipeline

    @classmethod
    def distributed(
        cls,
        events: Sequence[Event],
        trace_names: Sequence[str],
        workers: int = 2,
        clock_backend: str = "fidge",
        **cluster_options,
    ):
        """A multi-process deployment over a recorded stream: the
        :mod:`repro.cluster` coordinator spawns ``workers`` shard
        processes (each running a :meth:`stream` pipeline with
        ``clock_backend``), routes watched shards to them with the
        :func:`~repro.engine.dispatch.shard_worker` hash policy, and
        streams the events over the length-prefixed POET wire transport
        with credit-based back-pressure.

        Returns a :class:`~repro.cluster.coordinator.ClusterPipeline`
        mirroring the fluent surface here (``watch`` / ``restore`` /
        ``run``); extra keyword arguments reach the
        :class:`~repro.cluster.coordinator.ClusterCoordinator`.
        """
        from repro.cluster.coordinator import ClusterPipeline

        return ClusterPipeline(
            events=events,
            trace_names=trace_names,
            workers=workers,
            clock_backend=clock_backend,
            **cluster_options,
        )

    # ------------------------------------------------------------------
    # Stage configuration
    # ------------------------------------------------------------------

    def on_match(self, callback: NamedMatchCallback) -> "Pipeline":
        """Install a dispatcher-level callback receiving
        ``(shard name, report)`` for every match of every shard.  Must
        be called before the first :meth:`watch`."""
        if self._dispatcher is not None:
            raise RuntimeError(
                "on_match() must be set before the first watch()"
            )
        self._named_on_match = callback
        return self

    def watch(
        self,
        name: str,
        pattern_source: str,
        config: Optional[MatcherConfig] = None,
        record_timings: bool = True,
        on_match: Optional[MatchCallback] = None,
    ) -> Monitor:
        """Add a pattern shard; returns its monitor."""
        if self._ran or self._wired:
            raise RuntimeError("cannot watch() after run()/feed(): the "
                               "shard would have missed the whole stream")
        if self._overload_config is not None:
            # Shards downstream of a shedder must tolerate stream
            # holes; while no event is actually shed the matcher's
            # behaviour (and output) is unchanged.
            config = dataclasses.replace(
                config if config is not None else MatcherConfig(),
                complete_stream=False,
            )
        return self.dispatcher.watch(
            name,
            pattern_source,
            config=config,
            record_timings=record_timings,
            on_match=on_match,
        )

    def watch_case(
        self,
        config: Optional[MatcherConfig] = None,
        record_timings: bool = True,
        on_match: Optional[MatchCallback] = None,
    ) -> Monitor:
        """Watch the built-in pattern of a :meth:`for_case` pipeline."""
        if self.case_name is None or self.case_pattern is None:
            raise RuntimeError("watch_case() needs a for_case() pipeline")
        return self.watch(
            self.case_name,
            self.case_pattern,
            config=config,
            record_timings=record_timings,
            on_match=on_match,
        )

    def with_faults(self, plan: FaultPlan, seed: int = 0) -> "Pipeline":
        """Insert a seeded :class:`FaultInjector` stage downstream of
        the server (faults perturb *delivery to the monitors*; the
        server's store keeps the true collection order)."""
        if self._fault_plan is not None:
            raise RuntimeError("pipeline already has a fault stage")
        self._fault_plan = plan
        self._fault_seed = seed
        return self

    def with_holdback(
        self,
        capacity: Optional[int] = None,
        overflow: str = "raise",
        stall_watermark: Optional[int] = None,
        raise_on_stall: bool = False,
    ) -> "Pipeline":
        """Insert a causal :class:`HoldbackBuffer` stage in front of
        the dispatcher (repairs repairable fault kinds, detects the
        rest as stalls)."""
        if self._holdback_config is not None:
            raise RuntimeError("pipeline already has a hold-back stage")
        self._holdback_config = {
            "capacity": capacity,
            "overflow": overflow,
            "stall_watermark": stall_watermark,
            "raise_on_stall": raise_on_stall,
        }
        return self

    def with_overload_control(
        self,
        detector: Optional[OverloadDetector] = None,
        scorer: Optional[EventUtilityScorer] = None,
        shed_band: int = BAND_CHAFF,
        critical_band: int = BAND_STRUCTURAL,
        max_drop_rate: Optional[float] = None,
        latency_profile=None,
        record_kept: bool = False,
    ) -> "Pipeline":
        """Insert a :class:`~repro.resilience.overload.LoadShedder`
        stage between the hold-back buffer (when present) and the
        dispatcher.  Must be called before the first :meth:`watch`:
        shards downstream of a shedder run with
        ``complete_stream=False``, so their matchers tolerate the holes
        shedding leaves and re-verify candidates once a gap is seen
        (match output is bit-identical while the detector never
        engages).

        ``detector`` defaults to a fresh
        :class:`~repro.resilience.overload.OverloadDetector` with
        default thresholds; ``scorer`` defaults to an
        :class:`~repro.resilience.overload.EventUtilityScorer` over
        every watched shard, and is also handed to the hold-back
        buffer so its ``shed`` overflow policy evicts least-useful
        first.  See :class:`~repro.resilience.overload.LoadShedder`
        for the remaining knobs.
        """
        if self._overload_config is not None:
            raise RuntimeError("pipeline already has an overload stage")
        if self._dispatcher is not None:
            raise RuntimeError(
                "with_overload_control() must be set before the first "
                "watch(): shards must be built gap-tolerant"
            )
        if detector is None:
            detector = OverloadDetector(
                registry=self.registry, tracer=self.tracer
            )
        self._overload_config = {
            "scorer": scorer,
            "shed_band": shed_band,
            "critical_band": critical_band,
            "max_drop_rate": max_drop_rate,
            "latency_profile": latency_profile,
            "record_kept": record_kept,
        }
        self.overload_detector = detector
        return self

    def with_server(
        self, port: int = 0, host: str = "127.0.0.1"
    ) -> "Pipeline":
        """Serve live observability over HTTP while the pipeline runs
        (``/metrics``, ``/snapshot``, ``/healthz``, ``/readyz``,
        ``/spans`` — see :class:`~repro.obs.server.ObsServer`).

        Port ``0`` binds a free port (read it from
        ``pipeline.obs_server.port`` once :meth:`run` has started the
        server).  Must be called before the first :meth:`watch`: a
        pipeline built without a registry gets one minted here, and the
        shards must be born into it.  The server outlives :meth:`run`
        so the end-of-run state stays scrapeable; call
        ``obs_server.stop()`` (or let the daemon thread die with the
        process) when done.
        """
        if self._server_config is not None:
            raise RuntimeError("pipeline already has a scrape server")
        if self._dispatcher is not None:
            raise RuntimeError(
                "with_server() must be set before the first watch(): "
                "shards must be born into the served registry"
            )
        if self.registry is None or not self.registry.enabled:
            self.registry = MetricsRegistry()
            self.server.use_registry(self.registry)
        self._server_config = {"port": port, "host": host}
        return self

    def _health_document(self) -> dict:
        """The ``/healthz`` body; called from server threads, so it
        only reads plain attributes (safe under the GIL)."""
        telemetry = self.telemetry
        started = bool(telemetry is not None and telemetry.started)
        finished = bool(telemetry is not None and telemetry.finished)
        quarantined = (
            sorted(self._dispatcher.quarantined)
            if self._dispatcher is not None
            else []
        )
        stalled = bool(
            self._active_holdback is not None and self._active_holdback.stalled
        )
        degraded = stalled or bool(quarantined)
        document = {
            "ready": started,
            "running": started and not finished,
            "finished": finished,
            "events": self.server.num_events,
            "stalled": stalled,
            "quarantined": quarantined,
            "stages": telemetry.stage_summary() if telemetry is not None else {},
        }
        if self.overload_detector is not None:
            state = self.overload_detector.state
            document["overload_state"] = state.name
            degraded = degraded or state != OverloadState.NORMAL
        document["status"] = "degraded" if degraded else "ok"
        return document

    def record(self) -> RecordingClient:
        """Tap the server's collection order (the true linearization,
        upstream of any fault stage); returns the recorder."""
        recorder = RecordingClient()
        self.server.connect(recorder)
        self._recorders.append(recorder)
        return recorder

    def restore(self, state: dict) -> "Pipeline":
        """Resume from a checkpoint: either a sharded dispatcher
        snapshot or a single monitor checkpoint (then exactly one shard
        must be watched).  Restored shards skip already-delivered
        events, so running the pipeline over the full recorded stream
        converges to the uninterrupted run."""
        if self._dispatcher is None or len(self.dispatcher) == 0:
            raise RuntimeError("restore() needs the shards watched first")
        if "overload" in state:
            # The shedder is built during run(); stash its snapshot.
            self._overload_restore = state["overload"]
            state = {k: v for k, v in state.items() if k != "overload"}
        if state.get("format") == CHECKPOINT_FORMAT:
            self.dispatcher.restore(state)
        else:
            shards = list(self.dispatcher)
            if len(shards) != 1:
                raise ValueError(
                    "a single-monitor checkpoint needs exactly one shard, "
                    f"got {len(shards)}"
                )
            shards[0][1].restore(state)
        return self

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def dispatcher(self) -> ShardedDispatcher:
        """The shard dispatcher (created on first use)."""
        if self._dispatcher is None:
            self._dispatcher = ShardedDispatcher(
                self.trace_names,
                on_match=self._named_on_match,
                registry=self.registry,
                tracer=self.tracer,
            )
        return self._dispatcher

    def __getitem__(self, name: str) -> Monitor:
        return self.dispatcher[name]

    @property
    def num_traces(self) -> int:
        return len(self.trace_names)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _wire(self) -> None:
        """Build and connect the stage chain (exactly once): telemetry,
        shedder, hold-back, fault injector, scrape server — everything
        :meth:`run` historically assembled before driving the source."""
        if self._wired:
            return
        self._wired = True

        telemetry = attach_telemetry(self.registry)
        self.telemetry = telemetry

        dispatcher = self._dispatcher
        holdback: Optional[HoldbackBuffer] = None
        injector: Optional[FaultInjector] = None
        shedder: Optional[LoadShedder] = None

        tail: Optional[POETClient] = dispatcher
        if telemetry is not None and dispatcher is not None:
            tail = telemetry.link("dispatcher", dispatcher)
        scorer: Optional[EventUtilityScorer] = None
        if self._overload_config is not None:
            if dispatcher is None or len(dispatcher) == 0:
                raise RuntimeError("an overload stage needs a watched shard")
            overload = self._overload_config
            scorer = overload["scorer"]
            if scorer is None:
                scorer = EventUtilityScorer(
                    [monitor for _, monitor in dispatcher]
                )
            shedder = LoadShedder(
                tail,
                scorer,
                self.overload_detector,
                shed_band=overload["shed_band"],
                critical_band=overload["critical_band"],
                max_drop_rate=overload["max_drop_rate"],
                latency_profile=overload["latency_profile"],
                record_kept=overload["record_kept"],
                registry=self.registry,
                tracer=self.tracer,
            )
            if self._overload_restore is not None:
                shedder.restore(self._overload_restore)
            tail = shedder
            if telemetry is not None:
                tail = telemetry.link("shedder", shedder)
        if self._holdback_config is not None:
            if tail is None:
                raise RuntimeError("a hold-back stage needs a watched shard")
            holdback = HoldbackBuffer(
                self.num_traces,
                tail.on_event,
                registry=self.registry,
                tracer=self.tracer,
                utility_scorer=scorer,
                **self._holdback_config,
            )
            if shedder is not None:
                shedder.set_backlog_probe(lambda: holdback.pending_count)
            tail = holdback
            if telemetry is not None:
                tail = telemetry.link("holdback", holdback)
        if self._fault_plan is not None:
            if tail is None:
                raise RuntimeError("a fault stage needs a watched shard")
            injector = FaultInjector(
                self._fault_plan,
                tail.on_event,
                seed=self._fault_seed,
                registry=self.registry,
                tracer=self.tracer,
            )
            tail = _InjectorStage(injector)
            if telemetry is not None:
                tail = telemetry.link("faults", tail)
        if tail is not None:
            self.server.connect(tail)

        self._active_holdback = holdback
        if telemetry is not None:
            poet_server = self.server
            telemetry.set_count_probe(
                "source", lambda: poet_server.num_events
            )
            telemetry.set_count_probe("poet", lambda: poet_server.num_events)
            # The POET store retains the full collected stream — its
            # size is the stage's "retained events" depth.
            telemetry.set_queue_probe("poet", lambda: poet_server.num_events)
            if dispatcher is not None:
                telemetry.set_count_probe(
                    "monitors",
                    lambda: sum(
                        mon.matcher.events_processed
                        for _name, mon in dispatcher
                    ),
                )
            if holdback is not None:
                telemetry.set_queue_probe(
                    "holdback", lambda: holdback.pending_count
                )
            if injector is not None:
                telemetry.set_queue_probe(
                    "faults", lambda: injector.pending_count
                )

        if self._server_config is not None:
            self.obs_server = ObsServer(
                self.registry,
                tracer=self.tracer,
                health=self._health_document,
                refresh=telemetry.refresh if telemetry is not None else None,
                host=self._server_config["host"],
                port=self._server_config["port"],
            )
            self.obs_server.start()
        if telemetry is not None:
            telemetry.mark_started()

        self._active_injector = injector
        self._active_shedder = shedder

    def _finalize(
        self,
        outcome: Optional[object],
        interrupted: bool = False,
    ) -> PipelineResult:
        """Flush the resilience stages (skipped on an interrupted run —
        a repair flush mid-stream would deliver out of causal order),
        flush stage metrics, and assemble the result."""
        injector = self._active_injector
        holdback = self._active_holdback
        telemetry = self.telemetry

        leftover: List[Event] = []
        if not interrupted:
            if injector is not None:
                injector.flush()
            if holdback is not None:
                leftover = holdback.flush()

        if telemetry is not None:
            telemetry.mark_finished()
            telemetry.refresh()

        final_checkpoint = None
        if interrupted:
            if self._recorders and self._dispatcher is not None:
                final_checkpoint = self.checkpoint_document()
            # A graceful shutdown leaves nothing listening: callers of
            # an uninterrupted run may keep scraping the end-of-run
            # state, but an interrupted process is on its way out.
            if self.obs_server is not None:
                self.obs_server.stop()

        return PipelineResult(
            num_events=self.server.num_events,
            outcome=outcome,
            dispatcher=self.dispatcher,
            leftover=leftover,
            injector=injector,
            holdback=holdback,
            shedder=self._active_shedder,
            telemetry=telemetry,
            obs_server=self.obs_server,
            interrupted=interrupted,
            final_checkpoint=final_checkpoint,
        )

    def checkpoint_document(self) -> dict:
        """Whole-deployment checkpoint of the current shard states
        (the ``ocep-sharded-checkpoint-v1`` document)."""
        state = self.dispatcher.checkpoint()
        if self._active_shedder is not None:
            state["overload"] = self._active_shedder.snapshot()
        return state

    def run(
        self,
        max_events: Optional[int] = None,
        batch_size: Optional[int] = None,
    ) -> PipelineResult:
        """Wire the stages, drive the source to completion, flush the
        resilience stages, and return the result.

        ``max_events`` bounds the live simulation (or truncates a
        replay).  ``batch_size`` sets the replay slice size
        (default :data:`DEFAULT_BATCH_SIZE`; ``1`` forces the
        per-event delivery path); live sources always deliver per
        event.  A pipeline runs exactly once.

        Shutdown is graceful: SIGTERM (when running on the main
        thread) and ``KeyboardInterrupt`` stop the source at the next
        delivery boundary instead of unwinding mid-batch — stage
        metrics are flushed, the scrape server is stopped, and when
        :meth:`record` was configured the result carries a final
        whole-deployment checkpoint (``result.final_checkpoint``) that,
        paired with the recording, recovers the run exactly.
        """
        if self._ran:
            raise RuntimeError("a Pipeline runs once; build a fresh one")
        if self._streaming:
            raise RuntimeError(
                "a stream() pipeline is driven with feed()/finish()"
            )
        self._ran = True
        self._wire()

        outcome = None
        interrupted = False
        with _graceful_sigterm():
            try:
                if self._events is not None:
                    events = self._events
                    if max_events is not None:
                        events = events[:max_events]
                    size = (batch_size if batch_size is not None
                            else DEFAULT_BATCH_SIZE)
                    if size < 1:
                        raise ValueError(
                            f"batch_size must be >= 1, got {size}"
                        )
                    if size == 1:
                        collect = self.server.collect
                        for event in events:
                            collect(event)
                    else:
                        collect_batch = self.server.collect_batch
                        for start in range(0, len(events), size):
                            collect_batch(events[start:start + size])
                elif self.workload is not None:
                    outcome = self.workload.run(max_events=max_events)
                elif self.kernel is not None:
                    outcome = self.kernel.run(max_events=max_events)
                else:
                    raise RuntimeError("pipeline has no source")
            except KeyboardInterrupt:
                interrupted = True

        return self._finalize(outcome, interrupted=interrupted)

    # ------------------------------------------------------------------
    # Streaming drive (stream() pipelines)
    # ------------------------------------------------------------------

    def feed(self, events: Sequence[Event]) -> int:
        """Deliver the next slice of the linearization (stream mode).

        Wires the stages on first use; a ``clock_backend="encoded"``
        stream transcodes the slice through the pipeline's
        :class:`~repro.clocks.encoded.StreamEncoder` unless the events
        already carry encoded clocks.  Returns the number of events
        delivered.
        """
        if not self._streaming:
            raise RuntimeError("feed() needs a stream() pipeline")
        if self._ran:
            raise RuntimeError("stream already finished")
        self._wire()
        if not events:
            return 0
        if self._stream_encoder is not None and not isinstance(
            events[0].clock, EncodedClock
        ):
            events = self._stream_encoder.extend(events)
        self.server.collect_batch(events)
        return len(events)

    def finish(self) -> PipelineResult:
        """Close a stream-mode pipeline: flush the resilience stages,
        flush stage metrics, and return the result (idempotent guard —
        a stream finishes once)."""
        if not self._streaming:
            raise RuntimeError("finish() needs a stream() pipeline")
        if self._ran:
            raise RuntimeError("stream already finished")
        self._ran = True
        self._wire()  # an empty stream still yields a well-formed result
        return self._finalize(outcome=None)


class _graceful_sigterm:
    """Turn SIGTERM into ``KeyboardInterrupt`` for the duration of a
    pipeline drive, so both interrupt paths share the graceful-shutdown
    handling.  Installed only on the main thread (signal handlers
    cannot be set elsewhere); a no-op otherwise, and the previous
    handler is always restored."""

    def __init__(self) -> None:
        self._previous = None

    def __enter__(self) -> "_graceful_sigterm":
        if threading.current_thread() is threading.main_thread():
            def _raise(signum, frame):
                raise KeyboardInterrupt
            try:
                self._previous = signal.signal(signal.SIGTERM, _raise)
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                self._previous = None
        return self

    def __exit__(self, *exc) -> bool:
        if self._previous is not None:
            signal.signal(signal.SIGTERM, self._previous)
            self._previous = None
        return False


__all__ = [
    "DEFAULT_BATCH_SIZE",
    "Pipeline",
    "PipelineResult",
]
