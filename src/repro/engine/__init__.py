"""The staged pipeline engine (see ``docs/architecture.md``).

``repro.engine`` composes the reproduction's existing stages — event
sources, the POET server, fault injection, causal hold-back, and
multi-pattern dispatch — into one explicit
:class:`~repro.engine.pipeline.Pipeline` artifact shared by the CLI,
the chaos harness, the benchmarks, and the examples.
"""

from repro.engine.cases import (
    CASE_STUDY_NAMES,
    CASES,
    CaseStudy,
    build_case,
    case_patterns,
)
from repro.engine.dispatch import CHECKPOINT_FORMAT, ShardedDispatcher
from repro.engine.pipeline import (
    DEFAULT_BATCH_SIZE,
    Pipeline,
    PipelineResult,
)

__all__ = [
    "CASE_STUDY_NAMES",
    "CASES",
    "CHECKPOINT_FORMAT",
    "CaseStudy",
    "DEFAULT_BATCH_SIZE",
    "Pipeline",
    "PipelineResult",
    "ShardedDispatcher",
    "build_case",
    "case_patterns",
]
