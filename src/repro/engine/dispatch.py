"""Sharded multi-pattern dispatch: one delivery stream, N matchers.

The paper's monitor consumes one linearization for one pattern; a
deployment watches many patterns at once.  :class:`ShardedDispatcher`
is the pipeline stage doing that fan-out: each watched pattern is a
*shard* — an independent :class:`~repro.core.monitor.Monitor` with its
own matcher state, ``pattern=<name>``-labelled metrics, span track,
and failure quarantine (inherited from
:class:`~repro.core.multi.MultiMonitor`).  One pass over the
computation therefore produces exactly the per-pattern matches,
counters, and subsets that N independent single-pattern runs would —
an equivalence the engine test suite and the CI pipeline-smoke job
assert on seeds 0..9.

On top of the plain multiplexer the dispatcher adds the batch-first
engine surface: ``dispatch.batch`` spans around each delivered slice,
and whole-deployment checkpoint/restore so a sharded pipeline can
crash and resume as one unit.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence

from repro.core.multi import MultiMonitor, NamedMatchCallback
from repro.events.event import Event
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer

#: Format tag of a sharded checkpoint document.
CHECKPOINT_FORMAT = "ocep-sharded-checkpoint-v1"


def shard_worker(name: str, num_workers: int) -> int:
    """The deployment's shard-routing policy: which worker owns shard
    ``name`` in a ``num_workers``-wide deployment.

    This is the single hash policy shared by every runtime that splits
    a shard set across execution units — the in-process
    :class:`ShardedDispatcher` (trivially: one unit owns everything)
    and the multi-process :mod:`repro.cluster` coordinator.  It must be
    **stable across processes and runs** (so a respawned worker claims
    the same shards and a checkpoint re-shards deterministically),
    which rules out the salted builtin ``hash``; CRC-32 of the UTF-8
    shard name is used instead.
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    return zlib.crc32(name.encode("utf-8")) % num_workers


def worker_shards(names: Sequence[str], num_workers: int) -> List[List[str]]:
    """Apply :func:`shard_worker` to a whole shard set: the shard names
    owned by each worker, in the input order.  Workers owning no shard
    get an empty list (an *empty shard* — they still consume the stream
    so an elastic re-shard can hand them patterns later)."""
    assignment: List[List[str]] = [[] for _ in range(num_workers)]
    for name in names:
        assignment[shard_worker(name, num_workers)].append(name)
    return assignment


class ShardedDispatcher(MultiMonitor):
    """A :class:`~repro.core.multi.MultiMonitor` with engine semantics.

    Everything a ``MultiMonitor`` provides is preserved — ``watch``,
    per-event and batched fan-out, quarantine isolation, per-shard
    stats and metrics.  The dispatcher layers on:

    * ``dispatch.batch`` spans (on the ``engine.dispatch`` track) so a
      trace shows each delivered slice and the shards that consumed it;
    * :meth:`checkpoint` / :meth:`restore` for the whole shard set as
      one JSON-ready document, delegating to each shard's monitor
      (restored shards skip already-delivered events, so resuming is
      just reconnecting the dispatcher to a replay of the full stream);
    * :meth:`signatures` — the per-shard representative-subset
      signatures used by the equivalence checks.
    """

    def __init__(
        self,
        trace_names: Sequence[str],
        on_match: Optional[NamedMatchCallback] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
    ):
        super().__init__(
            trace_names, on_match=on_match, registry=registry, tracer=tracer
        )
        self.batches_seen = 0

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------

    def on_batch(self, events: Sequence[Event]) -> None:
        if not events:
            return
        self.batches_seen += 1
        if self.tracer.enabled:
            with self.tracer.span(
                "dispatch.batch",
                track="engine.dispatch",
                args={
                    "events": len(events),
                    "first": repr(events[0].event_id),
                    "shards": len(self) - len(self.quarantined),
                },
            ):
                super().on_batch(events)
        else:
            super().on_batch(events)

    # ------------------------------------------------------------------
    # Checkpoint / recovery
    # ------------------------------------------------------------------

    def checkpoint(self) -> dict:
        """JSON-ready snapshot of every shard's matcher state."""
        return {
            "format": CHECKPOINT_FORMAT,
            "trace_names": list(self.trace_names),
            "shards": {name: mon.checkpoint() for name, mon in self},
        }

    def restore(self, state: dict, partial: bool = False) -> None:
        """Load a :meth:`checkpoint` into this dispatcher's shards.

        Every shard named in the snapshot must already be watched (with
        the same pattern), and none may have processed events.  Shards
        watched here but absent from the snapshot stay fresh — they
        will consume the stream from its start, like any new pattern.

        With ``partial=True`` snapshot shards *not* watched here are
        skipped instead of raising — the elastic re-sharding mode: a
        whole-deployment checkpoint written at one shard layout can be
        restored into a deployment where this dispatcher owns only a
        subset of the shard set (each unit of the new layout restores
        its own slice; slices restored nowhere are simply recomputed
        from the stream by whichever fresh shard watches them).
        """
        if state.get("format") != CHECKPOINT_FORMAT:
            raise ValueError(
                f"not a {CHECKPOINT_FORMAT} document: "
                f"format={state.get('format')!r}"
            )
        shards = state["shards"]
        missing = [name for name in shards if name not in self]
        if missing and not partial:
            raise ValueError(
                f"checkpoint names shards not watched here: {sorted(missing)}"
            )
        for name, shard_state in shards.items():
            if partial and name not in self:
                continue
            self[name].restore(shard_state)

    # ------------------------------------------------------------------
    # Equivalence surface
    # ------------------------------------------------------------------

    def signatures(self) -> Dict[str, tuple]:
        """Per-shard representative-subset signatures (the comparison
        key of the sharded-vs-independent equivalence checks)."""
        return {name: mon.subset.signature() for name, mon in self}


__all__ = [
    "CHECKPOINT_FORMAT",
    "ShardedDispatcher",
    "shard_worker",
    "worker_shards",
]
