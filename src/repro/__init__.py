"""OCEP: an efficient online causal-event-pattern-matching framework.

Reproduction of Pramanik, Taylor & Wong, *Towards an Efficient Online
Causal-Event-Pattern-Matching Framework*, ICDCS 2013.

The typical pipeline::

    from repro import Kernel, Monitor, instrument

    kernel = ...                 # build a simulated target application
    server = instrument(kernel)  # POET substrate collecting its events
    monitor = Monitor.from_source(pattern_text, kernel.trace_names())
    server.connect(monitor)
    kernel.run()
    print(monitor.subset.matches)

See ``examples/quickstart.py`` for a complete runnable version, and
DESIGN.md for the system inventory and experiment index.
"""

from repro.clocks import LamportClock, Ordering, VectorClock
from repro.core import (
    CausalIndex,
    Match,
    MatcherConfig,
    MatchReport,
    Monitor,
    MonitorStats,
    MultiMonitor,
    OCEPMatcher,
    RepresentativeSubset,
    SweepMode,
    enumerate_matches,
)
from repro.events import CompoundEvent, Event, EventId, EventKind, EventStore, Trace
from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    SearchTrace,
    to_json,
    to_prometheus,
)
from repro.patterns import (
    CompiledPattern,
    PatternError,
    PatternParseError,
    PatternTree,
    compile_pattern,
    parse_pattern,
)
from repro.poet import (
    HoldbackBuffer,
    POETClient,
    POETServer,
    RecordingClient,
    dump_events,
    instrument,
    is_linearization,
    linearize,
    load_events,
)
from repro.resilience import FaultInjector, FaultPlan, run_fault_matrix
from repro.simulation import (
    ANY_SOURCE,
    DeadlockError,
    Kernel,
    MPIContext,
    Proc,
    Semaphore,
    SimulationResult,
    mpi_run,
)

__version__ = "1.0.0"

__all__ = [
    "VectorClock",
    "LamportClock",
    "Ordering",
    "Event",
    "EventId",
    "EventKind",
    "Trace",
    "EventStore",
    "CompoundEvent",
    "POETServer",
    "POETClient",
    "RecordingClient",
    "instrument",
    "linearize",
    "is_linearization",
    "dump_events",
    "load_events",
    "HoldbackBuffer",
    "FaultPlan",
    "FaultInjector",
    "run_fault_matrix",
    "Kernel",
    "SimulationResult",
    "DeadlockError",
    "ANY_SOURCE",
    "Proc",
    "MPIContext",
    "mpi_run",
    "Semaphore",
    "parse_pattern",
    "PatternTree",
    "compile_pattern",
    "CompiledPattern",
    "PatternError",
    "PatternParseError",
    "OCEPMatcher",
    "Monitor",
    "MonitorStats",
    "MultiMonitor",
    "MatcherConfig",
    "SweepMode",
    "Match",
    "MatchReport",
    "RepresentativeSubset",
    "CausalIndex",
    "enumerate_matches",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "SearchTrace",
    "to_json",
    "to_prometheus",
    "__version__",
]
