"""The OCEP matching engine (paper, Section IV-C, Algorithms 1-3).

On each *terminating* event the matcher runs a backtracking search for
pattern matches containing it:

* level 1 of the search is the newly matched event (the partial match
  ``{e1}`` of Algorithm 1);
* ``goForward`` (Algorithm 2) instantiates the next pattern position:
  it sweeps the traces, computes the candidate domain on each trace by
  intersecting the Figure-4 restrictions contributed by every already
  instantiated event, and takes candidates newest-first;
* a restriction that empties a domain records a conflict in the ``bt``
  table together with the vector-timestamp-derived bounds within which
  a *different* choice at the conflicting level could resolve it
  (Figure 5);
* ``goBackward`` (Algorithm 3) consults the recorded conflicts: when
  the failing level never produced a candidate and every failure was a
  domain conflict, it jumps directly to the deepest conflicting level
  and narrows that level's remaining candidates with the recorded
  bounds; otherwise it backtracks one level (a jump past levels whose
  choices could have mattered — variable bindings, partner identity,
  exhausted candidates — would lose matches, so those failures
  deliberately fall back to plain backtracking);
* every complete match is offered to the representative subset
  (``updateSubset``); after a completed match the level it completed
  on advances to the next trace, which is what sweeps coverage across
  the ``(pattern event, trace)`` slots.

Domain intervals are exact under the clock convention (see
:mod:`repro.core.domain`), so candidate acceptance only needs the
non-interval checks: distinctness, attribute-variable consistency,
partner identity, and limited-precedence immediacy.
"""

from __future__ import annotations

import dataclasses
import time
from bisect import bisect_left as _bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import MatcherConfig, SweepMode
from repro.core.gpls import CausalIndex
from repro.core.history import HistorySet, LeafHistory
from repro.core.subset import RepresentativeSubset
from repro.events.event import Event, EventKind
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import NULL_TRACER, SpanTracer
from repro.obs.trace import SearchTrace
from repro.patterns.ast import AttrVar, Exact
from repro.patterns.classes import Bindings
from repro.patterns.compile import CompiledPattern, Constraint
from repro.patterns.errors import PatternError
from repro.patterns.plan import LeafStats, Plan, plan_order

#: A complete match: leaf id -> event.
Match = Dict[int, Event]


@dataclasses.dataclass(frozen=True)
class MatchReport:
    """One complete match found online.

    Attributes
    ----------
    trigger_leaf, trigger_event:
        The terminating event that triggered the search.
    assignment:
        The matched event for every pattern leaf.
    bindings:
        Final attribute-variable environment.
    new_slots:
        Representative-subset slots this match newly covered (empty
        when the match was redundant for the subset).
    groups:
        For each Kleene leaf, the maximal event group the anchor
        expanded to (anchor included, ordered by trace then index).
        Empty for patterns without Kleene positions.
    """

    trigger_leaf: int
    trigger_event: Event
    assignment: Tuple[Tuple[int, Event], ...]
    bindings: Tuple[Tuple[str, str], ...]
    new_slots: Tuple[Tuple[int, int], ...]
    groups: Tuple[Tuple[int, Tuple[Event, ...]], ...] = ()

    def as_dict(self) -> Match:
        return dict(self.assignment)

    def group(self, leaf_id: int) -> Tuple[Event, ...]:
        """The expanded group of a Kleene leaf (anchor included)."""
        for g, events in self.groups:
            if g == leaf_id:
                return events
        raise KeyError(f"leaf {leaf_id} is not a Kleene position")


@dataclasses.dataclass(slots=True)
class _Conflict:
    """A recorded ``bt`` entry: changing ``level``'s event to a position
    within ``[lo, hi]`` on its current trace might resolve the failure
    (``None`` bounds = unbounded on that side)."""

    level: int
    lo: Optional[int]
    hi: Optional[int]


class _LazyConflict:
    """A domain-conflict ``bt`` entry whose Figure-5 resolution bounds
    are computed on first access.

    Conflicts are recorded for every emptied interval but consulted
    only when a back-jump actually fires, and the GP/LS index and the
    leaf histories are frozen for the duration of a search — so
    deferring the bound computation (gp/ls queries plus a history
    lookup) gives identical bounds while skipping the work entirely in
    the common never-consulted case.
    """

    __slots__ = ("level", "_matcher", "_constraint", "_assigned", "_leaf_id",
                 "_trace", "_bounds")

    def __init__(self, level, matcher, constraint, assigned, leaf_id, trace):
        self.level = level
        self._matcher = matcher
        self._constraint = constraint
        self._assigned = assigned
        self._leaf_id = leaf_id
        self._trace = trace
        self._bounds: Optional[Tuple[Optional[int], Optional[int]]] = None

    def _resolve(self) -> Tuple[Optional[int], Optional[int]]:
        bounds = self._bounds
        if bounds is None:
            matcher = self._matcher
            bounds = self._bounds = matcher._resolution_bounds(
                self._constraint,
                self._assigned,
                matcher.history.leaf(self._leaf_id),
                self._trace,
            )
        return bounds

    @property
    def lo(self) -> Optional[int]:
        return self._resolve()[0]

    @property
    def hi(self) -> Optional[int]:
        return self._resolve()[1]


class _BudgetExhausted(Exception):
    """Internal: the per-trigger search budget ran out."""


class _Level:
    """Search state for one backtracking level (pattern position)."""

    __slots__ = (
        "leaf_id",
        "trace",
        "candidates",
        "pos",
        "event",
        "env",
        "extra_lo",
        "extra_hi",
        "conflicts",
        "accepted_any",
        "filter_rejected",
        "match_since_assign",
    )

    def __init__(self, leaf_id: int):
        self.leaf_id = leaf_id
        self.reset()

    def reset(self) -> None:
        self.trace = 0
        self.candidates: Optional[Sequence[Event]] = None
        self.pos = -1
        self.event: Optional[Event] = None
        self.env: Optional[Bindings] = None
        self.extra_lo: Optional[int] = None
        self.extra_hi: Optional[int] = None
        self.conflicts: List[_Conflict] = []
        self.accepted_any = False
        self.filter_rejected = False
        self.match_since_assign = False

    def advance_trace(self) -> None:
        """Abandon the current trace and move the sweep to the next."""
        self.trace += 1
        self.candidates = None
        self.pos = -1
        self.event = None
        self.extra_lo = None
        self.extra_hi = None


class OCEPMatcher:
    """Online matcher for one compiled pattern.

    Feed every event of the monitored computation (in linearization
    order) to :meth:`on_event`; it returns the match reports the event
    triggered.  The matcher owns the leaf histories, the GP/LS index,
    and the representative subset.
    """

    def __init__(
        self,
        pattern: CompiledPattern,
        num_traces: int,
        config: Optional[MatcherConfig] = None,
    ):
        self.pattern = pattern
        self.num_traces = num_traces
        self.config = config or MatcherConfig()
        self.index = CausalIndex(
            num_traces, allow_gaps=not self.config.complete_stream
        )
        self.history = HistorySet(pattern.num_leaves, num_traces)
        self.subset = RepresentativeSubset(pattern.num_leaves, num_traces)
        self._terminating = frozenset(pattern.terminating_leaves())
        # Hot-path tables: the dense constraint matrix (indexed instead
        # of a method call per leaf pair) and per-leaf exact-attribute
        # prefilter keys, so on_event skips the full class match for
        # leaves whose exact type/process/text cannot match the event.
        self._cmat = pattern.constraint_matrix
        table = (
            pattern.leaves[0].event_class.trace_names
            if pattern.leaves else ()
        )
        self._trace_name_table = table
        self._leaf_filters = []
        for leaf in pattern.leaves:
            event_class = leaf.event_class
            exact_process = (
                event_class.process.value
                if isinstance(event_class.process, Exact)
                and event_class.trace_names == table
                else None
            )
            exact_text = (
                event_class.text.value
                if isinstance(event_class.text, Exact) else None
            )
            # A Kleene leaf's history is never pruned: any class event
            # may later join a reported maximal group, and pruning
            # keeps only causally interchangeable representatives.
            allow_prune = not leaf.kleene
            self._leaf_filters.append(
                (
                    leaf,
                    event_class.exact_etype(),
                    exact_process,
                    exact_text,
                    allow_prune,
                )
            )
        # -- v2 operator state -----------------------------------------
        self._v2 = pattern.has_v2_features
        self._kleene_leaves: Tuple[int, ...] = tuple(
            leaf.leaf_id for leaf in pattern.leaves if leaf.kleene
        )
        self._negations = tuple(pattern.negations)
        #: Unpruned per-negation histories of potential witnesses
        #: (events matching the absent class modulo attribute
        #: variables); consulted by the complete-assignment veto.
        self.negation_history = (
            HistorySet(len(self._negations), num_traces)
            if self._negations else None
        )
        self._negation_has_vars = tuple(
            any(
                isinstance(spec, AttrVar)
                for spec in (
                    neg.event_class.process,
                    neg.event_class.etype,
                    neg.event_class.text,
                )
            )
            for neg in self._negations
        )
        self._has_windows = bool(pattern.windows)
        self._wsim = pattern.window_matrix_sim
        self._wwall = pattern.window_matrix_wall
        self._wall_clock = self.config.wall_clock
        if pattern.has_wall_windows and self._wall_clock is None:
            raise PatternError(
                "pattern uses a 'WITHIN n wall' guard but the matcher "
                "has no wall_clock extractor configured"
            )
        # planner: plan per trigger leaf, recomputed as statistics
        # drift (every plan_refresh_interval deliveries)
        self._plans: Dict[int, Tuple[int, Plan]] = {}
        self.events_processed = 0
        self.searches_run = 0
        self.searches_truncated = 0
        # Hot-path accounting: plain integers (not metric objects) so
        # the inner candidate loop costs one integer add per decision;
        # publish_metrics() mirrors them into a registry on demand.
        self.forward_steps = 0
        self.candidates_scanned = 0
        self.empty_slice_conflicts = 0
        self.domain_conflicts = 0
        self.back_jumps = 0
        self.backtracks = 0
        self.matches_found = 0
        self.window_rejections = 0
        self.negation_vetoes = 0
        self.kleene_group_events = 0
        self.plans_computed = 0
        #: Per-search wall times (seconds); populated only while
        #: ``time_searches`` is on (the Monitor enables it), one entry
        #: per entry of ``searches_run``.
        self.search_timings: List[float] = []
        self.time_searches = False
        #: Span tracer; the no-op one unless installed (by the Monitor
        #: or directly).  Search spans reuse ``searches_run`` as the
        #: search ordinal, matching the search-trace ring's records.
        self.tracer: SpanTracer = NULL_TRACER
        self.search_trace: Optional[SearchTrace] = (
            SearchTrace(self.config.search_trace_size)
            if self.config.search_trace_size is not None
            else None
        )
        self._steps_left: Optional[int] = None

    # ------------------------------------------------------------------
    # Online interface
    # ------------------------------------------------------------------

    def on_event(self, event: Event) -> List[MatchReport]:
        """Process the next event; returns any matches it completed."""
        self.events_processed += 1
        self.index.observe(event)
        if event.kind.is_communication:
            self.history.bump_comm_epoch(event.trace)

        triggered: List[Tuple[int, Bindings]] = []
        etype = event.etype
        text = event.text
        trace = event.trace
        table = self._trace_name_table
        trace_name = (
            table[trace] if 0 <= trace < len(table) else str(trace)
        )
        str_trace = str(trace)
        for (
            leaf,
            exact_etype,
            exact_process,
            exact_text,
            allow_prune,
        ) in self._leaf_filters:
            # Exact-attribute prefilter: replicate the failing checks of
            # EventClass.matches without building a bindings dict.
            if exact_etype is not None and exact_etype != etype:
                continue
            if exact_text is not None and exact_text != text:
                continue
            if (
                exact_process is not None
                and exact_process != trace_name
                and exact_process != str_trace
            ):
                continue
            env = leaf.event_class.matches(event)
            if env is None:
                continue
            self.history.append(
                leaf.leaf_id,
                event,
                prune=self.config.prune_history and allow_prune,
            )
            if leaf.leaf_id in self._terminating:
                triggered.append((leaf.leaf_id, env))

        if self.negation_history is not None:
            for d, spec in enumerate(self._negations):
                if spec.event_class.could_match(event):
                    self.negation_history.append(d, event, prune=False)

        reports: List[MatchReport] = []
        for leaf_id, env in triggered:
            self.searches_run += 1
            if self.search_trace is not None:
                self.search_trace.record(
                    obs_trace.SEARCH_START,
                    self.searches_run,
                    0,
                    leaf_id,
                    event.trace,
                    detail=str(event.event_id),
                )
            if self.tracer.enabled:
                with self.tracer.span(
                    "matcher.search",
                    track="matcher",
                    args={"search": self.searches_run,
                          "leaf": leaf_id,
                          "trigger": repr(event.event_id)},
                ):
                    self._timed_search(reports, leaf_id, event, env)
            else:
                self._timed_search(reports, leaf_id, event, env)
        return reports

    def _timed_search(
        self,
        reports: List[MatchReport],
        leaf_id: int,
        event: Event,
        env: Bindings,
    ) -> None:
        if self.time_searches:
            started = time.perf_counter()
            reports.extend(self._search(leaf_id, event, env))
            self.search_timings.append(time.perf_counter() - started)
        else:
            reports.extend(self._search(leaf_id, event, env))

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """The hot-path accounting counters as a plain dict."""
        return {
            "events_processed": self.events_processed,
            "searches_run": self.searches_run,
            "searches_truncated": self.searches_truncated,
            "forward_steps": self.forward_steps,
            "candidates_scanned": self.candidates_scanned,
            "empty_slice_conflicts": self.empty_slice_conflicts,
            "domain_conflicts": self.domain_conflicts,
            "back_jumps": self.back_jumps,
            "backtracks": self.backtracks,
            "matches_found": self.matches_found,
            "window_rejections": self.window_rejections,
            "negation_vetoes": self.negation_vetoes,
            "kleene_group_events": self.kleene_group_events,
            "plans_computed": self.plans_computed,
        }

    def publish_metrics(
        self,
        registry: MetricsRegistry,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Mirror the plain-int hot-path counters (and size gauges)
        into ``registry``.  Idempotent — call it whenever a snapshot
        is about to be exported."""
        help_text = {
            "events_processed": "events fed to the matcher",
            "searches_run": "searches triggered by terminating events",
            "searches_truncated": "searches abandoned by the step budget",
            "forward_steps": "goForward level instantiations",
            "candidates_scanned": "candidate events examined",
            "empty_slice_conflicts": "satisfiable intervals with no stored candidate",
            "domain_conflicts": "restrictions that emptied a domain interval",
            "back_jumps": "goBackward conflict-directed jumps",
            "backtracks": "goBackward single-level steps",
            "matches_found": "complete matches reported",
            "window_rejections": "candidates rejected by WITHIN guards",
            "negation_vetoes": "complete assignments vetoed by a negation",
            "kleene_group_events": "events aggregated into Kleene groups",
            "plans_computed": "cost-based evaluation plans computed",
        }
        for name, value in self.counters().items():
            registry.counter(
                f"ocep_matcher_{name}_total", help_text[name], labels=labels
            ).set_total(value)
        registry.gauge(
            "ocep_subset_matches",
            "matches stored in the representative subset",
            labels=labels,
        ).set(len(self.subset))
        registry.gauge(
            "ocep_subset_covered_slots",
            "(leaf, trace) slots covered by the subset",
            labels=labels,
        ).set(len(self.subset.covered_slots))
        registry.gauge(
            "ocep_history_events",
            "events stored across all leaf histories",
            labels=labels,
        ).set(self.history.total_size())
        for leaf in self.history.histories:
            leaf_labels = dict(labels or {})
            leaf_labels["leaf"] = str(leaf.leaf_id)
            registry.gauge(
                "ocep_leaf_history_events",
                "events stored for one pattern leaf",
                labels=leaf_labels,
            ).set(leaf.size)
        if self.search_trace is not None:
            registry.gauge(
                "ocep_search_trace_records",
                "search-trace records currently buffered",
                labels=labels,
            ).set(len(self.search_trace))

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self) -> dict:
        """JSON-ready snapshot of the full cross-event state (see
        :mod:`repro.core.checkpoint`)."""
        from repro.core.checkpoint import matcher_checkpoint

        return matcher_checkpoint(self)

    def restore(self, state: dict) -> None:
        """Load a :meth:`checkpoint` into this (fresh) matcher."""
        from repro.core.checkpoint import restore_matcher

        restore_matcher(self, state)

    # ------------------------------------------------------------------
    # Backtracking search (Algorithms 1-3)
    # ------------------------------------------------------------------

    def _leaf_stats(self) -> Dict[int, LeafStats]:
        """Live leaf-history statistics for the planner."""
        return {
            history.leaf_id: LeafStats(size=history.size)
            for history in self.history.histories
        }

    def current_plan(self, trigger_leaf: int) -> Plan:
        """The evaluation plan a search at ``trigger_leaf`` would use
        right now (explainable via ``Plan.explain()``).  Legacy
        patterns and a disabled planner yield the static-heuristic
        plan."""
        if not (self._v2 and self.config.planner):
            return plan_order(self.pattern, trigger_leaf, None)
        return plan_order(self.pattern, trigger_leaf, self._leaf_stats())

    def _evaluation_order(self, trigger_leaf: int) -> Tuple[int, ...]:
        """Level order for one search.

        Output-compatibility guard: the cost-based order applies only
        to patterns carrying a v2 operator.  Legacy patterns keep the
        static heuristic order even with the planner enabled, so their
        match output (including COVERAGE-mode subset sweeps) is
        bit-identical to the pre-planner engine.
        """
        if not (self._v2 and self.config.planner):
            return self.pattern.evaluation_order(trigger_leaf)
        interval = max(self.config.plan_refresh_interval, 1)
        stamp = self.events_processed // interval
        cached = self._plans.get(trigger_leaf)
        if cached is not None and cached[0] == stamp:
            return cached[1].order
        plan = plan_order(self.pattern, trigger_leaf, self._leaf_stats())
        self._plans[trigger_leaf] = (stamp, plan)
        self.plans_computed += 1
        return plan.order

    def _search(
        self, trigger_leaf: int, trigger_event: Event, trigger_env: Bindings
    ) -> List[MatchReport]:
        order = self._evaluation_order(trigger_leaf)
        k = len(order)
        # Fail fast: a representative subset only contains events that
        # are part of a complete match, and a complete match needs one
        # event per leaf — if some leaf has never matched anything, no
        # search can succeed.
        for leaf_id in order[1:]:
            if self.history.leaf(leaf_id).size == 0:
                return []
        levels = [_Level(leaf_id) for leaf_id in order]
        levels[0].event = trigger_event
        levels[0].env = trigger_env
        levels[0].accepted_any = True

        reports: List[MatchReport] = []
        if k == 1:
            self._report(reports, trigger_leaf, trigger_event, levels)
            return reports

        budget = self.config.max_forward_steps
        self._steps_left = budget if budget is not None else None

        try:
            self._run_levels(levels, 1, k, trigger_leaf, trigger_event, reports)
        except _BudgetExhausted:
            self.searches_truncated += 1
            if self.search_trace is not None:
                self.search_trace.record(
                    obs_trace.TRUNCATED,
                    self.searches_run,
                    0,
                    trigger_leaf,
                    trigger_event.trace,
                    detail=f"budget={budget}",
                )
        return reports

    def _run_levels(
        self,
        levels: List["_Level"],
        i: int,
        k: int,
        trigger_leaf: int,
        trigger_event: Event,
        reports: List[MatchReport],
    ) -> None:
        found_any = False
        # One boolean load up front: the hot loop pays nothing when
        # tracing is off, and a span per goForward/goBackward call (not
        # per candidate scanned) when it is on.
        tracer = self.tracer if self.tracer.enabled else None
        while i >= 1:
            if tracer is not None:
                with tracer.span(
                    "matcher.goForward",
                    track="matcher",
                    args={"search": self.searches_run, "level": i,
                          "leaf": levels[i].leaf_id},
                ):
                    advanced = self._go_forward(levels, i, found_any)
            else:
                advanced = self._go_forward(levels, i, found_any)
            if advanced:
                if i == k - 1:
                    if self._accept_complete(levels):
                        self._report(reports, trigger_leaf, trigger_event, levels)
                        found_any = True
                        for level in levels[1:]:
                            level.match_since_assign = True
                        if self.config.sweep is SweepMode.FIRST:
                            break
                        if self.config.sweep is SweepMode.COVERAGE:
                            levels[i].advance_trace()
                    else:
                        # whole-assignment check failed: its cause spans
                        # levels, so disable back-jumping from here.
                        levels[i].filter_rejected = True
                else:
                    i += 1
            elif tracer is not None:
                with tracer.span(
                    "matcher.goBackward",
                    track="matcher",
                    args={"search": self.searches_run, "level": i},
                ):
                    i = self._go_backward(levels, i)
            else:
                i = self._go_backward(levels, i)

    def _report(
        self,
        reports: List[MatchReport],
        trigger_leaf: int,
        trigger_event: Event,
        levels: Sequence[_Level],
    ) -> None:
        assignment = {level.leaf_id: level.event for level in levels}
        groups: Tuple[Tuple[int, Tuple[Event, ...]], ...] = ()
        if self._kleene_leaves:
            env = levels[-1].env or {}
            groups = tuple(
                (g, self._expand_group(g, assignment, env))
                for g in self._kleene_leaves
            )
            for _, events in groups:
                self.kleene_group_events += len(events)
        new_slots = self.subset.update(assignment, groups=groups)
        if self.config.paranoid and not self.subset.check_bound():
            raise AssertionError(
                f"representative subset holds {len(self.subset)} matches, "
                f"exceeding the k*n bound "
                f"{self.subset.num_leaves * self.subset.num_traces} "
                "(paper, Section IV-B)"
            )
        self.matches_found += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "matcher.match",
                track="matcher",
                args={"search": self.searches_run,
                      "trigger": repr(trigger_event.event_id),
                      "new_slots": len(new_slots)},
            )
        if self.search_trace is not None:
            self.search_trace.record(
                obs_trace.MATCH,
                self.searches_run,
                len(levels) - 1,
                trigger_leaf,
                trigger_event.trace,
                detail=f"new_slots={len(new_slots)}",
            )
        env = levels[-1].env or {}
        reports.append(
            MatchReport(
                trigger_leaf=trigger_leaf,
                trigger_event=trigger_event,
                assignment=tuple(sorted(assignment.items())),
                bindings=tuple(sorted(env.items())),
                new_slots=new_slots,
                groups=groups,
            )
        )

    def _expand_group(
        self, g: int, assignment: Match, env: Bindings
    ) -> Tuple[Event, ...]:
        """Expand a Kleene anchor to its maximal group: every stored
        class event (Kleene histories are unpruned) that matches under
        the final bindings, is distinct from the other bound events,
        satisfies the anchor leaf's pairwise constraints against every
        other bound leaf, and respects the window guards.  Members are
        admitted in (trace, index) scan order; the member-member window
        bound is checked against already-admitted members, which keeps
        the expansion deterministic."""
        anchor = assignment[g]
        history = self.history.leaf(g)
        leaf_class = self.pattern.leaves[g].event_class
        cmat = self._cmat
        others = [
            (leaf_id, event)
            for leaf_id, event in assignment.items()
            if leaf_id != g
        ]
        self_bound = self._wsim[g][g] if self._has_windows else None
        wall_self_bound = self._wwall[g][g] if self._has_windows else None
        members: List[Event] = [anchor]
        for trace in history.traces_with_events():
            for event in history.on_trace(trace):
                if event.trace == anchor.trace and event.index == anchor.index:
                    continue
                if leaf_class.matches(event, env) is None:
                    continue
                ok = True
                for leaf_id, other in others:
                    if (
                        event.trace == other.trace
                        and event.index == other.index
                    ):
                        ok = False
                        break
                    constraint = cmat[leaf_id][g]
                    if constraint is Constraint.NONE:
                        pass
                    elif not _satisfies(constraint, other, event):
                        ok = False
                        break
                    elif constraint is Constraint.LIMITED:
                        if self.history.leaf(leaf_id).has_between(
                            other, event
                        ):
                            ok = False
                            break
                    elif constraint is Constraint.LIMITED_REV:
                        if history.has_between(event, other):
                            ok = False
                            break
                    if self._has_windows and not self._window_ok(
                        g, leaf_id, event, other
                    ):
                        ok = False
                        break
                if ok and self_bound is not None:
                    for member in members:
                        delta = event.lamport - member.lamport
                        if delta > self_bound or -delta > self_bound:
                            ok = False
                            break
                if ok and wall_self_bound is not None:
                    stamp = self._wall_clock
                    for member in members:
                        delta = stamp(event) - stamp(member)
                        if delta > wall_self_bound or -delta > wall_self_bound:
                            ok = False
                            break
                if ok:
                    members.append(event)
        members.sort(key=lambda e: (e.trace, e.index))
        return tuple(members)

    def _window_ok(
        self, leaf_a: int, leaf_b: int, event_a: Event, event_b: Event
    ) -> bool:
        bound = self._wsim[leaf_a][leaf_b]
        if bound is not None:
            delta = event_a.lamport - event_b.lamport
            if delta > bound or -delta > bound:
                return False
        bound = self._wwall[leaf_a][leaf_b]
        if bound is not None:
            stamp = self._wall_clock
            delta = stamp(event_a) - stamp(event_b)
            if delta > bound or -delta > bound:
                return False
        return True

    # -- goForward ------------------------------------------------------

    def _go_forward(
        self, levels: List[_Level], i: int, found_any: bool
    ) -> bool:
        level = levels[i]
        leaf_history = self.history.leaf(level.leaf_id)
        coverage = self.config.sweep is SweepMode.COVERAGE

        leaf_class = self.pattern.leaves[level.leaf_id].event_class
        env_prev = levels[i - 1].env
        if self.config.indexed_histories:
            pinned = leaf_class.pinned_trace(env_prev)
            required_text = leaf_class.required_text(env_prev)
        else:
            pinned = None
            required_text = None

        # A PARTNER constraint against an assigned receive (or unary)
        # event pins the candidate to one trace (Figure 4): every other
        # trace fails that restriction outright, independently of the
        # levels above it, so sweeping them one by one only manufactures
        # identical unbounded conflicts.  Jump the sweep straight to the
        # partner's trace and record a single representative conflict
        # per skipped region (same back-jump target, no narrower hull).
        partner_level = None
        partner_trace = -1
        if pinned is None:
            cmat = self._cmat
            leaf_id = level.leaf_id
            for j in range(i):
                if cmat[levels[j].leaf_id][leaf_id] is Constraint.PARTNER:
                    assigned = levels[j].event
                    if assigned.kind is not EventKind.SEND:
                        partner = assigned.partner
                        partner_level = j
                        partner_trace = -1 if partner is None else partner.trace
                        break

        next_nonempty = leaf_history.next_nonempty
        num_traces = self.num_traces
        cover_check = (
            self.subset.is_covered if coverage and found_any else None
        )
        while True:
            if self._steps_left is not None:
                self._steps_left -= 1
                if self._steps_left < 0:
                    raise _BudgetExhausted()
            if level.candidates is None:
                if pinned is not None:
                    if pinned < 0 or level.trace > pinned:
                        return False
                    if level.trace < pinned:
                        level.trace = pinned
                elif partner_level is not None:
                    if partner_trace < 0 or level.trace > partner_trace:
                        if (
                            self.config.backjump
                            and next_nonempty(level.trace) is not None
                        ):
                            level.conflicts.append(
                                _Conflict(level=partner_level, lo=None, hi=None)
                            )
                        return False
                    if level.trace < partner_trace:
                        if self.config.backjump:
                            nxt = next_nonempty(level.trace)
                            if nxt is not None and nxt < partner_trace:
                                level.conflicts.append(
                                    _Conflict(
                                        level=partner_level, lo=None, hi=None
                                    )
                                )
                        level.trace = partner_trace
                else:
                    # Jump the sweep over traces this leaf never
                    # matched on: each would just fail the on_trace
                    # check below and advance.
                    nxt = next_nonempty(level.trace)
                    if nxt is None:
                        return False
                    level.trace = nxt
                if level.trace >= num_traces:
                    return False
                trace = level.trace
                if cover_check is not None and cover_check(level.leaf_id, trace):
                    level.advance_trace()
                    continue
                if not leaf_history.on_trace(trace):
                    level.advance_trace()
                    continue
                domain = self._compute_domain(levels, i, trace)
                if domain is None:
                    level.advance_trace()
                    continue
                lo, hi, lo_level, hi_level = domain
                if required_text is not None:
                    level.candidates = leaf_history.slice_by_text(
                        trace, lo, hi, required_text
                    )
                else:
                    level.candidates = leaf_history.slice(trace, lo, hi)
                level.pos = len(level.candidates) - 1  # newest first
                if not level.candidates:
                    # The interval is satisfiable but holds no stored
                    # candidate — the Figure 5 conflict proper.  Record
                    # a resolution for every binding contributor so the
                    # back-jump hull never excludes a real resolver.
                    self.empty_slice_conflicts += 1
                    if self.search_trace is not None:
                        self.search_trace.record(
                            obs_trace.EMPTY_SLICE,
                            self.searches_run,
                            i,
                            level.leaf_id,
                            trace,
                            detail=f"[{lo}, {hi}]",
                        )
                    if self.config.backjump:
                        self._record_slice_conflicts(
                            levels, level, leaf_history, trace,
                            lo, hi, lo_level, hi_level,
                        )
                    level.advance_trace()
                    continue

            while level.pos >= 0:
                if self._steps_left is not None:
                    self._steps_left -= 1
                    if self._steps_left < 0:
                        raise _BudgetExhausted()
                self.candidates_scanned += 1
                candidate = level.candidates[level.pos]
                level.pos -= 1
                if level.extra_lo is not None and candidate.index < level.extra_lo:
                    continue
                if level.extra_hi is not None and candidate.index > level.extra_hi:
                    continue
                env = self._acceptable(levels, i, candidate)
                if env is None:
                    if self.search_trace is not None:
                        self.search_trace.record(
                            obs_trace.CANDIDATE,
                            self.searches_run,
                            i,
                            level.leaf_id,
                            candidate.trace,
                            detail=f"rejected {candidate.event_id}",
                        )
                    continue
                level.event = candidate
                level.env = env
                level.accepted_any = True
                level.match_since_assign = False
                self.forward_steps += 1
                if self.search_trace is not None:
                    self.search_trace.record(
                        obs_trace.FORWARD,
                        self.searches_run,
                        i,
                        level.leaf_id,
                        candidate.trace,
                        detail=f"accepted {candidate.event_id}",
                    )
                return True

            level.advance_trace()

    def _compute_domain(
        self, levels: List[_Level], i: int, trace: int
    ) -> Optional[Tuple[int, Optional[int], Optional[int], Optional[int]]]:
        """Intersect the Figure-4 restrictions of all instantiated
        events.  On interval emptiness, record the conflict (with
        Figure-5 resolution bounds) and return None; otherwise return
        ``(lo, hi, lo_level, hi_level)`` — the interval bounds together
        with the levels whose restrictions set its binding lower and
        upper bounds (None = unbounded side / no binding level).

        The interval arithmetic of :func:`repro.core.domain.restrict`
        is inlined on plain ints, and so are the GP/LS lookups of
        :class:`~repro.core.gpls.CausalIndex` (against the assigned
        events' cached component tuples): this is the innermost
        per-trace loop of the search, and the per-restriction call
        overhead dominated its cost.
        """
        level = levels[i]
        lo = 1
        hi: Optional[int] = None
        lo_level: Optional[int] = None
        hi_level: Optional[int] = None
        # each restriction costs budget too, so the per-trigger bound
        # stays uniform across pattern sizes (a domain computation is
        # O(pattern length))
        if self._steps_left is not None:
            self._steps_left -= i
            if self._steps_left < 0:
                raise _BudgetExhausted()
        index = self.index
        ivalues = index._values[trace]
        ipositions = index._positions[trace]
        trace_len = index._lengths[trace]
        cmat = self._cmat
        leaf_id = level.leaf_id
        restrict_domains = self.config.restrict_domains
        for j in range(i):
            constraint = cmat[levels[j].leaf_id][leaf_id]
            if constraint is Constraint.NONE:
                continue
            if not restrict_domains and constraint is not Constraint.PARTNER:
                # Chronological-backtracking ablation: scan everything,
                # verify causality per candidate instead.
                continue
            assigned = levels[j].event
            atrace = assigned.trace
            aindex = assigned.index
            # Bounds contributed by this constraint (nhi None =
            # unbounded above), or an outright failure.
            failed = False
            nlo = 1
            nhi: Optional[int] = None
            if constraint in (Constraint.BEFORE, Constraint.LIMITED):
                # assigned -> candidate: candidate at or past LS
                if atrace == trace:
                    if aindex < trace_len:
                        nlo = aindex + 1
                    else:
                        failed = True
                else:
                    col = ivalues[atrace]
                    pos = _bisect_left(col, aindex)
                    if pos < len(col):
                        nlo = ipositions[atrace][pos]
                    else:
                        failed = True
            elif constraint in (Constraint.AFTER, Constraint.LIMITED_REV):
                # candidate -> assigned: candidate at or before GP
                nhi = (
                    aindex - 1 if atrace == trace
                    else assigned.clock.components[trace]
                )
            elif constraint is Constraint.NOT_AFTER:
                # not (candidate -> assigned): candidate strictly past GP
                nlo = (
                    aindex if atrace == trace
                    else assigned.clock.components[trace] + 1
                )
            elif constraint is Constraint.NOT_BEFORE:
                # not (assigned -> candidate): candidate strictly before LS
                if atrace == trace:
                    if aindex < trace_len:
                        nhi = aindex
                else:
                    col = ivalues[atrace]
                    pos = _bisect_left(col, aindex)
                    if pos < len(col):
                        nhi = ipositions[atrace][pos] - 1
            elif constraint is Constraint.CONCURRENT:
                if atrace == trace:
                    nlo = aindex
                    if aindex < trace_len:
                        nhi = aindex
                else:
                    nlo = assigned.clock.components[trace] + 1
                    col = ivalues[atrace]
                    pos = _bisect_left(col, aindex)
                    if pos < len(col):
                        nhi = ipositions[atrace][pos] - 1
            elif constraint is Constraint.PARTNER:
                partner = assigned.partner
                if assigned.kind is EventKind.RECEIVE and partner is not None:
                    if partner.trace != trace:
                        failed = True
                    else:
                        nlo = nhi = partner.index
                elif assigned.kind is EventKind.SEND:
                    # The matching receive causally follows the send;
                    # identity is checked per candidate by the matcher.
                    ls = index.ls(assigned, trace)
                    if ls is None:
                        failed = True
                    else:
                        nlo = ls
                else:
                    failed = True  # a unary event has no partner
            else:
                raise ValueError(f"unhandled constraint {constraint!r}")

            if not failed:
                if nlo > lo:
                    lo = nlo
                    lo_level = j
                if nhi is not None and (hi is None or nhi < hi):
                    hi = nhi
                    hi_level = j
                if hi is not None and lo > hi:
                    failed = True
            if failed:
                self.domain_conflicts += 1
                if self.search_trace is not None:
                    self.search_trace.record(
                        obs_trace.DOMAIN_CONFLICT,
                        self.searches_run,
                        i,
                        leaf_id,
                        trace,
                        detail=f"{constraint.value} vs level {j}",
                    )
                if self.config.backjump:
                    level.conflicts.append(
                        self._make_conflict(j, constraint, assigned, leaf_id, trace)
                    )
                return None
        return lo, hi, lo_level, hi_level

    def _record_slice_conflicts(
        self,
        levels: List[_Level],
        level: _Level,
        leaf_history: LeafHistory,
        trace: int,
        interval_lo: int,
        interval_hi: Optional[int],
        lo_level: Optional[int],
        hi_level: Optional[int],
    ) -> None:
        """Figure 5 for an empty candidate slice: every stored event on
        ``trace`` lies outside ``[interval_lo, interval_hi]``, so a
        different choice at a binding contributor could admit one.  For
        the lower bound the nearest admissible candidate is the latest
        event below it; for the upper bound, the earliest event above
        it."""
        if lo_level is not None and lo_level >= 1:
            below = leaf_history.slice(trace, 1, interval_lo - 1)
            if below:
                target = below[-1]
                assigned = levels[lo_level].event
                constraint = self._cmat[levels[lo_level].leaf_id][level.leaf_id]
                lo, hi = self._admit_bounds_lower(constraint, assigned, target)
                level.conflicts.append(_Conflict(level=lo_level, lo=lo, hi=hi))

        if hi_level is not None and hi_level >= 1 and interval_hi is not None:
            above = leaf_history.slice(trace, interval_hi + 1, None)
            if above:
                target = above[0]
                assigned = levels[hi_level].event
                constraint = self._cmat[levels[hi_level].leaf_id][level.leaf_id]
                lo, hi = self._admit_bounds_upper(constraint, assigned, target)
                level.conflicts.append(_Conflict(level=hi_level, lo=lo, hi=hi))

    def _admit_bounds_lower(
        self, constraint: Constraint, assigned: Event, target: Event
    ) -> Tuple[Optional[int], Optional[int]]:
        """Positions on ``assigned``'s trace where a replacement's
        lower-bound restriction would admit ``target``."""
        own = assigned.trace
        if constraint in (Constraint.BEFORE, Constraint.LIMITED, Constraint.PARTNER):
            # need replacement -> target
            hi = self.index.gp(target, own)
            return (None, hi) if hi > 0 else (None, None)
        if constraint in (Constraint.NOT_AFTER, Constraint.CONCURRENT):
            # need not (target -> replacement)
            ls = self.index.ls(target, own)
            return (None, ls - 1) if ls is not None else (None, None)
        return (None, None)

    def _admit_bounds_upper(
        self, constraint: Constraint, assigned: Event, target: Event
    ) -> Tuple[Optional[int], Optional[int]]:
        """Positions on ``assigned``'s trace where a replacement's
        upper-bound restriction would admit ``target``."""
        own = assigned.trace
        if constraint in (Constraint.AFTER, Constraint.LIMITED_REV, Constraint.PARTNER):
            # need target -> replacement
            lo = self.index.ls(target, own)
            return (lo, None) if lo is not None else (None, None)
        if constraint in (Constraint.NOT_BEFORE, Constraint.CONCURRENT):
            # need not (replacement -> target)
            return (self.index.gp(target, own) + 1, None)
        return (None, None)

    def _make_conflict(
        self,
        j: int,
        constraint: Constraint,
        assigned: Event,
        leaf_id: int,
        trace: int,
    ) -> _LazyConflict:
        # Bounds resolve lazily (see _LazyConflict): domain conflicts
        # vastly outnumber the back-jumps that read them.
        return _LazyConflict(j, self, constraint, assigned, leaf_id, trace)

    def _resolution_bounds(
        self,
        constraint: Constraint,
        assigned: Event,
        leaf_history: LeafHistory,
        trace: int,
    ) -> Tuple[Optional[int], Optional[int]]:
        """Figure 5: positions on ``assigned``'s own trace within which
        a replacement could satisfy ``constraint`` against *some*
        stored candidate on ``trace``.  The bounds are the hull of the
        per-candidate resolutions, hence sound (never exclude a
        workable replacement) while the instantiation prefix below the
        conflicting level is unchanged."""
        own = assigned.trace
        earliest = leaf_history.earliest_on(trace)
        latest = leaf_history.latest_on(trace)
        if earliest is None or latest is None:
            return (None, None)

        if constraint in (Constraint.BEFORE, Constraint.LIMITED):
            # replacement -> some candidate; easiest against the latest
            hi = self.index.gp(latest, own)
            return (None, hi) if hi > 0 else (None, None)
        if constraint in (Constraint.AFTER, Constraint.LIMITED_REV):
            lo = self.index.ls(earliest, own)
            return (lo, None) if lo is not None else (None, None)
        if constraint is Constraint.NOT_AFTER:
            ls = self.index.ls(latest, own)
            return (None, ls - 1) if ls is not None else (None, None)
        if constraint is Constraint.NOT_BEFORE:
            return (self.index.gp(earliest, own) + 1, None)
        if constraint is Constraint.CONCURRENT:
            lo = self.index.gp(earliest, own) + 1
            ls = self.index.ls(latest, own)
            hi = ls - 1 if ls is not None else None
            return (lo, hi)
        return (None, None)  # PARTNER: no timestamp form, plain jump

    # -- candidate acceptance --------------------------------------------

    def _acceptable(
        self, levels: List[_Level], i: int, candidate: Event
    ) -> Optional[Bindings]:
        """Non-interval checks; returns the extended environment on
        success and flags the rejection kind for back-jump safety."""
        level = levels[i]

        # Distinctness by event id: within one computation (trace,
        # index) is the event's identity, so this equals full-field
        # equality without comparing clocks.
        ctrace, cindex = candidate.trace, candidate.index
        for j in range(i):
            assigned = levels[j].event
            if assigned.trace == ctrace and assigned.index == cindex:
                level.filter_rejected = True
                return None

        env = self.pattern.leaves[level.leaf_id].event_class.matches(
            candidate, levels[i - 1].env
        )
        if env is None:
            level.filter_rejected = True
            return None

        # Window guards: timestamp distance to every already-bound
        # leaf sharing a WITHIN with this one.  A window rejection
        # depends on the candidate itself, so it must disable
        # back-jumping from this level (filter_rejected), like any
        # other non-interval filter.
        if self._has_windows:
            lid = level.leaf_id
            wsim_row = self._wsim[lid]
            wwall_row = self._wwall[lid]
            for j in range(i):
                other_leaf = levels[j].leaf_id
                bound = wsim_row[other_leaf]
                if bound is not None:
                    delta = candidate.lamport - levels[j].event.lamport
                    if delta > bound or -delta > bound:
                        self.window_rejections += 1
                        level.filter_rejected = True
                        return None
                bound = wwall_row[other_leaf]
                if bound is not None:
                    stamp = self._wall_clock
                    delta = stamp(candidate) - stamp(levels[j].event)
                    if delta > bound or -delta > bound:
                        self.window_rejections += 1
                        level.filter_rejected = True
                        return None

        # A gapped stream (complete_stream=False after actual sheds)
        # can leave least-successor columns under-informed, which only
        # ever *widens* the GP/LS domains — so re-verifying each
        # candidate against its vector clock restores exactness.  A
        # pure trace-suffix loss records no gap and needs no
        # verification: no delivered event can causally follow an
        # undelivered one whose LS entry is missing.
        gapped = self.index.gaps > 0
        verify_all = (
            self.config.paranoid
            or not self.config.restrict_domains
            or gapped
        )
        for j in range(i):
            assigned = levels[j].event
            constraint = self._cmat[levels[j].leaf_id][level.leaf_id]
            if constraint is Constraint.NONE:
                continue
            if constraint is Constraint.PARTNER:
                if not candidate.is_partner_of(assigned):
                    level.filter_rejected = True
                    return None
            elif constraint is Constraint.LIMITED:
                # assigned ~> candidate: no same-class event between
                if self.history.leaf(levels[j].leaf_id).has_between(
                    assigned, candidate
                ):
                    level.filter_rejected = True
                    return None
            elif constraint is Constraint.LIMITED_REV:
                # candidate ~> assigned
                if self.history.leaf(level.leaf_id).has_between(
                    candidate, assigned
                ):
                    level.filter_rejected = True
                    return None
            if verify_all and not _satisfies(constraint, assigned, candidate):
                if self.config.restrict_domains and not gapped:
                    raise AssertionError(
                        "exact domain restriction admitted a causally "
                        f"invalid candidate {candidate.event_id} "
                        f"({constraint.value} vs {assigned.event_id})"
                    )
                level.filter_rejected = True
                return None
        return env

    def _accept_complete(self, levels: Sequence[_Level]) -> bool:
        """Whole-assignment checks: compound-precedence existentials,
        entanglement (equations (1) and (2)), and negation vetoes."""
        if (
            not self.pattern.exist_checks
            and not self.pattern.entangle_checks
            and not self._negations
        ):
            return True
        assignment = {level.leaf_id: level.event for level in levels}
        if self._negations:
            env = levels[-1].env or {}
            for d, spec in enumerate(self._negations):
                if self._negation_witness(
                    d,
                    spec,
                    assignment[spec.left_leaf],
                    assignment[spec.right_leaf],
                    env,
                ):
                    self.negation_vetoes += 1
                    return False
        for check in self.pattern.exist_checks:
            if not any(
                assignment[a].happens_before(assignment[b])
                for a in check.left_leaves
                for b in check.right_leaves
            ):
                return False
        for check in self.pattern.entangle_checks:
            forward = any(
                assignment[a].happens_before(assignment[b])
                for a in check.left_leaves
                for b in check.right_leaves
            )
            backward = any(
                assignment[b].happens_before(assignment[a])
                for a in check.left_leaves
                for b in check.right_leaves
            )
            if not (forward and backward):
                return False
        return True

    def _negation_witness(
        self, d: int, spec, left: Event, right: Event, env: Bindings
    ) -> bool:
        """True when some event matching the absent class (under the
        final bindings) lies causally strictly between the two anchors.

        Causal delivery order makes this check online-sound: any
        witness happens-before the right anchor, so it was delivered —
        and recorded in the negation history — before any search that
        binds that anchor; and no future event can ever fall causally
        between two already-delivered events.
        """
        history = self.negation_history.leaf(d)
        if not self._negation_has_vars[d]:
            # class fully determined: the history holds exactly the
            # class events, so the range-prefiltered check suffices
            return history.has_between(left, right)
        left_lamport = left.lamport
        right_lamport = right.lamport
        matches = spec.event_class.matches
        for trace in history.traces_with_events():
            for event in history.on_trace(trace):
                # lamport order is a necessary condition for
                # left -> event -> right: cheap prefilter
                if not left_lamport < event.lamport < right_lamport:
                    continue
                if matches(event, env) is None:
                    continue
                if left.happens_before(event) and event.happens_before(
                    right
                ):
                    return True
        return False

    # -- goBackward -------------------------------------------------------

    def _go_backward(self, levels: List[_Level], i: int) -> int:
        level = levels[i]
        can_jump = (
            self.config.backjump
            and not level.accepted_any
            and not level.filter_rejected
            and level.conflicts
        )
        if can_jump:
            target = max(c.level for c in level.conflicts)
            if target >= 1:
                lo, hi = _bounds_hull(
                    c for c in level.conflicts if c.level == target
                )
                level.reset()
                for q in range(target + 1, i):
                    levels[q].reset()
                jump_level = levels[target]
                if lo is not None and (
                    jump_level.extra_lo is None or lo > jump_level.extra_lo
                ):
                    jump_level.extra_lo = lo
                if hi is not None and (
                    jump_level.extra_hi is None or hi < jump_level.extra_hi
                ):
                    jump_level.extra_hi = hi
                self.back_jumps += 1
                if self.search_trace is not None:
                    self.search_trace.record(
                        obs_trace.BACKJUMP,
                        self.searches_run,
                        i,
                        level.leaf_id,
                        detail=f"to level {target}, bounds [{lo}, {hi}]",
                    )
                return target

        level.reset()
        target = i - 1
        if (
            target >= 1
            and self.config.sweep is SweepMode.COVERAGE
            and levels[target].match_since_assign
        ):
            levels[target].advance_trace()
        self.backtracks += 1
        if self.search_trace is not None:
            self.search_trace.record(
                obs_trace.BACKTRACK,
                self.searches_run,
                i,
                level.leaf_id,
                detail=f"to level {target}",
            )
        return target


def _bounds_hull(conflicts) -> Tuple[Optional[int], Optional[int]]:
    """Union hull of resolution bounds: the weakest (soundest) bound
    covering every recorded way of resolving the target level."""
    lo: Optional[int] = None
    hi: Optional[int] = None
    first = True
    for conflict in conflicts:
        if first:
            lo, hi = conflict.lo, conflict.hi
            first = False
            continue
        if conflict.lo is None or (lo is not None and conflict.lo < lo):
            lo = conflict.lo
        if conflict.hi is None or (hi is not None and conflict.hi > hi):
            hi = conflict.hi
    return lo, hi


def _satisfies(constraint: Constraint, assigned: Event, candidate: Event) -> bool:
    """Direct causal verification of a pairwise constraint (used by the
    chronological ablation and paranoid mode)."""
    if constraint in (Constraint.BEFORE, Constraint.LIMITED):
        return assigned.happens_before(candidate)
    if constraint in (Constraint.AFTER, Constraint.LIMITED_REV):
        return candidate.happens_before(assigned)
    if constraint is Constraint.NOT_AFTER:
        return not candidate.happens_before(assigned)
    if constraint is Constraint.NOT_BEFORE:
        return not assigned.happens_before(candidate)
    if constraint is Constraint.CONCURRENT:
        return candidate.concurrent_with(assigned)
    if constraint is Constraint.PARTNER:
        return candidate.is_partner_of(assigned)
    return True
