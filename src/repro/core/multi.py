"""Monitoring several patterns over one event stream.

A deployment typically watches many safety conditions at once (a
deadlock pattern, a race pattern, an application-specific ordering
pattern...).  :class:`MultiMonitor` multiplexes one POET stream into
per-pattern :class:`~repro.core.monitor.Monitor` instances, sharing
the delivery path and giving named access to each pattern's reports,
subset, and statistics.

    >>> multi = MultiMonitor(trace_names)
    >>> multi.watch("races", race_pattern)
    >>> multi.watch("ordering", ordering_pattern)
    >>> server.connect(multi)
    >>> kernel.run()
    >>> multi["races"].reports
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Sequence, Tuple

from repro.core.config import MatcherConfig
from repro.core.matcher import MatchReport
from repro.core.monitor import MatchCallback, Monitor, MonitorStats
from repro.events.event import Event
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.spans import NULL_TRACER, SpanTracer
from repro.poet.client import POETClient

#: Callback receiving (pattern name, report).
NamedMatchCallback = Callable[[str, MatchReport], None]


class MultiMonitor(POETClient):
    """A POET client fanning one stream into several pattern monitors.

    Parameters
    ----------
    trace_names:
        Trace names of the monitored computation (shared by every
        pattern).
    on_match:
        Optional callback invoked as ``on_match(name, report)`` for
        every match of every watched pattern.
    registry:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry`;
        each watched pattern's monitor publishes into it under a
        ``pattern=<name>`` label, so one scrape covers the whole
        deployment.  Defaults to the no-op registry.
    tracer:
        Optional shared :class:`~repro.obs.spans.SpanTracer`, installed
        on every watched pattern's matcher so each shard's searches
        appear on its own track.  Defaults to the no-op tracer.
    """

    def __init__(
        self,
        trace_names: Sequence[str],
        on_match: Optional[NamedMatchCallback] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
    ):
        self.trace_names = tuple(trace_names)
        self._monitors: Dict[str, Monitor] = {}
        self._on_match = on_match
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.events_seen = 0
        #: Failure isolation: name -> the exception its monitor raised.
        #: A quarantined monitor stops receiving events but keeps its
        #: state readable for post-mortem (reports, subset, stats).
        self._quarantined: Dict[str, BaseException] = {}
        self.quarantined_total = 0
        self._quarantine_counter = self.registry.counter(
            "ocep_multi_quarantined_total",
            "pattern monitors detached after raising in on_event",
        )

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    def watch(
        self,
        name: str,
        pattern_source: str,
        config: Optional[MatcherConfig] = None,
        record_timings: bool = True,
        on_match: Optional[MatchCallback] = None,
    ) -> Monitor:
        """Add a named pattern; returns its monitor.

        ``on_match`` attaches a per-shard callback (receiving just the
        report) in addition to the dispatcher-level named callback.
        Patterns added after events have flowed miss the prefix, like
        any late POET client; add every pattern before running.
        """
        if name in self._monitors:
            raise ValueError(f"already watching a pattern named {name!r}")
        callback = None
        if self._on_match is not None or on_match is not None:
            outer = self._on_match
            shard = on_match

            def callback(report: MatchReport, _name: str = name) -> None:
                if outer is not None:
                    outer(_name, report)
                if shard is not None:
                    shard(report)

        monitor = Monitor.from_source(
            pattern_source,
            self.trace_names,
            config=config,
            on_match=callback,
            record_timings=record_timings,
            registry=self.registry,
            metric_labels={"pattern": name},
            tracer=self.tracer,
        )
        self._monitors[name] = monitor
        return monitor

    # ------------------------------------------------------------------
    # POET client interface
    # ------------------------------------------------------------------

    def on_event(self, event: Event) -> None:
        """Fan one event into every healthy pattern monitor.

        Failure isolation: a monitor raising here is *quarantined* —
        detached from the stream, its exception recorded — instead of
        taking down the other patterns (or, upstream, the POET server's
        fan-out).  Quarantines are counted and surfaced via
        :attr:`quarantined` and :meth:`stats`.
        """
        self.events_seen += 1
        for name, monitor in self._monitors.items():
            if name in self._quarantined:
                continue
            try:
                monitor.on_event(event)
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                self._quarantined[name] = exc
                self.quarantined_total += 1
                self._quarantine_counter.inc()

    def on_batch(self, events: Sequence[Event]) -> None:
        """Fan a contiguous delivery slice into every healthy monitor.

        Quarantine semantics match :meth:`on_event`, at batch
        granularity: a shard raising mid-batch is detached (its state
        reflects the prefix it processed) while the other shards still
        receive the full batch.
        """
        if not events:
            return
        self.events_seen += len(events)
        for name, monitor in self._monitors.items():
            if name in self._quarantined:
                continue
            try:
                monitor.on_batch(events)
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                self._quarantined[name] = exc
                self.quarantined_total += 1
                self._quarantine_counter.inc()

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __getitem__(self, name: str) -> Monitor:
        return self._monitors[name]

    def __contains__(self, name: str) -> bool:
        return name in self._monitors

    def __iter__(self) -> Iterator[Tuple[str, Monitor]]:
        return iter(self._monitors.items())

    def __len__(self) -> int:
        return len(self._monitors)

    @property
    def quarantined(self) -> Dict[str, BaseException]:
        """Quarantined pattern names mapped to the exception raised."""
        return dict(self._quarantined)

    def is_quarantined(self, name: str) -> bool:
        return name in self._quarantined

    def stats(self) -> Dict[str, MonitorStats]:
        """Per-pattern statistics, keyed by pattern name (quarantined
        monitors included — their counters froze at the failure)."""
        return {name: mon.stats() for name, mon in self._monitors.items()}

    def quarantine_report(self) -> Dict[str, str]:
        """Quarantined pattern names mapped to ``repr`` of the error
        (JSON-ready companion to :meth:`stats`)."""
        return {name: repr(exc) for name, exc in self._quarantined.items()}

    def total_reports(self) -> int:
        """Matches reported across all patterns."""
        return sum(len(mon.reports) for mon in self._monitors.values())

    def publish_metrics(self) -> MetricsRegistry:
        """Publish every watched pattern's matcher counters into the
        shared registry (labelled ``pattern=<name>``); returns it."""
        for monitor in self._monitors.values():
            monitor.publish_metrics()
        return self.registry
