"""Matcher configuration.

The flags here exist for two reasons: they parameterise the ablation
benchmarks (every optimisation the paper describes can be switched off
to quantify its effect), and they let the test suite run the matcher in
an exhaustive mode comparable against the brute-force oracle.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Optional


class SweepMode(enum.Enum):
    """How far a triggered search explores beyond the first match.

    COVERAGE (the paper's behaviour):
        After the first complete match of a trigger, the search keeps
        sweeping traces to cover representative-subset slots, skipping
        traces whose ``(pattern event, trace)`` slot is already
        covered.  Guarantees at least one reported match per trigger
        that participates in any match, and drives subset coverage.
    FIRST:
        Stop at the first complete match — pure violation detection
        with no subset coverage sweep.
    EXHAUSTIVE:
        Enumerate every match involving the trigger event (used by the
        oracle-comparison tests; unbounded output in general).
    """

    COVERAGE = "coverage"
    FIRST = "first"
    EXHAUSTIVE = "exhaustive"


@dataclasses.dataclass(frozen=True)
class MatcherConfig:
    """Tunable behaviour of :class:`~repro.core.matcher.OCEPMatcher`.

    Attributes
    ----------
    sweep:
        Search extent per trigger; see :class:`SweepMode`.
    prune_history:
        Apply the O(1) history-pruning rule (Section V-D): a newly
        matched event replaces the previous match of the same leaf on
        the same trace when no send/receive event — and no other
        pattern-relevant event — occurred on that trace in between
        (the two are then causally interchangeable for every remote
        constraint).
    restrict_domains:
        Use GP/LS vector-timestamp bounds to restrict candidate
        domains (Figure 4).  Off = chronological backtracking that
        scans full per-trace histories (the paper's strawman).
    backjump:
        Use the recorded-conflict ``bt`` table for timestamp-guided
        back-jumping (Figure 5).  Off = plain one-level backtracking.
    paranoid:
        Re-verify every pairwise constraint on candidate acceptance
        (defence in depth for tests; redundant with exact domains).
    max_forward_steps:
        Per-trigger budget on ``goForward`` iterations, bounding the
        matcher's per-event latency.  The search is exponential in the
        pattern length in the worst case (paper, Section V-C1); an
        online monitor must bound it, so a search that exhausts the
        budget is abandoned and counted in
        ``OCEPMatcher.searches_truncated``.  ``None`` disables the
        budget (used by the oracle-equivalence tests).  Matches found
        before the budget ran out are still reported; newest-first
        candidate order finds genuine violations early, so truncation
        in practice cuts only hopeless search tails.
    indexed_histories:
        Use the search hints this reproduction adds beyond the paper:
        skip the trace sweep when a leaf's process attribute is exact
        or already bound (it can match on one trace only), and serve
        candidates from a per-trace text index when the text attribute
        is resolved.  Pure optimisations — results are identical either
        way (ablated in the benchmark suite).
    search_trace_size:
        When set, the matcher records its individual goForward /
        goBackward decisions (candidate scanned, domain emptied,
        back-jump vs. plain backtrack, budget truncation) into a
        bounded ring buffer of this capacity, exposed as
        ``OCEPMatcher.search_trace`` — see :mod:`repro.obs.trace`.
        ``None`` (default) disables recording; the hot path then pays
        one pointer comparison per decision point.
    planner:
        Use the cost-based constraint planner
        (:mod:`repro.patterns.plan`) to order search levels from live
        leaf-history statistics.  Only applied to patterns that carry a
        v2 operator (Kleene closure, disjunction, negation, window) —
        legacy patterns always keep the static heuristic order, so
        their output is bit-identical with the planner on or off.
        Plans are recomputed every ``plan_refresh_interval`` deliveries
        as the statistics drift; before any statistics exist the
        planner falls back to the static order.
    plan_refresh_interval:
        Deliveries between plan refreshes when ``planner`` is on.
    wall_clock:
        Extractor mapping an event to a wall-clock stamp, required to
        evaluate ``WITHIN n wall`` window guards (the logical ``sim``
        domain needs no configuration).  Watching a wall-domain
        pattern without an extractor is a configuration error.
    complete_stream:
        ``True`` (default) promises the matcher sees *every* event of
        the computation, so per-trace indices arrive contiguously and
        the GP/LS domains are exact.  ``False`` tolerates holes in the
        delivered stream (load shedding, sampled delivery): the causal
        index accepts forward index jumps, and once a gap has actually
        been observed every accepted candidate is re-verified against
        its vector clock — missing least-successor entries can only
        *widen* a domain, so verification restores soundness while
        the lost events cost recall, never false matches (except via
        ``~>`` immediacy, whose in-between witness may itself have
        been shed — which is why the shedding harness measures
        precision too).
    """

    sweep: SweepMode = SweepMode.COVERAGE
    prune_history: bool = True
    restrict_domains: bool = True
    backjump: bool = True
    paranoid: bool = False
    max_forward_steps: Optional[int] = 100_000
    indexed_histories: bool = True
    search_trace_size: Optional[int] = None
    complete_stream: bool = True
    planner: bool = True
    plan_refresh_interval: int = 256
    wall_clock: Optional[Callable[..., float]] = None
