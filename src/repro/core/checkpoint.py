"""Monitor checkpoint and recovery.

An online monitor is expected to survive restarts mid-stream (cf.
Dolev et al., *Efficient On-line Detection of Temporal Patterns*): a
crashed client resumes from its last snapshot plus a dumpfile replay of
the stream suffix, and must converge to the identical final state.

The matcher's entire cross-event state is exactly four structures —
the per-trace delivered counts (readable off the
:class:`~repro.core.gpls.CausalIndex` trace lengths), the GP/LS index,
the leaf histories (with their pruning bookkeeping), and the
representative subset — everything else is recomputed per trigger.
Serializing those four therefore makes recovery *exact*: a restored
monitor fed the stream suffix takes the same search decisions as an
uninterrupted one, so the final representative subsets are equal, not
merely equivalent.  The chaos matrix (``ocep chaos``, crash plan)
checks this end to end, including a JSON round-trip of the snapshot.

The checkpoint is a JSON-ready dict; :func:`save_checkpoint` /
:func:`load_checkpoint` handle file persistence.  Event payloads reuse
the POET dump record layout (:meth:`repro.events.event.Event.to_record`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.matcher import OCEPMatcher

CHECKPOINT_FORMAT = "ocep-checkpoint-v1"

PathLike = Union[str, Path]

#: The matcher's plain-int hot-path counters captured in a checkpoint.
_COUNTER_FIELDS = (
    "events_processed",
    "searches_run",
    "searches_truncated",
    "forward_steps",
    "candidates_scanned",
    "empty_slice_conflicts",
    "domain_conflicts",
    "back_jumps",
    "backtracks",
    "matches_found",
    "window_rejections",
    "negation_vetoes",
    "kleene_group_events",
    "plans_computed",
)


class CheckpointError(ValueError):
    """A checkpoint is malformed or does not fit the restoring monitor."""


def matcher_checkpoint(matcher: "OCEPMatcher") -> dict:
    """Snapshot a matcher's complete cross-event state (JSON-ready)."""
    return {
        "format": CHECKPOINT_FORMAT,
        "num_traces": matcher.num_traces,
        "num_leaves": matcher.pattern.num_leaves,
        "delivered": [
            matcher.index.trace_length(t) for t in range(matcher.num_traces)
        ],
        "counters": {name: getattr(matcher, name) for name in _COUNTER_FIELDS},
        "index": matcher.index.snapshot(),
        "history": matcher.history.snapshot(),
        "subset": matcher.subset.snapshot(),
        # only present for patterns with negations — absent keys keep
        # pre-v2 checkpoints loadable
        **(
            {"negation_history": matcher.negation_history.snapshot()}
            if matcher.negation_history is not None
            else {}
        ),
    }


def restore_matcher(matcher: "OCEPMatcher", state: dict) -> None:
    """Load a checkpoint into a freshly constructed matcher.

    The matcher must have been built for the same pattern shape and
    trace count and must not have processed any events yet.
    """
    try:
        fmt = state["format"]
        num_traces = int(state["num_traces"])
        num_leaves = int(state["num_leaves"])
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed checkpoint header: {exc!r}") from exc
    if fmt != CHECKPOINT_FORMAT:
        raise CheckpointError(f"unknown checkpoint format {fmt!r}")
    if num_traces != matcher.num_traces:
        raise CheckpointError(
            f"checkpoint is for {num_traces} traces, "
            f"matcher has {matcher.num_traces}"
        )
    if num_leaves != matcher.pattern.num_leaves:
        raise CheckpointError(
            f"checkpoint is for a {num_leaves}-leaf pattern, "
            f"matcher's pattern has {matcher.pattern.num_leaves}"
        )
    if matcher.events_processed:
        raise CheckpointError(
            "can only restore into a fresh matcher "
            f"(this one already processed {matcher.events_processed} events)"
        )
    try:
        matcher.index.restore(state["index"])
        matcher.history.restore(state["history"])
        matcher.subset.restore(state["subset"])
        if matcher.negation_history is not None:
            negation_state = state.get("negation_history")
            if negation_state is not None:
                matcher.negation_history.restore(negation_state)
        counters = state["counters"]
        for name in _COUNTER_FIELDS:
            # .get: counters added after a checkpoint was taken
            # restore as zero
            setattr(matcher, name, int(counters.get(name, 0)))
    except CheckpointError:
        raise
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise CheckpointError(f"corrupt checkpoint body: {exc!r}") from exc


def save_checkpoint(path: PathLike, state: dict) -> None:
    """Persist a checkpoint dict as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(state, fh)
        fh.write("\n")


def load_checkpoint(path: PathLike) -> dict:
    """Read a checkpoint previously written by :func:`save_checkpoint`."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            state = json.load(fh)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"{path}: unparseable checkpoint: {exc}") from exc
    if not isinstance(state, dict):
        raise CheckpointError(f"{path}: checkpoint is not a JSON object")
    return state
