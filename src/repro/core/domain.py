"""Domain restriction (paper, Figure 4).

When instantiating the event ``e_i`` of a pattern position on trace
``l``, the causality relation required with an already-instantiated
event ``e`` confines ``e_i`` to a contiguous interval of positions on
``l``:

====================  ==========================================
``e || e_i``          ``(GP(e, l), LS(e, l))``      (exclusive)
``e -> e_i``          ``[LS(e, l), +inf)``
``e_i -> e``          ``(-inf, GP(e, l)]``
====================  ==========================================

These bounds are *exact* under the Fidge/Mattern clock convention (not
merely necessary), so interval membership fully decides the causal
relation and no per-candidate re-check is needed.  The weak forms
(``NOT_AFTER`` / ``NOT_BEFORE``) arising from compound precedence have
the corresponding one-sided exact intervals.  The partner operator
contributes an interval plus a per-candidate identity filter, because
partnership is not a function of timestamps alone.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.gpls import CausalIndex
from repro.events.event import Event, EventKind
from repro.patterns.compile import Constraint

#: A position upper bound of None means "unbounded".
INF = None


@dataclasses.dataclass
class Interval:
    """An inclusive 1-based position interval ``[lo, hi]`` on one trace.

    ``hi=None`` means unbounded above.  ``empty`` is true when no
    position can satisfy it.
    """

    lo: int = 1
    hi: Optional[int] = INF

    @property
    def empty(self) -> bool:
        return self.hi is not None and self.lo > self.hi

    def intersect(self, lo: int, hi: Optional[int]) -> None:
        """Narrow this interval in place."""
        if lo > self.lo:
            self.lo = lo
        if hi is not None and (self.hi is None or hi < self.hi):
            self.hi = hi

    def contains(self, position: int) -> bool:
        return position >= self.lo and (self.hi is None or position <= self.hi)


def restrict(
    interval: Interval,
    constraint: Constraint,
    assigned: Event,
    trace: int,
    index: CausalIndex,
) -> bool:
    """Narrow ``interval`` for a candidate on ``trace`` so that its
    causal relation to ``assigned`` satisfies ``constraint`` (stated as
    the relation of ``assigned``'s position to the candidate's).

    Returns False when the constraint can never be satisfied on this
    trace (caller records a conflict); the interval may then be
    half-updated and must be discarded.
    """
    if constraint is Constraint.NONE:
        return True

    gp = index.gp(assigned, trace)
    ls = index.ls(assigned, trace)

    if constraint in (Constraint.BEFORE, Constraint.LIMITED):
        # assigned -> candidate
        if ls is None:
            return False
        interval.intersect(ls, INF)
    elif constraint in (Constraint.AFTER, Constraint.LIMITED_REV):
        # candidate -> assigned
        interval.intersect(1, gp)
    elif constraint is Constraint.NOT_AFTER:
        # not (candidate -> assigned): candidate strictly past GP
        interval.intersect(gp + 1, INF)
    elif constraint is Constraint.NOT_BEFORE:
        # not (assigned -> candidate): candidate strictly before LS
        if ls is not None:
            interval.intersect(1, ls - 1)
    elif constraint is Constraint.CONCURRENT:
        if ls is None:
            interval.intersect(gp + 1, INF)
        else:
            interval.intersect(gp + 1, ls - 1)
    elif constraint is Constraint.PARTNER:
        if assigned.kind is EventKind.RECEIVE and assigned.partner is not None:
            if assigned.partner.trace != trace:
                return False
            interval.intersect(assigned.partner.index, assigned.partner.index)
        elif assigned.kind is EventKind.SEND:
            # The matching receive causally follows the send; identity
            # is checked per candidate by the matcher.
            if ls is None:
                return False
            interval.intersect(ls, INF)
        else:
            return False  # a unary event has no partner
    else:
        raise ValueError(f"unhandled constraint {constraint!r}")

    return not interval.empty
