"""OCEP core: the online causal-event-pattern matcher.

This package implements the paper's contribution (Section IV):

* :mod:`~repro.core.gpls` — greatest-predecessor / least-successor
  queries over vector timestamps, the primitives behind domain
  restriction;
* :mod:`~repro.core.domain` — per-trace candidate domains restricted
  by the causality of already-instantiated events (Figure 4);
* :mod:`~repro.core.history` — per-leaf event histories grouped by
  trace, with the O(1) same-epoch pruning rule of Section V-D;
* :mod:`~repro.core.subset` — the representative subset of matches
  (at most ``k * n`` stored matches, Section IV-B);
* :mod:`~repro.core.matcher` — the backtracking search with
  timestamp-guided back-jumping (Algorithms 1-3, Figure 5);
* :mod:`~repro.core.monitor` — the online monitor: a POET client that
  feeds the matcher and reports matches as events arrive;
* :mod:`~repro.core.checkpoint` — monitor checkpoint/recovery: the
  snapshot format that lets a crashed monitor resume from a dumpfile
  suffix and converge to the identical representative subset;
* :mod:`~repro.core.oracle` — a brute-force reference matcher used as
  the correctness oracle by the test suite.
"""

from repro.core.checkpoint import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.config import MatcherConfig, SweepMode
from repro.core.gpls import CausalIndex
from repro.core.history import HistorySet, LeafHistory
from repro.core.subset import RepresentativeSubset, Slot
from repro.core.matcher import Match, MatchReport, OCEPMatcher
from repro.core.monitor import Monitor, MonitorStats
from repro.core.multi import MultiMonitor
from repro.core.oracle import enumerate_matches

__all__ = [
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    "MatcherConfig",
    "SweepMode",
    "CausalIndex",
    "HistorySet",
    "LeafHistory",
    "RepresentativeSubset",
    "Slot",
    "Match",
    "MatchReport",
    "OCEPMatcher",
    "Monitor",
    "MonitorStats",
    "MultiMonitor",
    "enumerate_matches",
]
