"""Greatest predecessor and least successor queries.

Paper, Section IV-C: "The greatest predecessor (GP) of an event ``a``
on a trace ``t`` is the most-recent event on that trace that happens
before ``a`` ... The least successor (LS) of an event ``a`` on a trace
``t`` is the least-recent event on that trace that happens after
``a``."  Together they delimit the portion of trace ``t`` concurrent
with ``a``, which is exactly what domain restriction needs (Figure 4).

Under the Fidge/Mattern convention, ``GP(a, t)`` is read directly off
``a``'s own timestamp: it is the event at position ``Va[t]`` on trace
``t`` (position 0 meaning "none").  ``LS(a, t)`` needs the *reverse*
lookup — the earliest event on ``t`` whose clock column for ``a``'s
trace has reached ``a``'s index — which this module answers with a
compressed per-trace-pair index of clock-column increase points.  Only
events that merge a remote clock (receives) grow the index, so its
size is proportional to communication, not to the total event count;
this is how the monitor avoids retaining every event just to answer
successor queries.
"""

from __future__ import annotations

import bisect
from typing import List, Optional

from repro.events.event import Event, EventKind


class CausalIndex:
    """Incremental GP/LS index over a stream of events.

    Feed every event of the computation (in delivery order) to
    :meth:`observe`; then :meth:`gp` and :meth:`ls` answer in O(1) and
    O(log messages) respectively.
    """

    def __init__(self, num_traces: int, allow_gaps: bool = False):
        if num_traces <= 0:
            raise ValueError(f"need at least one trace, got {num_traces}")
        self.num_traces = num_traces
        #: Accept forward index jumps (a shed/sampled stream); regressions
        #: and duplicates still raise.  ``gaps`` counts the missing
        #: positions actually skipped over, which callers use to decide
        #: whether domains are still exact (a pure trace-suffix loss
        #: leaves every answerable query exact; only an interior hole —
        #: a counted gap — can leave a least-successor column
        #: under-informed).
        self.allow_gaps = allow_gaps
        self.gaps = 0
        # _columns[l][m]: increase points of clock column m along trace
        # l, as parallel lists (values, positions), both strictly
        # increasing.  Own columns (l == m) are implicit.
        self._values: List[List[List[int]]] = [
            [[] for _ in range(num_traces)] for _ in range(num_traces)
        ]
        self._positions: List[List[List[int]]] = [
            [[] for _ in range(num_traces)] for _ in range(num_traces)
        ]
        self._lengths = [0] * num_traces

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def observe(self, event: Event) -> None:
        """Ingest the next event (must arrive in delivery order)."""
        trace = event.trace
        expected = self._lengths[trace] + 1
        if event.index != expected:
            if not self.allow_gaps or event.index < expected:
                raise ValueError(
                    f"trace {trace}: observed event {event.index}, "
                    f"expected {expected}"
                )
            self.gaps += event.index - expected
        self._lengths[trace] = event.index

        # Only a clock merge can raise a remote column; merges happen
        # exclusively at receive events, so everything else is O(1).
        if event.kind is EventKind.RECEIVE:
            clock = event.clock
            values_row = self._values[trace]
            positions_row = self._positions[trace]
            # The knowledge row is the raw remote-component view for
            # both backends: the encoded clock's interned row (own
            # position 0) or the full vector's components (the loop
            # skips the own position, so no normalization is needed).
            comps = getattr(clock, "knowledge", None)
            if comps is None:
                comps = clock.components
            index = event.index
            for m, v in enumerate(comps):
                if m == trace or v <= 0:
                    continue
                col = values_row[m]
                if not col or v > col[-1]:
                    col.append(v)
                    positions_row[m].append(index)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def trace_length(self, trace: int) -> int:
        """Number of events observed on a trace so far."""
        return self._lengths[trace]

    def gp(self, event: Event, trace: int) -> int:
        """Position of ``GP(event, trace)`` on ``trace`` (0 = none).

        On the event's own trace this is simply its predecessor; on a
        remote trace it is the event's clock entry for that trace.
        """
        if trace == event.trace:
            return event.index - 1
        return event.clock[trace]

    def ls(self, event: Event, trace: int) -> Optional[int]:
        """Position of ``LS(event, trace)`` on ``trace`` (``None`` =
        no successor observed yet).

        On the event's own trace this is its successor; on a remote
        trace it is the earliest position whose clock column for the
        event's trace has reached the event's index.
        """
        if trace == event.trace:
            nxt = event.index + 1
            return nxt if nxt <= self._lengths[trace] else None
        col = self._values[trace][event.trace]
        pos = bisect.bisect_left(col, event.index)
        if pos == len(col):
            return None
        return self._positions[trace][event.trace][pos]

    def index_size(self) -> int:
        """Total increase points stored (memory proxy for benchmarks)."""
        return sum(
            len(col) for row in self._values for col in row
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready copy of the index state (plain int lists)."""
        return {
            "lengths": list(self._lengths),
            "values": [[list(col) for col in row] for row in self._values],
            "positions": [
                [list(col) for col in row] for row in self._positions
            ],
            "gaps": self.gaps,
        }

    def restore(self, state: dict) -> None:
        """Overwrite the index with a :meth:`snapshot` (must match this
        index's trace count)."""
        if len(state["lengths"]) != self.num_traces:
            raise ValueError(
                f"snapshot has {len(state['lengths'])} traces, "
                f"index has {self.num_traces}"
            )
        self._lengths = [int(n) for n in state["lengths"]]
        self._values = [
            [[int(v) for v in col] for col in row] for row in state["values"]
        ]
        self._positions = [
            [[int(p) for p in col] for col in row] for row in state["positions"]
        ]
        # Older snapshots predate gap accounting; they were taken from
        # complete streams, so zero is exact.
        self.gaps = int(state.get("gaps", 0))
