"""The online monitor: POET client + pattern tree + OCEP matcher.

This is the top of the stack and the main entry point of the library:

    >>> from repro import Monitor
    >>> monitor = Monitor.from_source(pattern_text, trace_names)
    >>> server.connect(monitor)       # POET server of the computation
    >>> kernel.run()                  # reports stream via the callback

The monitor parses and compiles the pattern, feeds every delivered
event to the matcher, collects per-event wall-clock timings (the
paper's headline metric: "execution time ... taken by the monitor to
find the set of matches on arrival of an event"), and invokes an
optional callback for every reported match.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, List, Optional, Sequence

from repro.core.config import MatcherConfig
from repro.core.matcher import MatchReport, OCEPMatcher
from repro.events.event import Event
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.spans import NULL_TRACER, SpanTracer
from repro.patterns.compile import CompiledPattern, compile_pattern
from repro.patterns.parser import parse_pattern
from repro.patterns.tree import PatternTree
from repro.poet.client import POETClient

MatchCallback = Callable[[MatchReport], None]


@dataclasses.dataclass
class MonitorStats:
    """Aggregate counters of one monitoring run."""

    events_seen: int = 0
    matches_reported: int = 0
    subset_size: int = 0
    history_size: int = 0
    searches_run: int = 0
    searches_truncated: int = 0
    forward_steps: int = 0
    candidates_scanned: int = 0
    empty_slice_conflicts: int = 0
    back_jumps: int = 0


class Monitor(POETClient):
    """Online causal-event-pattern monitor.

    Parameters
    ----------
    pattern:
        The compiled pattern to watch for.
    num_traces:
        Number of traces in the monitored computation.
    config:
        Matcher configuration (defaults preserve the paper's
        behaviour).
    on_match:
        Optional callback invoked for every reported match.
    record_timings:
        When true (default), record per-event matching wall time in
        seconds; :attr:`timings` aligns with delivery order and
        :attr:`terminating_timings` holds one entry **per search** (an
        event matching several terminating leaves runs several
        searches and contributes several entries, keeping
        ``len(terminating_timings) == matcher.searches_run``).
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving
        per-event/per-search latency histograms and event/match
        counters online; matcher counters and size gauges are mirrored
        in by :meth:`publish_metrics`.  Defaults to the shared no-op
        registry (near-zero overhead).
    tracer:
        Optional :class:`~repro.obs.spans.SpanTracer`, installed on the
        matcher: each triggered search becomes a ``matcher.search``
        span with nested ``goForward``/``goBackward`` children.
        Defaults to the shared no-op tracer.
    """

    def __init__(
        self,
        pattern: CompiledPattern,
        num_traces: int,
        config: Optional[MatcherConfig] = None,
        on_match: Optional[MatchCallback] = None,
        record_timings: bool = True,
        registry: Optional[MetricsRegistry] = None,
        metric_labels: Optional[dict] = None,
        tracer: Optional[SpanTracer] = None,
    ):
        self.matcher = OCEPMatcher(pattern, num_traces, config)
        self.pattern = pattern
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.matcher.tracer = self.tracer
        self._on_match = on_match
        self._record_timings = record_timings
        self.matcher.time_searches = record_timings
        self.reports: List[MatchReport] = []
        self.timings: List[float] = []
        self.terminating_timings: List[float] = []
        self.registry = registry if registry is not None else NULL_REGISTRY
        self._metric_labels = dict(metric_labels) if metric_labels else None
        self._events_counter = self.registry.counter(
            "ocep_monitor_events_total",
            "events delivered to the monitor",
            labels=self._metric_labels,
        )
        self._matches_counter = self.registry.counter(
            "ocep_monitor_matches_total",
            "match reports emitted by the monitor",
            labels=self._metric_labels,
        )
        self._event_latency = self.registry.histogram(
            "ocep_monitor_event_seconds",
            "per-event matching wall time (the paper's headline metric)",
            labels=self._metric_labels,
        )
        self._search_latency = self.registry.histogram(
            "ocep_monitor_search_seconds",
            "per-search wall time on terminating events",
            labels=self._metric_labels,
        )
        # Size gauges are kept fresh on *every* delivery path — per
        # event, per batch, and on restore — not only when
        # publish_metrics() runs, so MonitorStats and scrapes never
        # report stale subset/history sizes.
        self._subset_gauge = self.registry.gauge(
            "ocep_subset_matches",
            "matches stored in the representative subset",
            labels=self._metric_labels,
        )
        self._history_gauge = self.registry.gauge(
            "ocep_history_events",
            "events stored across all leaf histories",
            labels=self._metric_labels,
        )
        #: Armed by :meth:`restore`: deliveries already reflected in the
        #: restored matcher state (the checkpointed prefix) are skipped,
        #: so a recovered monitor can be fed the full recorded stream
        #: and converge exactly (the ``replay_suffix`` rule, applied on
        #: the normal delivery path).
        self._skip_delivered = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_source(
        cls,
        source: str,
        trace_names: Sequence[str],
        config: Optional[MatcherConfig] = None,
        on_match: Optional[MatchCallback] = None,
        record_timings: bool = True,
        registry: Optional[MetricsRegistry] = None,
        metric_labels: Optional[dict] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> "Monitor":
        """Parse, build, and compile a pattern, then wrap it in a
        monitor for a computation with the given trace names."""
        definition = parse_pattern(source)
        tree = PatternTree(definition, trace_names)
        compiled = compile_pattern(tree)
        return cls(
            compiled,
            num_traces=len(trace_names),
            config=config,
            on_match=on_match,
            record_timings=record_timings,
            registry=registry,
            metric_labels=metric_labels,
            tracer=tracer,
        )

    # ------------------------------------------------------------------
    # POET client interface
    # ------------------------------------------------------------------

    def on_event(self, event: Event) -> None:
        """Process one delivered event (the POET client hook)."""
        if self._skip_delivered and event.index <= self.matcher.index.trace_length(
            event.trace
        ):
            return
        self._events_counter.inc()
        if self._record_timings:
            searches_before = len(self.matcher.search_timings)
            start = time.perf_counter()
            reports = self.matcher.on_event(event)
            elapsed = time.perf_counter() - start
            self.timings.append(elapsed)
            # One entry per *search*, not per event: an event matching
            # several terminating leaves runs several searches, and
            # len(terminating_timings) must track searches_run.
            per_search = self.matcher.search_timings[searches_before:]
            self.terminating_timings.extend(per_search)
            self._event_latency.observe(elapsed)
            for search_time in per_search:
                self._search_latency.observe(search_time)
        else:
            reports = self.matcher.on_event(event)

        if reports:
            self.reports.extend(reports)
            self._matches_counter.inc(len(reports))
            if self._on_match is not None:
                for report in reports:
                    self._on_match(report)
        self._refresh_size_gauges()

    def on_batch(self, events: Sequence[Event]) -> None:
        """Process a contiguous delivery slice with amortized dispatch.

        The matcher sees the same per-event calls in the same order, so
        match output (reports, subset, counters) is bit-identical to
        the per-event path; when timings are on, per-event and
        per-search wall times are still recorded individually.  What is
        amortized is the monitor-level overhead around the matcher:
        event counters, gauge refreshes, and callback bookkeeping are
        paid once per batch instead of once per event.
        """
        if not events:
            return
        if self._skip_delivered:
            trace_length = self.matcher.index.trace_length
            events = [e for e in events if e.index > trace_length(e.trace)]
            if not events:
                return
        matcher_on_event = self.matcher.on_event
        batch_reports: List[MatchReport] = []
        if self._record_timings:
            timings = self.timings
            search_timings = self.matcher.search_timings
            perf_counter = time.perf_counter
            for event in events:
                searches_before = len(search_timings)
                start = perf_counter()
                reports = matcher_on_event(event)
                elapsed = perf_counter() - start
                timings.append(elapsed)
                per_search = search_timings[searches_before:]
                self.terminating_timings.extend(per_search)
                self._event_latency.observe(elapsed)
                for search_time in per_search:
                    self._search_latency.observe(search_time)
                if reports:
                    batch_reports.extend(reports)
        else:
            extend = batch_reports.extend
            for event in events:
                reports = matcher_on_event(event)
                if reports:
                    extend(reports)
        self._events_counter.inc(len(events))
        if batch_reports:
            self.reports.extend(batch_reports)
            self._matches_counter.inc(len(batch_reports))
            if self._on_match is not None:
                for report in batch_reports:
                    self._on_match(report)
        self._refresh_size_gauges()

    def _refresh_size_gauges(self) -> None:
        self._subset_gauge.set(len(self.matcher.subset))
        self._history_gauge.set(self.matcher.history.total_size())

    # ------------------------------------------------------------------
    # Checkpoint / recovery
    # ------------------------------------------------------------------

    def checkpoint(self) -> dict:
        """JSON-ready snapshot of the matcher's complete cross-event
        state (delivered counts, GP/LS index, leaf histories,
        representative subset, counters).  Restore it into a *fresh*
        monitor built for the same pattern via :meth:`restore`, then
        :meth:`replay_suffix` the recorded stream to converge to the
        exact state of an uninterrupted run."""
        return self.matcher.checkpoint()

    def restore(self, state: dict) -> None:
        """Load a :meth:`checkpoint` (this monitor must be fresh —
        same pattern shape and trace count, no events processed).

        Restoring arms suffix-skipping: deliveries already reflected in
        the checkpoint are ignored by :meth:`on_event`/:meth:`on_batch`,
        so the recovered monitor can simply be reconnected to a replay
        of the full recorded stream.  Size gauges are refreshed
        immediately — :meth:`stats` and metric scrapes see the restored
        subset/history sizes without waiting for the next delivery."""
        self.matcher.restore(state)
        self._skip_delivered = True
        self._refresh_size_gauges()

    def delivered_counts(self) -> List[int]:
        """Events processed so far per trace (the replay watermark)."""
        return [
            self.matcher.index.trace_length(t)
            for t in range(self.matcher.num_traces)
        ]

    def replay_suffix(self, events: Sequence[Event]) -> int:
        """Feed a recorded linearization, skipping the prefix already
        reflected in the matcher state; returns the number of events
        actually replayed.  ``events`` must be a valid linearization of
        the computation the checkpoint came from (e.g. a POET
        dumpfile), so per-trace indices decide membership exactly."""
        replayed = 0
        for event in events:
            if event.index <= self.matcher.index.trace_length(event.trace):
                continue
            self.on_event(event)
            replayed += 1
        return replayed

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def subset(self):
        """The matcher's representative subset."""
        return self.matcher.subset

    @property
    def search_trace(self):
        """The matcher's search-trace ring buffer (None unless
        ``MatcherConfig.search_trace_size`` was set)."""
        return self.matcher.search_trace

    def stats(self) -> MonitorStats:
        """Aggregate counters for reporting.

        ``matches_reported`` comes from the matcher's checkpointed
        ``matches_found`` counter, not ``len(self.reports)``: after
        :meth:`restore` the reports list only holds post-recovery
        matches, while the counter converges to the uninterrupted run's
        value.  For a fresh run the two are always equal (every report
        increments the counter exactly once).
        """
        return MonitorStats(
            events_seen=self.matcher.events_processed,
            matches_reported=self.matcher.matches_found,
            subset_size=len(self.matcher.subset),
            history_size=self.matcher.history.total_size(),
            searches_run=self.matcher.searches_run,
            searches_truncated=self.matcher.searches_truncated,
            forward_steps=self.matcher.forward_steps,
            candidates_scanned=self.matcher.candidates_scanned,
            empty_slice_conflicts=self.matcher.empty_slice_conflicts,
            back_jumps=self.matcher.back_jumps,
        )

    def publish_metrics(self) -> MetricsRegistry:
        """Mirror the matcher's hot-path counters and size gauges into
        this monitor's registry; returns the registry (snapshot-ready
        for the :mod:`repro.obs.export` exporters)."""
        self.matcher.publish_metrics(self.registry, labels=self._metric_labels)
        return self.registry
