"""The online monitor: POET client + pattern tree + OCEP matcher.

This is the top of the stack and the main entry point of the library:

    >>> from repro import Monitor
    >>> monitor = Monitor.from_source(pattern_text, trace_names)
    >>> server.connect(monitor)       # POET server of the computation
    >>> kernel.run()                  # reports stream via the callback

The monitor parses and compiles the pattern, feeds every delivered
event to the matcher, collects per-event wall-clock timings (the
paper's headline metric: "execution time ... taken by the monitor to
find the set of matches on arrival of an event"), and invokes an
optional callback for every reported match.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, List, Optional, Sequence

from repro.core.config import MatcherConfig
from repro.core.matcher import MatchReport, OCEPMatcher
from repro.events.event import Event
from repro.patterns.compile import CompiledPattern, compile_pattern
from repro.patterns.parser import parse_pattern
from repro.patterns.tree import PatternTree
from repro.poet.client import POETClient

MatchCallback = Callable[[MatchReport], None]


@dataclasses.dataclass
class MonitorStats:
    """Aggregate counters of one monitoring run."""

    events_seen: int = 0
    matches_reported: int = 0
    subset_size: int = 0
    history_size: int = 0
    searches_run: int = 0


class Monitor(POETClient):
    """Online causal-event-pattern monitor.

    Parameters
    ----------
    pattern:
        The compiled pattern to watch for.
    num_traces:
        Number of traces in the monitored computation.
    config:
        Matcher configuration (defaults preserve the paper's
        behaviour).
    on_match:
        Optional callback invoked for every reported match.
    record_timings:
        When true (default), record per-event matching wall time in
        seconds; :attr:`timings` aligns with delivery order and
        :attr:`terminating_timings` keeps only events that triggered a
        search (the paper's "terminating events").
    """

    def __init__(
        self,
        pattern: CompiledPattern,
        num_traces: int,
        config: Optional[MatcherConfig] = None,
        on_match: Optional[MatchCallback] = None,
        record_timings: bool = True,
    ):
        self.matcher = OCEPMatcher(pattern, num_traces, config)
        self.pattern = pattern
        self._on_match = on_match
        self._record_timings = record_timings
        self.reports: List[MatchReport] = []
        self.timings: List[float] = []
        self.terminating_timings: List[float] = []

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_source(
        cls,
        source: str,
        trace_names: Sequence[str],
        config: Optional[MatcherConfig] = None,
        on_match: Optional[MatchCallback] = None,
        record_timings: bool = True,
    ) -> "Monitor":
        """Parse, build, and compile a pattern, then wrap it in a
        monitor for a computation with the given trace names."""
        definition = parse_pattern(source)
        tree = PatternTree(definition, trace_names)
        compiled = compile_pattern(tree)
        return cls(
            compiled,
            num_traces=len(trace_names),
            config=config,
            on_match=on_match,
            record_timings=record_timings,
        )

    # ------------------------------------------------------------------
    # POET client interface
    # ------------------------------------------------------------------

    def on_event(self, event: Event) -> None:
        """Process one delivered event (the POET client hook)."""
        searches_before = self.matcher.searches_run
        if self._record_timings:
            start = time.perf_counter()
            reports = self.matcher.on_event(event)
            elapsed = time.perf_counter() - start
            self.timings.append(elapsed)
            if self.matcher.searches_run > searches_before:
                self.terminating_timings.append(elapsed)
        else:
            reports = self.matcher.on_event(event)

        if reports:
            self.reports.extend(reports)
            if self._on_match is not None:
                for report in reports:
                    self._on_match(report)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def subset(self):
        """The matcher's representative subset."""
        return self.matcher.subset

    def stats(self) -> MonitorStats:
        """Aggregate counters for reporting."""
        return MonitorStats(
            events_seen=self.matcher.events_processed,
            matches_reported=len(self.reports),
            subset_size=len(self.matcher.subset),
            history_size=self.matcher.history.total_size(),
            searches_run=self.matcher.searches_run,
        )
