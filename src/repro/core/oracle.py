"""Brute-force reference matcher.

Enumerates *every* assignment of events to pattern leaves that
satisfies the compiled constraints, by exhaustive search over the full
(unpruned) candidate lists.  Exponential and offline by design — its
only job is to be obviously correct, so the test suite can compare the
OCEP engine's online results against ground truth on small traces.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.events.event import Event
from repro.patterns.classes import Bindings
from repro.patterns.compile import CompiledPattern, Constraint

Match = Dict[int, Event]

WallClock = Optional[Callable[[Event], float]]


def enumerate_matches(
    pattern: CompiledPattern,
    events: Iterable[Event],
    wall_clock: WallClock = None,
) -> List[Match]:
    """All complete matches of ``pattern`` over the event collection.

    Events may be given in any order.  Matches are returned as
    leaf-id -> event dictionaries, in no particular order.  A Kleene
    leaf binds its *anchor* event — every class event satisfying the
    position's constraints is a valid anchor of a one-or-more match;
    the aggregated group is derived per match by :func:`kleene_groups`.
    ``wall_clock`` supplies the stamp extractor for ``WITHIN n wall``
    guards (required when the pattern has any).
    """
    ordered = sorted(events, key=lambda e: (e.trace, e.index))
    candidates: List[List[Event]] = []
    for leaf in pattern.leaves:
        candidates.append([e for e in ordered if leaf.event_class.could_match(e)])

    matches: List[Match] = []
    assignment: Match = {}

    def backtrack(leaf_id: int, env: Bindings) -> None:
        if leaf_id == pattern.num_leaves:
            if _exist_checks_pass(pattern, assignment) and _negations_pass(
                pattern, assignment, env, ordered
            ):
                matches.append(dict(assignment))
            return
        leaf = pattern.leaves[leaf_id]
        for event in candidates[leaf_id]:
            if any(event == chosen for chosen in assignment.values()):
                continue
            next_env = leaf.event_class.matches(event, env)
            if next_env is None:
                continue
            if not _pairwise_ok(pattern, assignment, leaf_id, event, candidates):
                continue
            if not _windows_ok(pattern, assignment, leaf_id, event, wall_clock):
                continue
            assignment[leaf_id] = event
            backtrack(leaf_id + 1, next_env)
            del assignment[leaf_id]

    backtrack(0, {})
    return matches


def _pairwise_ok(
    pattern: CompiledPattern,
    assignment: Match,
    leaf_id: int,
    event: Event,
    candidates: List[List[Event]],
) -> bool:
    for other_id, other in assignment.items():
        constraint = pattern.constraint(other_id, leaf_id)
        if constraint is Constraint.NONE:
            continue
        if not _holds(constraint, other, event, other_id, leaf_id, candidates):
            return False
    return True


def _holds(
    constraint: Constraint,
    assigned: Event,
    event: Event,
    assigned_leaf: int,
    event_leaf: int,
    candidates: List[List[Event]],
) -> bool:
    if constraint is Constraint.BEFORE:
        return assigned.happens_before(event)
    if constraint is Constraint.AFTER:
        return event.happens_before(assigned)
    if constraint is Constraint.NOT_AFTER:
        return not event.happens_before(assigned)
    if constraint is Constraint.NOT_BEFORE:
        return not assigned.happens_before(event)
    if constraint is Constraint.CONCURRENT:
        return event.concurrent_with(assigned)
    if constraint is Constraint.PARTNER:
        return event.is_partner_of(assigned)
    if constraint is Constraint.LIMITED:
        return assigned.happens_before(event) and not _has_between(
            candidates[assigned_leaf], assigned, event
        )
    if constraint is Constraint.LIMITED_REV:
        return event.happens_before(assigned) and not _has_between(
            candidates[event_leaf], event, assigned
        )
    raise ValueError(f"unhandled constraint {constraint!r}")


def _has_between(pool: List[Event], low: Event, high: Event) -> bool:
    return any(
        x != low and x != high and low.happens_before(x) and x.happens_before(high)
        for x in pool
    )


def _windows_ok(
    pattern: CompiledPattern,
    assignment: Match,
    leaf_id: int,
    event: Event,
    wall_clock: WallClock,
) -> bool:
    if not pattern.has_v2_features:
        return True
    for other_id, other in assignment.items():
        if not _window_pair_ok(
            pattern, leaf_id, other_id, event, other, wall_clock
        ):
            return False
    return True


def _window_pair_ok(
    pattern: CompiledPattern,
    leaf_a: int,
    leaf_b: int,
    event_a: Event,
    event_b: Event,
    wall_clock: WallClock,
) -> bool:
    bound = pattern.window_bound(leaf_a, leaf_b, "sim")
    if bound is not None:
        delta = event_a.lamport - event_b.lamport
        if delta > bound or -delta > bound:
            return False
    bound = pattern.window_bound(leaf_a, leaf_b, "wall")
    if bound is not None:
        if wall_clock is None:
            raise ValueError(
                "pattern has wall-clock windows; pass a wall_clock extractor"
            )
        delta = wall_clock(event_a) - wall_clock(event_b)
        if delta > bound or -delta > bound:
            return False
    return True


def _negations_pass(
    pattern: CompiledPattern,
    assignment: Match,
    env: Bindings,
    pool: List[Event],
) -> bool:
    """No event of an absent class falls causally strictly between its
    two anchor events, under the match's final bindings."""
    for spec in pattern.negations:
        left = assignment[spec.left_leaf]
        right = assignment[spec.right_leaf]
        for event in pool:
            if event == left or event == right:
                continue
            if spec.event_class.matches(event, env) is None:
                continue
            if left.happens_before(event) and event.happens_before(right):
                return False
    return True


def kleene_groups(
    pattern: CompiledPattern,
    match: Match,
    events: Iterable[Event],
    wall_clock: WallClock = None,
) -> Tuple[Tuple[int, Tuple[Event, ...]], ...]:
    """Expand each Kleene anchor of a complete match to its maximal
    group, mirroring the engine's report-time expansion: every class
    event (over the *full* pool) matching under the final bindings,
    distinct from the other bound events, satisfying the Kleene leaf's
    pairwise constraints against every bound leaf, and within the
    window guards — including the member-member self bound, checked
    greedily in (trace, index) scan order."""
    ordered = sorted(events, key=lambda e: (e.trace, e.index))
    candidates: List[List[Event]] = []
    for leaf in pattern.leaves:
        candidates.append([e for e in ordered if leaf.event_class.could_match(e)])
    env: Bindings = {}
    for leaf_id in range(pattern.num_leaves):
        env = pattern.leaves[leaf_id].event_class.matches(match[leaf_id], env)
        if env is None:
            raise ValueError("assignment is not a match of the pattern")
    groups = []
    for g in range(pattern.num_leaves):
        leaf = pattern.leaves[g]
        if not leaf.kleene:
            continue
        anchor = match[g]
        others = [(lid, ev) for lid, ev in match.items() if lid != g]
        self_sim = pattern.window_bound(g, g, "sim")
        self_wall = pattern.window_bound(g, g, "wall")
        members: List[Event] = [anchor]
        for event in candidates[g]:
            if event == anchor:
                continue
            if leaf.event_class.matches(event, env) is None:
                continue
            ok = True
            for other_id, other in others:
                if event == other:
                    ok = False
                    break
                constraint = pattern.constraint(other_id, g)
                if constraint is not Constraint.NONE and not _holds(
                    constraint, other, event, other_id, g, candidates
                ):
                    ok = False
                    break
                if not _window_pair_ok(
                    pattern, g, other_id, event, other, wall_clock
                ):
                    ok = False
                    break
            if ok and self_sim is not None:
                for member in members:
                    delta = event.lamport - member.lamport
                    if delta > self_sim or -delta > self_sim:
                        ok = False
                        break
            if ok and self_wall is not None:
                for member in members:
                    delta = wall_clock(event) - wall_clock(member)
                    if delta > self_wall or -delta > self_wall:
                        ok = False
                        break
            if ok:
                members.append(event)
        members.sort(key=lambda e: (e.trace, e.index))
        groups.append((g, tuple(members)))
    return tuple(groups)


def _exist_checks_pass(pattern: CompiledPattern, assignment: Match) -> bool:
    for check in pattern.exist_checks:
        if not any(
            assignment[a].happens_before(assignment[b])
            for a in check.left_leaves
            for b in check.right_leaves
        ):
            return False
    for check in pattern.entangle_checks:
        forward = any(
            assignment[a].happens_before(assignment[b])
            for a in check.left_leaves
            for b in check.right_leaves
        )
        backward = any(
            assignment[b].happens_before(assignment[a])
            for a in check.left_leaves
            for b in check.right_leaves
        )
        if not (forward and backward):
            return False
    return True


def verify_match(
    pattern: CompiledPattern,
    match: Match,
    events: Iterable[Event],
    wall_clock: WallClock = None,
) -> bool:
    """Ground-truth check of one reported match against the *full*
    event collection: every leaf class, every pairwise constraint
    (including ``~>`` immediacy, whose in-between witness pool comes
    from ``events``, not from whatever subset the reporter saw), and
    the compound existential/entanglement checks.  This is how the
    shedding harness measures precision — a monitor fed a gapped
    stream can only report a false match through a shed ``~>``
    witness, and this predicate catches exactly that."""
    ordered = sorted(events, key=lambda e: (e.trace, e.index))
    candidates: List[List[Event]] = []
    for leaf in pattern.leaves:
        candidates.append(
            [e for e in ordered if leaf.event_class.could_match(e)]
        )
    env: Bindings = {}
    assignment: Match = {}
    for leaf_id in range(pattern.num_leaves):
        event = match.get(leaf_id)
        if event is None:
            return False
        env = pattern.leaves[leaf_id].event_class.matches(event, env)
        if env is None:
            return False
        if not _pairwise_ok(pattern, assignment, leaf_id, event, candidates):
            return False
        if not _windows_ok(pattern, assignment, leaf_id, event, wall_clock):
            return False
        assignment[leaf_id] = event
    return _exist_checks_pass(pattern, assignment) and _negations_pass(
        pattern, assignment, env, ordered
    )


def covered_slots(matches: Iterable[Match]) -> set:
    """The full set of (leaf, trace) slots any match covers — what a
    perfect representative subset must cover."""
    slots = set()
    for match in matches:
        for leaf_id, event in match.items():
            slots.add((leaf_id, event.trace))
    return slots
