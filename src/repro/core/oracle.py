"""Brute-force reference matcher.

Enumerates *every* assignment of events to pattern leaves that
satisfies the compiled constraints, by exhaustive search over the full
(unpruned) candidate lists.  Exponential and offline by design — its
only job is to be obviously correct, so the test suite can compare the
OCEP engine's online results against ground truth on small traces.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.events.event import Event
from repro.patterns.classes import Bindings
from repro.patterns.compile import CompiledPattern, Constraint

Match = Dict[int, Event]


def enumerate_matches(
    pattern: CompiledPattern, events: Iterable[Event]
) -> List[Match]:
    """All complete matches of ``pattern`` over the event collection.

    Events may be given in any order.  Matches are returned as
    leaf-id -> event dictionaries, in no particular order.
    """
    ordered = sorted(events, key=lambda e: (e.trace, e.index))
    candidates: List[List[Event]] = []
    for leaf in pattern.leaves:
        candidates.append([e for e in ordered if leaf.event_class.could_match(e)])

    matches: List[Match] = []
    assignment: Match = {}

    def backtrack(leaf_id: int, env: Bindings) -> None:
        if leaf_id == pattern.num_leaves:
            if _exist_checks_pass(pattern, assignment):
                matches.append(dict(assignment))
            return
        leaf = pattern.leaves[leaf_id]
        for event in candidates[leaf_id]:
            if any(event == chosen for chosen in assignment.values()):
                continue
            next_env = leaf.event_class.matches(event, env)
            if next_env is None:
                continue
            if not _pairwise_ok(pattern, assignment, leaf_id, event, candidates):
                continue
            assignment[leaf_id] = event
            backtrack(leaf_id + 1, next_env)
            del assignment[leaf_id]

    backtrack(0, {})
    return matches


def _pairwise_ok(
    pattern: CompiledPattern,
    assignment: Match,
    leaf_id: int,
    event: Event,
    candidates: List[List[Event]],
) -> bool:
    for other_id, other in assignment.items():
        constraint = pattern.constraint(other_id, leaf_id)
        if constraint is Constraint.NONE:
            continue
        if not _holds(constraint, other, event, other_id, leaf_id, candidates):
            return False
    return True


def _holds(
    constraint: Constraint,
    assigned: Event,
    event: Event,
    assigned_leaf: int,
    event_leaf: int,
    candidates: List[List[Event]],
) -> bool:
    if constraint is Constraint.BEFORE:
        return assigned.happens_before(event)
    if constraint is Constraint.AFTER:
        return event.happens_before(assigned)
    if constraint is Constraint.NOT_AFTER:
        return not event.happens_before(assigned)
    if constraint is Constraint.NOT_BEFORE:
        return not assigned.happens_before(event)
    if constraint is Constraint.CONCURRENT:
        return event.concurrent_with(assigned)
    if constraint is Constraint.PARTNER:
        return event.is_partner_of(assigned)
    if constraint is Constraint.LIMITED:
        return assigned.happens_before(event) and not _has_between(
            candidates[assigned_leaf], assigned, event
        )
    if constraint is Constraint.LIMITED_REV:
        return event.happens_before(assigned) and not _has_between(
            candidates[event_leaf], event, assigned
        )
    raise ValueError(f"unhandled constraint {constraint!r}")


def _has_between(pool: List[Event], low: Event, high: Event) -> bool:
    return any(
        x != low and x != high and low.happens_before(x) and x.happens_before(high)
        for x in pool
    )


def _exist_checks_pass(pattern: CompiledPattern, assignment: Match) -> bool:
    for check in pattern.exist_checks:
        if not any(
            assignment[a].happens_before(assignment[b])
            for a in check.left_leaves
            for b in check.right_leaves
        ):
            return False
    for check in pattern.entangle_checks:
        forward = any(
            assignment[a].happens_before(assignment[b])
            for a in check.left_leaves
            for b in check.right_leaves
        )
        backward = any(
            assignment[b].happens_before(assignment[a])
            for a in check.left_leaves
            for b in check.right_leaves
        )
        if not (forward and backward):
            return False
    return True


def verify_match(
    pattern: CompiledPattern, match: Match, events: Iterable[Event]
) -> bool:
    """Ground-truth check of one reported match against the *full*
    event collection: every leaf class, every pairwise constraint
    (including ``~>`` immediacy, whose in-between witness pool comes
    from ``events``, not from whatever subset the reporter saw), and
    the compound existential/entanglement checks.  This is how the
    shedding harness measures precision — a monitor fed a gapped
    stream can only report a false match through a shed ``~>``
    witness, and this predicate catches exactly that."""
    ordered = sorted(events, key=lambda e: (e.trace, e.index))
    candidates: List[List[Event]] = []
    for leaf in pattern.leaves:
        candidates.append(
            [e for e in ordered if leaf.event_class.could_match(e)]
        )
    env: Bindings = {}
    assignment: Match = {}
    for leaf_id in range(pattern.num_leaves):
        event = match.get(leaf_id)
        if event is None:
            return False
        env = pattern.leaves[leaf_id].event_class.matches(event, env)
        if env is None:
            return False
        if not _pairwise_ok(pattern, assignment, leaf_id, event, candidates):
            return False
        assignment[leaf_id] = event
    return _exist_checks_pass(pattern, assignment)


def covered_slots(matches: Iterable[Match]) -> set:
    """The full set of (leaf, trace) slots any match covers — what a
    perfect representative subset must cover."""
    slots = set()
    for match in matches:
        for leaf_id, event in match.items():
            slots.add((leaf_id, event.trace))
    return slots
