"""Per-leaf event histories, grouped by trace.

"Every time POET reports an event that matches a leaf node of the
pattern tree, it is added to the corresponding leaf node's history of
events.  This history is grouped by traces and is totally ordered for
each individual trace" (paper, Section IV-A).  Because histories only
hold events that match some pattern class, "the runtime of the matching
algorithm is only affected by the events that are actually in the
pattern, not by all the events that are being monitored".

The O(1) pruning rule (Section V-D): two matches of the same leaf on
the same trace with *no send or receive events between them* have
identical causal relations to every event on other traces, so only one
needs to be kept (we keep the newest, matching the latest-match bias of
the search and of Figure 3's desired subset).  This reproduction
additionally requires that no *other pattern-relevant event* occurred
on the trace in between, which keeps same-trace pattern constraints
(e.g. ``Snapshot -> Update`` on one leader trace) exact under pruning.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Sequence

from repro.events.event import Event


class LeafHistory:
    """Matched events for one leaf, grouped by trace.

    Entries per trace are kept in index (arrival) order, enabling
    binary search by trace position for domain slicing.
    """

    __slots__ = ("leaf_id", "_by_trace", "_epochs", "_by_text", "_size",
                 "_nonempty", "_indices")

    def __init__(self, leaf_id: int, num_traces: int):
        self.leaf_id = leaf_id
        self._by_trace: List[List[Event]] = [[] for _ in range(num_traces)]
        self._epochs: List[List[int]] = [[] for _ in range(num_traces)]
        # parallel to _by_trace: the events' trace positions, as plain
        # ints — domain slicing bisects these at C speed instead of
        # calling a key function per probe.
        self._indices: List[List[int]] = [[] for _ in range(num_traces)]
        # secondary index: per trace, text value -> events in order.
        # Enables O(log) candidate lookup when a pattern's text
        # attribute is exact or already bound (e.g. the request-id of
        # the ordering pattern).
        self._by_text: List[dict] = [{} for _ in range(num_traces)]
        # sorted trace ids holding at least one event: lets the search
        # sweep jump over empty traces instead of visiting each (a leaf
        # usually matches on a few traces of a wide computation).
        # Pruning replaces entries in place, so traces never re-empty.
        self._nonempty: List[int] = []
        self._size = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def append(self, event: Event, epoch: int, may_prune: bool) -> None:
        """Record a matched event.

        ``epoch`` is the trace's communication epoch at the event;
        ``may_prune`` says the previous entry on this trace is
        replaceable (same epoch, and it was the most recent
        pattern-relevant event on the trace).
        """
        events = self._by_trace[event.trace]
        epochs = self._epochs[event.trace]
        indices = self._indices[event.trace]
        text_index = self._by_text[event.trace]
        if may_prune and events and epochs[-1] == epoch:
            replaced = events[-1]
            events[-1] = event
            epochs[-1] = epoch
            indices[-1] = event.index
            bucket = text_index.get(replaced.text)
            if bucket and bucket[-1] is replaced:
                bucket.pop()
                if not bucket:
                    del text_index[replaced.text]
            text_index.setdefault(event.text, []).append(event)
            return
        if not events:
            bisect.insort(self._nonempty, event.trace)
        events.append(event)
        epochs.append(epoch)
        indices.append(event.index)
        text_index.setdefault(event.text, []).append(event)
        self._size += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def on_trace(self, trace: int) -> Sequence[Event]:
        """All stored events of this leaf on one trace, oldest first."""
        return self._by_trace[trace]

    def slice(self, trace: int, lo: int, hi: Optional[int]) -> Sequence[Event]:
        """Stored events on ``trace`` with position in ``[lo, hi]``
        (``hi=None`` meaning unbounded), oldest first."""
        indices = self._indices[trace]
        left = bisect.bisect_left(indices, lo)
        if hi is None:
            return self._by_trace[trace][left:]
        right = bisect.bisect_right(indices, hi, left)
        return self._by_trace[trace][left:right]

    def slice_by_text(
        self, trace: int, lo: int, hi: Optional[int], text: str
    ) -> Sequence[Event]:
        """Like :meth:`slice`, restricted to events carrying exactly
        ``text`` — served from the secondary index."""
        bucket = self._by_text[trace].get(text)
        if not bucket:
            return ()
        return _position_slice(bucket, lo, hi)

    def next_nonempty(self, trace: int) -> Optional[int]:
        """Smallest trace id ``>= trace`` holding at least one stored
        event, or ``None`` when no such trace exists — the sweep's
        skip-ahead query."""
        nonempty = self._nonempty
        pos = bisect.bisect_left(nonempty, trace)
        return nonempty[pos] if pos < len(nonempty) else None

    def earliest_on(self, trace: int) -> Optional[Event]:
        events = self._by_trace[trace]
        return events[0] if events else None

    def latest_on(self, trace: int) -> Optional[Event]:
        events = self._by_trace[trace]
        return events[-1] if events else None

    def has_between(self, low_event: Event, high_event: Event) -> bool:
        """True when some stored event ``x`` satisfies
        ``low_event -> x -> high_event`` — the side condition of the
        limited-precedence operator."""
        for trace in range(len(self._by_trace)):
            if not self._by_trace[trace]:
                continue
            lo = _ls_bound(low_event, trace)
            hi = _gp_bound(high_event, trace)
            if lo is None or hi is None or lo > hi:
                continue
            # The bounds are exact on the endpoints' own traces and
            # conservative supersets elsewhere, so each candidate is
            # verified causally.
            for candidate in self.slice(trace, lo, hi):
                if candidate == low_event or candidate == high_event:
                    continue
                if low_event.happens_before(candidate) and candidate.happens_before(
                    high_event
                ):
                    return True
        return False

    @property
    def size(self) -> int:
        """Total stored events across all traces."""
        return self._size

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready copy: per non-empty trace, the stored event
        records and their communication epochs."""
        traces = []
        for trace, events in enumerate(self._by_trace):
            if events:
                traces.append(
                    {
                        "trace": trace,
                        "events": [e.to_record() for e in events],
                        "epochs": list(self._epochs[trace]),
                    }
                )
        return {"leaf_id": self.leaf_id, "traces": traces}

    def restore(self, state: dict) -> None:
        """Rebuild from a :meth:`snapshot` (the history must be fresh);
        the text index and size are reconstructed."""
        from repro.events.event import event_from_record

        if self._size:
            raise ValueError("can only restore into an empty history")
        for entry in state["traces"]:
            trace = int(entry["trace"])
            events = [event_from_record(r) for r in entry["events"]]
            epochs = [int(ep) for ep in entry["epochs"]]
            if len(events) != len(epochs):
                raise ValueError(
                    f"leaf {self.leaf_id} trace {trace}: "
                    f"{len(events)} events vs {len(epochs)} epochs"
                )
            self._by_trace[trace] = events
            self._epochs[trace] = epochs
            self._indices[trace] = [e.index for e in events]
            if events:
                bisect.insort(self._nonempty, trace)
            text_index = self._by_text[trace]
            for event in events:
                text_index.setdefault(event.text, []).append(event)
            self._size += len(events)

    def traces_with_events(self) -> Iterator[int]:
        """Trace ids on which this leaf has at least one stored event."""
        yield from self._nonempty

    def __len__(self) -> int:
        return self._size


def _position_slice(
    events: Sequence[Event], lo: int, hi: Optional[int]
) -> Sequence[Event]:
    """Binary-search a position-ordered event list down to ``[lo, hi]``."""
    left = bisect.bisect_left(events, lo, key=lambda e: e.index)
    if hi is None:
        return events[left:]
    right = bisect.bisect_right(events, hi, key=lambda e: e.index)
    return events[left:right]


def _ls_bound(event: Event, trace: int) -> Optional[int]:
    """Smallest position on ``trace`` that ``event`` happens before.

    Self-contained variant for same-or-cross trace checks that only
    needs a lower bound: on the event's own trace it is the successor
    position; on a remote trace we cannot know LS from the event's own
    clock, so callers combine this with an upper bound from the other
    endpoint (both bounds are exact when the two endpoints share the
    trace; cross-trace intervals here are conservative supersets and
    the caller re-verifies candidates causally).
    """
    if trace == event.trace:
        return event.index + 1
    return 1


def _gp_bound(event: Event, trace: int) -> Optional[int]:
    """Largest position on ``trace`` happening before ``event``."""
    if trace == event.trace:
        return event.index - 1
    return event.clock[trace]


class HistorySet:
    """All leaf histories plus the per-trace pruning bookkeeping."""

    def __init__(self, num_leaves: int, num_traces: int):
        self.histories = [LeafHistory(i, num_traces) for i in range(num_leaves)]
        self._comm_epoch = [0] * num_traces
        self._last_append: List[Optional[int]] = [None] * num_traces

    def bump_comm_epoch(self, trace: int) -> None:
        """Called for every send/receive event on a trace."""
        self._comm_epoch[trace] += 1
        self._last_append[trace] = None

    def append(self, leaf_id: int, event: Event, prune: bool) -> None:
        """Record a matched event in a leaf history, pruning when the
        config allows and the epoch rule applies."""
        trace = event.trace
        may_prune = prune and self._last_append[trace] == leaf_id
        self.histories[leaf_id].append(
            event, epoch=self._comm_epoch[trace], may_prune=may_prune
        )
        self._last_append[trace] = leaf_id

    def leaf(self, leaf_id: int) -> LeafHistory:
        return self.histories[leaf_id]

    def total_size(self) -> int:
        """Total stored events over all leaves (memory metric)."""
        return sum(h.size for h in self.histories)

    def snapshot(self) -> dict:
        """JSON-ready copy of every leaf history and the pruning
        bookkeeping."""
        return {
            "comm_epoch": list(self._comm_epoch),
            "last_append": list(self._last_append),
            "leaves": [h.snapshot() for h in self.histories],
        }

    def restore(self, state: dict) -> None:
        """Rebuild from a :meth:`snapshot` (histories must be fresh)."""
        if len(state["leaves"]) != len(self.histories):
            raise ValueError(
                f"snapshot has {len(state['leaves'])} leaves, "
                f"history set has {len(self.histories)}"
            )
        self._comm_epoch = [int(e) for e in state["comm_epoch"]]
        self._last_append = [
            None if v is None else int(v) for v in state["last_append"]
        ]
        for history, leaf_state in zip(self.histories, state["leaves"]):
            history.restore(leaf_state)
