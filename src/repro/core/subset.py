"""The representative subset of matches.

Paper, Section IV-B: reporting *all* matches of a pattern over
unbounded processes needs unbounded memory.  OCEP instead maintains a
representative subset: it "will report if any of the constituent
events in the pattern has occurred on any of the processes and is part
of a complete match".  A subset chosen this way has cardinality at
most ``k * n`` (``k`` pattern events, ``n`` traces) because each
stored match must cover at least one previously uncovered
``(pattern event, trace)`` slot.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Set, Tuple

from repro.events.event import Event

#: A representative-subset slot: (leaf id, trace id).
Slot = Tuple[int, int]

#: A complete match: leaf id -> matched event.
Assignment = Dict[int, Event]


#: Kleene-group expansions riding a match: (leaf id, group events).
Groups = Tuple[Tuple[int, Tuple[Event, ...]], ...]


@dataclasses.dataclass(frozen=True)
class StoredMatch:
    """A match retained in the subset, with the slots it covered.

    ``groups`` carries the Kleene-group expansions of the match (empty
    for patterns without Kleene positions — and absent from snapshots
    taken before groups existed, which restore as empty)."""

    assignment: Tuple[Tuple[int, Event], ...]
    new_slots: Tuple[Slot, ...]
    groups: Groups = ()

    def as_dict(self) -> Assignment:
        return dict(self.assignment)


class RepresentativeSubset:
    """Bounded store of pattern matches covering every occupied slot.

    ``update`` implements the paper's ``updateSubset``: a match is
    added exactly when it covers a slot no stored match covers yet.
    """

    def __init__(self, num_leaves: int, num_traces: int):
        self.num_leaves = num_leaves
        self.num_traces = num_traces
        self._covered: Set[Slot] = set()
        self._matches: List[StoredMatch] = []

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def update(
        self, assignment: Assignment, groups: Groups = ()
    ) -> Tuple[Slot, ...]:
        """Consider a complete match; returns the newly covered slots
        (empty when the match was redundant and not stored).

        A Kleene group extends the coverage of its leaf: every member's
        trace counts as an occurrence of the pattern position there, so
        a match whose group spans a previously uncovered trace is
        retained even when its anchor trace was covered."""
        slots = {
            (leaf_id, event.trace) for leaf_id, event in assignment.items()
        }
        for leaf_id, events in groups:
            for event in events:
                slots.add((leaf_id, event.trace))
        new_slots = tuple(sorted(slots - self._covered))
        if not new_slots:
            return ()
        self._covered.update(new_slots)
        self._matches.append(
            StoredMatch(
                assignment=tuple(sorted(assignment.items())),
                new_slots=new_slots,
                groups=groups,
            )
        )
        return new_slots

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def is_covered(self, leaf_id: int, trace: int) -> bool:
        """True when a stored match already covers the slot."""
        return (leaf_id, trace) in self._covered

    @property
    def covered_slots(self) -> Set[Slot]:
        return set(self._covered)

    @property
    def matches(self) -> List[StoredMatch]:
        """The stored matches, in discovery order."""
        return list(self._matches)

    def __len__(self) -> int:
        return len(self._matches)

    def check_bound(self) -> bool:
        """The ``k * n`` cardinality invariant (paper, Section IV-B)."""
        return len(self._matches) <= self.num_leaves * self.num_traces

    def signature(self) -> Tuple[Tuple[Tuple[int, int, int], ...], ...]:
        """Canonical, order-sensitive identity of the stored matches:
        one ``(leaf_id, trace, index)`` triple per assignment entry,
        followed by one triple per Kleene-group member (patterns
        without groups contribute none, keeping legacy signatures
        unchanged).  Two runs that discovered the same matches in the
        same order have equal signatures — the equality the chaos
        harness checks against its fault-free oracle."""
        return tuple(
            tuple(
                (leaf_id, event.trace, event.index)
                for leaf_id, event in match.assignment
            )
            + tuple(
                (leaf_id, event.trace, event.index)
                for leaf_id, events in match.groups
                for event in events
            )
            for match in self._matches
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready copy of covered slots and stored matches."""
        return {
            "covered": sorted([leaf, trace] for leaf, trace in self._covered),
            "matches": [
                {
                    "assignment": [
                        [leaf_id, event.to_record()]
                        for leaf_id, event in match.assignment
                    ],
                    "new_slots": [list(slot) for slot in match.new_slots],
                    "groups": [
                        [leaf_id, [event.to_record() for event in events]]
                        for leaf_id, events in match.groups
                    ],
                }
                for match in self._matches
            ],
        }

    def restore(self, state: dict) -> None:
        """Rebuild from a :meth:`snapshot` (the subset must be fresh)."""
        from repro.events.event import event_from_record

        if self._matches or self._covered:
            raise ValueError("can only restore into an empty subset")
        self._covered = {(int(l), int(t)) for l, t in state["covered"]}
        self._matches = [
            StoredMatch(
                assignment=tuple(
                    (int(leaf_id), event_from_record(record))
                    for leaf_id, record in entry["assignment"]
                ),
                new_slots=tuple(
                    (int(l), int(t)) for l, t in entry["new_slots"]
                ),
                # absent in pre-groups snapshots: restore as empty
                groups=tuple(
                    (
                        int(leaf_id),
                        tuple(event_from_record(r) for r in records),
                    )
                    for leaf_id, records in entry.get("groups", ())
                ),
            )
            for entry in state["matches"]
        ]
