"""Coordinator-side metric aggregation.

Each worker runs its own :class:`~repro.obs.metrics.MetricsRegistry`
(processes share nothing), snapshots it into the RESULT frame, and the
coordinator imports every snapshot here — re-minting each series with a
``worker=<id>`` label so one scrape of the coordinator's registry shows
the whole deployment without collapsing workers into each other.

Histograms are rebuilt bucket-for-bucket: every registry in the tree
uses the same log-scale
:data:`~repro.obs.metrics.DEFAULT_LATENCY_BUCKETS`, so the imported
series keeps its quantile resolution (summing counts across differently
bucketed histograms would not be meaningful; a snapshot whose bucket
bounds cannot be reconstructed falls back to ``_count``/``_sum``
counters).
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.obs.metrics import MetricsRegistry


def _bucket_bounds(buckets: List[dict]) -> List[float]:
    bounds = []
    for bucket in buckets:
        le = bucket["le"]
        if le == "+Inf":
            continue
        bounds.append(float(le))
    return bounds


def import_worker_snapshot(
    registry: MetricsRegistry, worker_id: int, snapshot: List[dict]
) -> int:
    """Mint every metric of one worker's registry snapshot into
    ``registry`` under an added ``worker`` label; returns the number of
    series imported.  Back-compat alias entries (marked in the snapshot)
    are skipped — the canonical series carries the data."""
    imported = 0
    worker_label = str(worker_id)
    for metric in snapshot:
        if metric.get("alias_of"):
            continue
        labels: Dict[str, str] = dict(metric.get("labels", {}))
        labels["worker"] = worker_label
        name = metric["name"]
        help_text = metric.get("help", "")
        kind = metric.get("kind")
        if kind == "counter":
            registry.counter(name, help_text, labels=labels).set_total(
                int(metric["value"])
            )
            imported += 1
        elif kind == "gauge":
            registry.gauge(name, help_text, labels=labels).set(
                float(metric["value"])
            )
            imported += 1
        elif kind == "histogram":
            buckets = metric.get("buckets") or []
            bounds = _bucket_bounds(buckets)
            if len(buckets) == len(bounds) + 1:
                histogram = registry.histogram(
                    name, help_text, labels=labels, bounds=bounds
                )
                histogram.bucket_counts = [b["count"] for b in buckets]
                histogram.count = int(metric.get("count", 0))
                histogram.sum = float(metric.get("sum", 0.0))
                minimum = metric.get("min")
                maximum = metric.get("max")
                histogram.min = (
                    float(minimum) if minimum is not None else math.inf
                )
                histogram.max = (
                    float(maximum) if maximum is not None else -math.inf
                )
                imported += 1
            else:
                # Unreconstructable buckets: keep the moments at least.
                registry.counter(
                    f"{name}_count", help_text, labels=labels
                ).set_total(int(metric.get("count", 0)))
                registry.gauge(
                    f"{name}_sum", help_text, labels=labels
                ).set(float(metric.get("sum", 0.0)))
                imported += 2
    return imported


__all__ = ["import_worker_snapshot"]
