"""``repro.cluster``: the multi-process sharded runtime.

Everything before this package executes in one Python process, so the
fastest deployment tops out at one core.  This package is the
horizontal scale-out the ROADMAP targets — the shape of cloud-native
scalable pattern-detection frameworks (Mavroudopoulos & Gounaris):
a **stateless ingress** (the coordinator, owning the recorded stream
and the shard-routing policy) fanning events out to **stateful
per-shard workers** (each a ``multiprocessing`` process running an
ordinary single-shard :class:`~repro.engine.Pipeline` in stream mode),
connected by a socket-based POET transport:

* :mod:`repro.cluster.wire` — the length-prefixed binary frame format
  and the event-batch codec;
* :mod:`repro.cluster.transport` — blocking framed connections plus
  the credit-based back-pressure ledger;
* :mod:`repro.cluster.worker` — the worker process main loop;
* :mod:`repro.cluster.coordinator` — shard routing
  (:func:`~repro.engine.dispatch.shard_worker`), heartbeats,
  checkpoint/recovery of crashed workers, and result aggregation;
* :mod:`repro.cluster.metrics` — per-worker metric snapshots imported
  into the coordinator's registry for one-stop scraping.

Shard semantics match the in-process
:class:`~repro.engine.dispatch.ShardedDispatcher` exactly: every shard
observes the full linearization, so cluster match output is
bit-identical to the single-process sharded run — the equivalence
``ocep cluster`` and the CI ``cluster-smoke`` job assert.
"""

from repro.cluster.coordinator import (
    ClusterCoordinator,
    ClusterError,
    ClusterPipeline,
    ClusterResult,
    ShardOutcome,
    WorkerHandle,
)
from repro.cluster.transport import ClusterProtocolError, FrameConnection
from repro.cluster.wire import (
    PROTOCOL_VERSION,
    FrameType,
    decode_event_batch,
    decode_json,
    encode_event_batch,
    encode_json,
)
from repro.cluster.worker import worker_main

__all__ = [
    "ClusterCoordinator",
    "ClusterError",
    "ClusterPipeline",
    "ClusterProtocolError",
    "ClusterResult",
    "FrameConnection",
    "FrameType",
    "PROTOCOL_VERSION",
    "ShardOutcome",
    "WorkerHandle",
    "decode_event_batch",
    "decode_json",
    "encode_event_batch",
    "encode_json",
    "worker_main",
]
