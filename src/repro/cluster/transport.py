"""Blocking framed connections over sockets.

:class:`FrameConnection` wraps one connected ``socket.socket`` with the
:mod:`repro.cluster.wire` envelope: ``send(type, payload)`` writes a
whole frame with one ``sendall`` under a lock (the worker's heartbeat
thread and its main loop share the connection), ``recv()`` blocks for
exactly one frame.  Short reads are handled — TCP delivers a stream,
not frames — and a clean EOF at a frame boundary raises
:class:`ConnectionClosed` so callers can tell an orderly peer exit from
a mid-frame crash (:class:`ClusterProtocolError`).

``TCP_NODELAY`` is set where available: the protocol is
request/response-shaped (EVENTS down, CREDIT back), exactly the shape
Nagle's algorithm penalizes.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Optional, Tuple

from repro.cluster.wire import (
    FRAME_HEADER_SIZE,
    FrameType,
    decode_json,
    encode_json,
    pack_frame,
    unpack_header,
)


class ClusterProtocolError(RuntimeError):
    """A peer violated the wire protocol (truncated frame, bad type,
    version mismatch, out-of-order frame)."""


class ConnectionClosed(ClusterProtocolError):
    """The peer closed the connection at a frame boundary."""


class FrameConnection:
    """One framed, thread-safe-for-send connection."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._send_lock = threading.Lock()
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except (OSError, AttributeError):  # pragma: no cover - non-TCP
            pass

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, ftype: FrameType, payload: bytes = b"") -> None:
        frame = pack_frame(ftype, payload)
        with self._send_lock:
            self._sock.sendall(frame)

    def send_json(self, ftype: FrameType, document: Any) -> None:
        self.send(ftype, encode_json(document))

    # ------------------------------------------------------------------
    # Receiving (single-reader; no lock needed)
    # ------------------------------------------------------------------

    def _recv_exact(self, count: int, *, at_boundary: bool) -> bytes:
        chunks = []
        remaining = count
        while remaining:
            chunk = self._sock.recv(min(remaining, 1 << 20))
            if not chunk:
                if at_boundary and remaining == count:
                    raise ConnectionClosed("peer closed the connection")
                raise ClusterProtocolError(
                    f"connection died mid-frame ({count - remaining}/{count}"
                    " bytes read)"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self) -> Tuple[FrameType, bytes]:
        """Block for the next frame; ``(type, payload)``."""
        header = self._recv_exact(FRAME_HEADER_SIZE, at_boundary=True)
        length, ftype = unpack_header(header)
        payload = (
            self._recv_exact(length, at_boundary=False) if length else b""
        )
        return ftype, payload

    def recv_json(self, expect: Optional[FrameType] = None) -> Any:
        """Receive one frame, optionally asserting its type, and decode
        its JSON payload."""
        ftype, payload = self.recv()
        if expect is not None and ftype is not expect:
            raise ClusterProtocolError(
                f"expected {expect.name} frame, got {ftype.name}"
            )
        return decode_json(payload)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def settimeout(self, timeout: Optional[float]) -> None:
        self._sock.settimeout(timeout)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "FrameConnection":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


__all__ = [
    "ClusterProtocolError",
    "ConnectionClosed",
    "FrameConnection",
]
