"""The cluster wire format: length-prefixed frames + binary batches.

Everything the coordinator and a worker exchange is a *frame*::

    +----------------+--------+-----------------------+
    | payload length | type   | payload               |
    | u32 big-endian | u8     | length bytes          |
    +----------------+--------+-----------------------+

(header ``struct`` format :data:`FRAME_HEADER` = ``"!IB"``).  Control
frames carry a UTF-8 JSON payload; the hot-path :data:`FrameType.EVENTS`
frame carries the binary event-batch codec below — JSON-encoding five
fields per event would dominate the transport cost of exactly the
frames that occur ~:data:`batch_size` times per worker per run.

Event-batch codec (all integers big-endian)::

    u32   count
    per event:
      u32 u32    trace, index
      u8         kind code (index into ``EventKind`` order below)
      u64        lamport
      u8         partner flag; if 1: u32 u32 partner trace, index
      u16 bytes  etype  (UTF-8, length-prefixed)
      u16 bytes  text   (UTF-8, length-prefixed)
      u16 u32*   clock components (count-prefixed full vector)

Events always travel as **full vector timestamps** (an
:class:`~repro.clocks.encoded.EncodedClock` is materialized via its
``components``): the frame-interning of the encoded backend is a
per-process memory-sharing optimization, so each worker re-encodes
locally through its stream pipeline's
:class:`~repro.clocks.encoded.StreamEncoder` instead of shipping frame
state across the process boundary.

The helpers at the bottom serialize the result surface —
:class:`~repro.core.matcher.MatchReport`,
:class:`~repro.core.monitor.MonitorStats`, and representative-subset
signatures — through the same ``Event.to_record`` field layout the
dump files and checkpoints use, so a report decoded at the coordinator
compares equal to the in-process run's report (event identity is
``(trace, index)``).
"""

from __future__ import annotations

import dataclasses
import enum
import json
import struct
from typing import Any, List, Sequence, Tuple

from repro.clocks.vector_clock import VectorClock
from repro.core.matcher import MatchReport
from repro.core.monitor import MonitorStats
from repro.events.event import Event, EventId, EventKind

#: Bumped on any incompatible change; HELLO/CONFIG handshakes verify it.
PROTOCOL_VERSION = 1

#: Frame header: payload length (u32) + frame type (u8), big-endian.
FRAME_HEADER = "!IB"
FRAME_HEADER_SIZE = struct.calcsize(FRAME_HEADER)

#: Refuse frames claiming more than this many payload bytes (a corrupt
#: or hostile length prefix must not trigger a multi-GiB allocation).
MAX_FRAME_PAYLOAD = 256 * 1024 * 1024


class FrameType(enum.IntEnum):
    """Frame discriminator; the protocol is strictly coordinator-driven
    except CREDIT/HEARTBEAT, which the worker volunteers."""

    HELLO = 1             #: worker -> coord: version + identity
    CONFIG = 2            #: coord -> worker: traces, shards, backend
    READY = 3             #: worker -> coord: shards wired, obs port
    RESTORE = 4           #: coord -> worker: checkpoint to load
    EVENTS = 5            #: coord -> worker: binary event batch
    CREDIT = 6            #: worker -> coord: batch ack + counters
    HEARTBEAT = 7         #: worker -> coord: liveness + counters
    CHECKPOINT = 8        #: coord -> worker: snapshot request
    CHECKPOINT_STATE = 9  #: worker -> coord: snapshot document
    FINISH = 10           #: coord -> worker: end of stream
    RESULT = 11           #: worker -> coord: final shard outcomes
    SHUTDOWN = 12         #: coord -> worker: exit now


# ----------------------------------------------------------------------
# Frame envelope
# ----------------------------------------------------------------------


def pack_frame(ftype: FrameType, payload: bytes) -> bytes:
    """Header + payload as one ``bytes`` (one ``sendall`` per frame)."""
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise ValueError(
            f"frame payload {len(payload)} exceeds {MAX_FRAME_PAYLOAD}"
        )
    return struct.pack(FRAME_HEADER, len(payload), int(ftype)) + payload


def unpack_header(header: bytes) -> Tuple[int, FrameType]:
    """(payload length, frame type) of a :data:`FRAME_HEADER_SIZE` read."""
    length, raw_type = struct.unpack(FRAME_HEADER, header)
    if length > MAX_FRAME_PAYLOAD:
        raise ValueError(f"frame payload length {length} exceeds limit")
    return length, FrameType(raw_type)


def encode_json(document: Any) -> bytes:
    """Control-frame payload: compact UTF-8 JSON."""
    return json.dumps(document, separators=(",", ":")).encode("utf-8")


def decode_json(payload: bytes) -> Any:
    return json.loads(payload.decode("utf-8"))


# ----------------------------------------------------------------------
# Event-batch codec
# ----------------------------------------------------------------------

#: Wire order of event kinds (u8 code = index).  Append-only: the codes
#: are on the wire, so reordering is a protocol break.
_KIND_ORDER = (EventKind.SEND, EventKind.RECEIVE, EventKind.LOCAL,
               EventKind.UNARY)
_KIND_CODE = {kind: code for code, kind in enumerate(_KIND_ORDER)}

_EVENT_HEAD = struct.Struct("!IIBQ")
_PAIR = struct.Struct("!II")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")


def encode_event_batch(events: Sequence[Event]) -> bytes:
    """Binary payload of an :data:`FrameType.EVENTS` frame."""
    out = bytearray(_U32.pack(len(events)))
    for event in events:
        out += _EVENT_HEAD.pack(
            event.trace, event.index, _KIND_CODE[event.kind], event.lamport
        )
        if event.partner is not None:
            out += b"\x01"
            out += _PAIR.pack(event.partner.trace, event.partner.index)
        else:
            out += b"\x00"
        for text in (event.etype, event.text):
            raw = text.encode("utf-8")
            if len(raw) > 0xFFFF:
                raise ValueError(f"attribute too long for wire: {len(raw)}")
            out += _U16.pack(len(raw))
            out += raw
        components = tuple(event.clock.components)
        out += _U16.pack(len(components))
        out += struct.pack(f"!{len(components)}I", *components)
    return bytes(out)


def decode_event_batch(payload: bytes) -> List[Event]:
    """Rebuild the events of :func:`encode_event_batch` (full-vector
    :class:`~repro.clocks.vector_clock.VectorClock` timestamps)."""
    (count,) = _U32.unpack_from(payload, 0)
    offset = _U32.size
    events: List[Event] = []
    for _ in range(count):
        trace, index, kind_code, lamport = _EVENT_HEAD.unpack_from(
            payload, offset
        )
        offset += _EVENT_HEAD.size
        partner = None
        has_partner = payload[offset]
        offset += 1
        if has_partner:
            p_trace, p_index = _PAIR.unpack_from(payload, offset)
            offset += _PAIR.size
            partner = EventId(p_trace, p_index)
        texts = []
        for _field in range(2):
            (length,) = _U16.unpack_from(payload, offset)
            offset += _U16.size
            texts.append(payload[offset:offset + length].decode("utf-8"))
            offset += length
        (width,) = _U16.unpack_from(payload, offset)
        offset += _U16.size
        components = struct.unpack_from(f"!{width}I", payload, offset)
        offset += width * _U32.size
        events.append(
            Event(
                trace=trace,
                index=index,
                etype=texts[0],
                text=texts[1],
                clock=VectorClock(components),
                kind=_KIND_ORDER[kind_code],
                partner=partner,
                lamport=lamport,
            )
        )
    if offset != len(payload):
        raise ValueError(
            f"event batch has {len(payload) - offset} trailing bytes"
        )
    return events


# ----------------------------------------------------------------------
# Result-surface serialization (RESULT frame payload pieces)
# ----------------------------------------------------------------------


def report_to_record(report: MatchReport) -> dict:
    """JSON-ready record of one :class:`MatchReport` (events in the
    ``Event.to_record`` layout)."""
    return {
        "trigger_leaf": report.trigger_leaf,
        "trigger_event": report.trigger_event.to_record(),
        "assignment": [
            [leaf, event.to_record()] for leaf, event in report.assignment
        ],
        "bindings": [list(pair) for pair in report.bindings],
        "new_slots": [list(pair) for pair in report.new_slots],
    }


def report_from_record(record: dict) -> MatchReport:
    from repro.events.event import event_from_record

    return MatchReport(
        trigger_leaf=record["trigger_leaf"],
        trigger_event=event_from_record(record["trigger_event"]),
        assignment=tuple(
            (leaf, event_from_record(event_record))
            for leaf, event_record in record["assignment"]
        ),
        bindings=tuple(
            (str(k), str(v)) for k, v in record["bindings"]
        ),
        new_slots=tuple(
            (int(a), int(b)) for a, b in record["new_slots"]
        ),
    )


def stats_to_record(stats: MonitorStats) -> dict:
    return dataclasses.asdict(stats)


def stats_from_record(record: dict) -> MonitorStats:
    return MonitorStats(**record)


def signature_to_record(signature: tuple) -> list:
    """Representative-subset signatures are nested tuples of ints;
    JSON turns them into nested lists."""
    return [[list(entry) for entry in slot] for slot in signature]


def signature_from_record(record: list) -> tuple:
    return tuple(
        tuple(tuple(entry) for entry in slot) for slot in record
    )


__all__ = [
    "FRAME_HEADER",
    "FRAME_HEADER_SIZE",
    "FrameType",
    "MAX_FRAME_PAYLOAD",
    "PROTOCOL_VERSION",
    "decode_event_batch",
    "decode_json",
    "encode_event_batch",
    "encode_json",
    "pack_frame",
    "report_from_record",
    "report_to_record",
    "signature_from_record",
    "signature_to_record",
    "stats_from_record",
    "stats_to_record",
    "unpack_header",
]
