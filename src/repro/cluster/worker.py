"""The worker process: one shard slice of the deployment.

:func:`worker_main` is the ``multiprocessing`` target the coordinator
spawns — importable at module top level so both the ``fork`` and
``spawn`` start methods work.  Each worker is an ordinary single-process
engine wearing a socket: it connects back to the coordinator, handshakes
(HELLO/CONFIG/READY), builds a :meth:`~repro.engine.Pipeline.stream`
pipeline watching exactly the shards the coordinator assigned, and then
consumes coordinator-driven frames:

RESTORE
    Load an ``ocep-sharded-checkpoint-v1`` document into the watched
    shards (``partial=True`` — the document may describe a different
    shard layout; this worker restores only its slice, which is what
    makes elastic re-sharding a no-op at this layer).

EVENTS
    Feed the decoded batch to the stream pipeline, then answer with a
    CREDIT frame — the back-pressure grant *and* a piggy-backed
    heartbeat (events seen, reports so far).  The coordinator never has
    more than its credit budget of unacknowledged batches in flight, so
    a slow worker throttles its own inflow instead of ballooning the
    socket buffer.

CHECKPOINT
    Answer with CHECKPOINT_STATE: the shard slice's checkpoint document
    plus the stream offset it covers.

FINISH / SHUTDOWN
    Close the stream, ship the RESULT document (reports, stats,
    signatures, timing summaries, and — when metrics are on — the whole
    registry snapshot for coordinator-side aggregation), then exit on
    SHUTDOWN.

A side thread volunteers HEARTBEAT frames while the worker idles
between coordinator frames (send is lock-protected in
:class:`~repro.cluster.transport.FrameConnection`).

Observability: with ``obs`` in the CONFIG the worker starts its own
:class:`~repro.obs.server.ObsServer` on an ephemeral port and reports
the actually bound port/URL in READY — the coordinator surfaces every
worker's scrape URL.
"""

from __future__ import annotations

import os
import socket
import sys
import threading
import traceback
from typing import Dict, List, Optional

from repro.cluster.transport import (
    ClusterProtocolError,
    ConnectionClosed,
    FrameConnection,
)
from repro.cluster.wire import (
    PROTOCOL_VERSION,
    FrameType,
    decode_event_batch,
    decode_json,
    report_to_record,
    signature_to_record,
    stats_to_record,
)
from repro.engine.pipeline import Pipeline
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import ObsServer

#: Seconds between volunteered heartbeats.
DEFAULT_HEARTBEAT_INTERVAL = 2.0


def _timings_summary(timings: List[float]) -> Dict[str, float]:
    """Detection-latency summary of one shard's per-search timings
    (exact order statistics — the worker holds the full list, so no
    bucket quantisation is needed)."""
    if not timings:
        return {"count": 0, "sum_seconds": 0.0}
    ordered = sorted(timings)
    count = len(ordered)

    def pct(q: float) -> float:
        return ordered[min(count - 1, int(q * count))]

    return {
        "count": count,
        "sum_seconds": sum(ordered),
        "p50_seconds": pct(0.50),
        "p95_seconds": pct(0.95),
        "p99_seconds": pct(0.99),
        "max_seconds": ordered[-1],
    }


class _Heartbeat(threading.Thread):
    """Volunteers HEARTBEAT frames while the main loop blocks on the
    coordinator; dies quietly when the socket does."""

    def __init__(self, conn: FrameConnection, worker_id: int,
                 counters, interval: float):
        super().__init__(name=f"ocep-worker-{worker_id}-heartbeat",
                         daemon=True)
        self._conn = conn
        self._worker_id = worker_id
        self._counters = counters
        self._interval = interval
        self._stop = threading.Event()

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._conn.send_json(
                    FrameType.HEARTBEAT,
                    {
                        "worker": self._worker_id,
                        "events_seen": self._counters["events"],
                        "reports": self._counters["reports"],
                        "pid": os.getpid(),
                    },
                )
            except OSError:
                return


def worker_main(
    worker_id: int,
    host: str,
    port: int,
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
) -> None:
    """Process entry point: serve one worker until SHUTDOWN/EOF."""
    try:
        _worker_loop(worker_id, host, port, heartbeat_interval)
    except ConnectionClosed:
        # Coordinator went away first (e.g. it crashed); nothing to
        # report to and nothing to clean up beyond process exit.
        sys.exit(0)
    except Exception:  # noqa: BLE001 - the process boundary
        traceback.print_exc(file=sys.stderr)
        sys.exit(1)


def _worker_loop(
    worker_id: int, host: str, port: int, heartbeat_interval: float
) -> None:
    conn = FrameConnection(socket.create_connection((host, port)))
    conn.send_json(
        FrameType.HELLO,
        {"version": PROTOCOL_VERSION, "worker": worker_id,
         "pid": os.getpid()},
    )
    config = conn.recv_json(expect=FrameType.CONFIG)
    if config.get("version") != PROTOCOL_VERSION:
        raise ClusterProtocolError(
            f"coordinator speaks protocol {config.get('version')}, "
            f"worker speaks {PROTOCOL_VERSION}"
        )

    registry: Optional[MetricsRegistry] = None
    if config.get("metrics", True):
        registry = MetricsRegistry()
    pipeline = Pipeline.stream(
        config["trace_names"],
        clock_backend=config.get("clock_backend", "fidge"),
        registry=registry,
    )
    shards: Dict[str, str] = dict(config.get("shards", {}))
    for name, pattern_source in shards.items():
        pipeline.watch(name, pattern_source)

    obs_server: Optional[ObsServer] = None
    if config.get("obs") and registry is not None:
        obs_server = ObsServer(registry, port=0)
        obs_server.start()

    ready = {
        "worker": worker_id,
        "pid": os.getpid(),
        "shards": sorted(shards),
    }
    if obs_server is not None:
        ready["obs_port"] = obs_server.port
        ready["obs_url"] = obs_server.url
    conn.send_json(FrameType.READY, ready)

    counters = {"events": 0, "reports": 0}
    heartbeat = _Heartbeat(conn, worker_id, counters, heartbeat_interval)
    heartbeat.start()
    finished = False
    try:
        while True:
            ftype, payload = conn.recv()
            if ftype is FrameType.EVENTS:
                events = decode_event_batch(payload)
                pipeline.feed(events)
                counters["events"] += len(events)
                if shards:
                    counters["reports"] = pipeline.dispatcher.total_reports()
                conn.send_json(
                    FrameType.CREDIT,
                    {
                        "worker": worker_id,
                        "events_seen": counters["events"],
                        "reports": counters["reports"],
                    },
                )
            elif ftype is FrameType.RESTORE:
                document = decode_json(payload)
                document.pop("overload", None)
                # partial=True: the snapshot may have been written at a
                # different shard layout; restore only this slice.
                pipeline.dispatcher.restore(document, partial=True)
            elif ftype is FrameType.CHECKPOINT:
                conn.send_json(
                    FrameType.CHECKPOINT_STATE,
                    {
                        "worker": worker_id,
                        "offset": counters["events"],
                        "state": pipeline.checkpoint_document(),
                    },
                )
            elif ftype is FrameType.FINISH:
                result = pipeline.finish()
                finished = True
                conn.send_json(
                    FrameType.RESULT, _build_result(worker_id, result,
                                                    registry),
                )
            elif ftype is FrameType.SHUTDOWN:
                return
            else:
                raise ClusterProtocolError(
                    f"worker got unexpected {ftype.name} frame"
                )
    finally:
        heartbeat.stop()
        if obs_server is not None:
            obs_server.stop()
        if not finished and pipeline._wired and not pipeline._ran:
            # Torn down without FINISH (coordinator crash): close the
            # stream locally so stage metrics flush for post-mortems.
            try:
                pipeline.finish()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
        conn.close()


def _build_result(
    worker_id: int, result, registry: Optional[MetricsRegistry]
) -> dict:
    shards = {}
    for name, monitor in result.dispatcher:
        shards[name] = {
            "reports": [
                report_to_record(report) for report in monitor.reports
            ],
            "stats": stats_to_record(monitor.stats()),
            "signature": signature_to_record(monitor.subset.signature()),
            "timings": _timings_summary(monitor.terminating_timings),
        }
    document = {
        "worker": worker_id,
        "events": result.num_events,
        "shards": shards,
    }
    if registry is not None:
        for _name, monitor in result.dispatcher:
            monitor.publish_metrics()
        document["metrics"] = registry.snapshot()
    return document


__all__ = [
    "DEFAULT_HEARTBEAT_INTERVAL",
    "worker_main",
]
